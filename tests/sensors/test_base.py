"""The acquisition pipeline."""

import numpy as np
import pytest

from repro.sensors.base import Impression
from repro.sensors.distortion import SmoothWarpField
from repro.sensors.optical import OpticalSensor
from repro.sensors.registry import get_profile


@pytest.fixture(scope="module")
def sensor():
    return OpticalSensor.from_id("D0")


@pytest.fixture(scope="module")
def subject(tiny_population):
    return tiny_population.subject(0)


def _acquire(sensor, subject, seed=0, **kwargs):
    return sensor.acquire(
        subject, "right_index", np.random.default_rng(seed), **kwargs
    )


class TestAcquisition:
    def test_returns_complete_impression(self, sensor, subject):
        imp = _acquire(sensor, subject)
        assert isinstance(imp, Impression)
        assert imp.device_id == "D0"
        assert imp.subject_id == subject.subject_id
        assert 1 <= imp.nfiq <= 5
        assert imp.template.resolution_dpi == 500

    def test_plausible_minutiae_count(self, sensor, subject):
        imp = _acquire(sensor, subject)
        assert 10 <= len(imp.template) <= 70

    def test_deterministic_given_rng(self, sensor, subject):
        a = _acquire(sensor, subject, seed=5)
        b = _acquire(sensor, subject, seed=5)
        assert a.template.minutiae == b.template.minutiae
        assert a.nfiq == b.nfiq

    def test_different_rng_differs(self, sensor, subject):
        a = _acquire(sensor, subject, seed=5)
        b = _acquire(sensor, subject, seed=6)
        assert a.template.minutiae != b.template.minutiae

    def test_fewer_minutiae_than_master(self, sensor, subject):
        # Detection dropout plus contact cropping: the sensed template is
        # (almost) always a strict subset plus a few spurious points.
        master_count = subject.fingers["right_index"].n_minutiae
        counts = [len(_acquire(sensor, subject, seed=s).template) for s in range(10)]
        assert np.mean(counts) < master_count

    def test_angles_in_range(self, sensor, subject):
        imp = _acquire(sensor, subject)
        angles = imp.template.angles()
        assert np.all((angles >= 0) & (angles < 2 * np.pi + 1e-9))

    def test_quality_features_consistent(self, sensor, subject):
        imp = _acquire(sensor, subject)
        assert imp.features.minutiae_count == len(imp.template)
        assert 0 <= imp.features.contact_area_fraction <= 1

    def test_signature_override(self, sensor, subject):
        flat = SmoothWarpField(seed=0, magnitude_mm=0.0)
        a = _acquire(sensor, subject, seed=3)
        b = sensor.acquire(
            subject,
            "right_index",
            np.random.default_rng(3),
            signature_override=flat,
        )
        # Same randomness, different geometry: positions must differ.
        pa = a.template.positions_px()
        pb = b.template.positions_px()
        assert pa.shape != pb.shape or not np.allclose(pa, pb)

    def test_unknown_finger_raises(self, sensor, subject):
        with pytest.raises(KeyError):
            _acquire(sensor, subject, seed=0) if False else sensor.acquire(
                subject, "left_thumb", np.random.default_rng(0)
            )

    def test_wrong_family_rejected(self):
        with pytest.raises(ValueError):
            OpticalSensor(get_profile("D4"))


class TestDeviceDifferences:
    def test_d3_crops_more(self, tiny_population):
        # Handheld Seek II: sloppier placement against a small window
        # loses more minutiae on average.
        d0 = OpticalSensor.from_id("D0")
        d3 = OpticalSensor.from_id("D3")
        counts0, counts3 = [], []
        for sid in range(8):
            subject = tiny_population.subject(sid)
            for seed in range(4):
                counts0.append(len(_acquire(d0, subject, seed=seed).template))
                counts3.append(len(_acquire(d3, subject, seed=seed).template))
        assert np.mean(counts3) < np.mean(counts0)

    def test_same_device_impressions_correlate_geometrically(self, sensor, subject):
        # Two impressions on one device share its signature warp: genuine
        # same-device distances (after the matcher aligns) stay small.
        # Covered end-to-end in matcher tests; here we check the warp is
        # actually applied (no identity accident).
        imp = _acquire(sensor, subject)
        assert sensor.signature_field.magnitude_mm > 0
