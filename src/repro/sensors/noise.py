"""Stochastic acquisition effects: pressure, contact, detection, spurious.

These processes turn a master finger plus a subject's traits into the
imperfect evidence a real feature extractor would produce:

* pressure controls the *contact ellipse* — low pressure captures less
  of the pad (fewer minutiae, smaller usable area);
* dryness/wetness and sensor noise control *detection dropout* of true
  minutiae and the rate of *spurious* minutiae;
* habituation improves pressure and placement control across a
  subject's successive presentations (a §V further-work item the
  protocol module measures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..synthesis.subject import SubjectTraits


@dataclass(frozen=True)
class PresentationConditions:
    """Sampled conditions of one finger presentation.

    Attributes
    ----------
    pressure:
        Normalized contact pressure in [0.25, 1.1].
    moisture:
        Effective skin moisture after per-presentation variation:
        0 = soaked (smudging), 0.5 = ideal, 1 = bone dry.
    sloppiness:
        Placement sloppiness after habituation discount.
    """

    pressure: float
    moisture: float
    sloppiness: float


def sample_conditions(
    traits: SubjectTraits,
    rng: np.random.Generator,
    presentation_index: int = 0,
) -> PresentationConditions:
    """Draw the conditions of the ``presentation_index``-th presentation.

    Habituation: control improves geometrically with experience, at the
    subject's own rate — first presentations are the sloppiest, and with
    practice the typical pressure drifts toward the 0.75 ideal.
    """
    experience = 1.0 - (1.0 - traits.habituation_rate * 0.6) ** presentation_index \
        if presentation_index > 0 else 0.0
    control = min(0.75, 0.75 * experience)

    effective_mean = traits.pressure_mean + control * (0.75 - traits.pressure_mean)
    pressure = float(np.clip(
        rng.normal(effective_mean, traits.pressure_spread * (1.0 - control)),
        0.25, 1.1,
    ))
    # Moisture: dryness trait shifts the mean above the 0.5 ideal;
    # presentation-level variation (washing hands, sweat) adds spread.
    moisture = float(np.clip(
        0.48 + 0.34 * traits.skin_dryness + rng.normal(0.0, 0.08), 0.0, 1.0,
    ))
    sloppiness = float(np.clip(
        traits.placement_sloppiness * (1.0 - control), 0.02, 1.0,
    ))
    return PresentationConditions(
        pressure=pressure, moisture=moisture, sloppiness=sloppiness
    )


def contact_radii_mm(
    pad_half_width: float,
    pad_half_height: float,
    pressure: float,
) -> tuple:
    """Semi-axes of the contact ellipse for a flat (plain) impression.

    Full pressure touches ~95 % of the pad; light pressure shrinks the
    contact patch sub-linearly (Hertzian contact for soft tissue grows
    quickly with initial load, then saturates).
    """
    factor = 0.95 * float(np.clip(pressure, 0.0, 1.1) ** 0.35)
    return pad_half_width * factor, pad_half_height * factor


def quality_conditions_factor(moisture: float, pressure: float) -> float:
    """Ridge-clarity multiplier in (0, 1] from skin state and pressure.

    Clarity peaks at ideal moisture (0.5) and moderate-to-full pressure;
    dry skin breaks ridges, soaked skin smudges valleys, and featherweight
    touches leave faint traces.
    """
    moisture_term = float(np.exp(-((moisture - 0.5) / 0.40) ** 2))
    pressure_term = float(np.clip(pressure / 0.45, 0.0, 1.0))
    return max(0.05, min(1.0, 0.30 + 0.70 * moisture_term * pressure_term))


def detection_probability(
    robustness: np.ndarray,
    clarity: float,
    device_reliability: float,
) -> np.ndarray:
    """Per-minutia detection probability.

    ``robustness`` is the master minutia's intrinsic detectability;
    ``clarity`` comes from :func:`quality_conditions_factor`;
    ``device_reliability`` is the sensor's extractor performance.
    """
    base = np.asarray(robustness, dtype=np.float64)
    p = base * (0.62 + 0.38 * clarity) * device_reliability
    return np.clip(p, 0.0, 1.0)


def spurious_count(
    rng: np.random.Generator,
    clarity: float,
    device_spurious_rate: float,
) -> int:
    """Number of spurious minutiae: Poisson, rate growing as clarity falls."""
    lam = device_spurious_rate * (1.0 - clarity) * 2.0
    return int(rng.poisson(max(lam, 0.0)))


def minutia_quality_values(
    rng: np.random.Generator,
    robustness: np.ndarray,
    clarity: float,
) -> np.ndarray:
    """Per-minutia quality (0–100) as reported by the extractor."""
    base = np.asarray(robustness, dtype=np.float64) * clarity
    noisy = base + rng.normal(0.0, 0.07, size=base.shape)
    return np.clip(np.round(noisy * 100.0), 1, 100).astype(np.int64)


__all__ = [
    "PresentationConditions",
    "sample_conditions",
    "contact_radii_mm",
    "quality_conditions_factor",
    "detection_probability",
    "spurious_count",
    "minutia_quality_values",
]
