"""X6 — §V architecture: baseline vs interoperability-aware verification.

Enrolls the population on D0, replays genuine verification attempts from
every device through both verification engines, and compares the false
non-match rates.  The aware engine's per-pair z-normalization should
hold one global threshold across device pairs that the raw-score
baseline cannot.
"""

import numpy as np

from repro.api import (
    DEVICE_ORDER,
    EnrolledRecord,
    TemplateDatabase,
    train_interop_verifier_from_study,
    Verifier,
)

ENROLL_DEVICE = "D0"


def test_ext_verification_architectures(benchmark, study, record_artifact):
    collection = study.collection()
    n = study.config.n_subjects

    database = TemplateDatabase()
    for sid in range(n):
        imp = collection.get(sid, "right_index", ENROLL_DEVICE, 0)
        database.enroll(
            EnrolledRecord(
                identity=f"subject-{sid}",
                template=imp.template,
                device_id=ENROLL_DEVICE,
                nfiq=imp.nfiq,
            )
        )
    baseline = Verifier(database, threshold=7.5, matcher=study.matcher())
    aware = train_interop_verifier_from_study(
        study, database, threshold=3.0,
        calibrate_pairs=[(ENROLL_DEVICE, "D4")],
    )

    probes = [
        (sid, device, collection.get(sid, "right_index", device, 1).template)
        for device in DEVICE_ORDER
        for sid in range(n)
    ]

    def run_aware():
        return [
            aware.verify(f"subject-{sid}", template, device).accepted
            for sid, device, template in probes
        ]

    aware_accepted = benchmark.pedantic(run_aware, rounds=1, iterations=1)
    baseline_accepted = [
        baseline.verify(f"subject-{sid}", template, device).accepted
        for sid, device, template in probes
    ]

    fnmr_baseline = 1.0 - float(np.mean(baseline_accepted))
    fnmr_aware = 1.0 - float(np.mean(aware_accepted))
    text = "\n".join(
        [
            "X6: verification architectures, genuine attempts from all devices",
            f"  baseline (raw score, fixed threshold) FNMR: {fnmr_baseline:.3f}",
            f"  interop-aware (z-norm + TPS + p(d|q))  FNMR: {fnmr_aware:.3f}",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    assert fnmr_aware <= fnmr_baseline


def test_ext_fnm_prediction(benchmark, study, record_artifact):
    """The §V probabilistic question, benchmarked."""
    from repro.api import FnmrPredictor

    predictor = FnmrPredictor().fit_from_study(study, target_fmr=1e-3)

    def answer():
        return predictor.predict("D0", "D4")

    prediction = benchmark(answer)
    text = "\n".join(
        [
            "X7: P(false non-match | enroll D0, verify D4) = "
            f"{prediction.probability:.4f}",
            f"  95% credible interval [{prediction.low:.4f}, {prediction.high:.4f}]",
            f"  evidence: {prediction.failures}/{prediction.trials} failures",
            "",
            predictor.render(),
        ]
    )
    record_artifact(text)
    print("\n" + text)

    native = predictor.predict("D0", "D0")
    # Cross-device FNM risk exceeds (or at least matches) native risk.
    assert prediction.probability >= native.probability - 1e-6
