"""F1 — Figure 1: age and ethnicity groups of the participants.

Paper anchors: 53% of participants aged 20-29, 57.2% Caucasian.
The benchmark times demographic synthesis for the whole population and
records the rendered histogram.
"""

from _bench_common import bench_config
from repro.api import Population, render_figure1


def test_fig1_demographics(benchmark, record_artifact):
    config = bench_config()

    def build_demographics():
        return Population(config).demographics_table()

    table = benchmark(build_demographics)
    text = render_figure1(table)
    record_artifact(text)
    print("\n" + text)

    total = sum(table["age"].values())
    assert total == config.n_subjects
    # The Figure 1 anchors, within sampling tolerance for the run size.
    age_rate = table["age"]["20-29"] / total
    eth_rate = table["ethnicity"]["Caucasian"] / total
    assert 0.3 < age_rate < 0.75
    assert 0.35 < eth_rate < 0.8
