"""Service-side observability: request counters and latency windows.

The batch study gets a run manifest at the end; a server never ends, so
it needs live introspection instead.  :class:`ServiceStats` is the
server's always-on view: per-endpoint request counters, a sliding window
of request latencies (exact p50/p95/p99 over the window), and the
micro-batch size distribution.  ``GET /stats`` serializes a snapshot;
the same events are mirrored into the process-wide telemetry recorder
(``service.*`` counters and histograms) so a ``--manifest-out`` run
additionally lands the service rollup in its run manifest, rendered by
``repro stats``.

Latency distributions ride :class:`repro.stats.histogram.Histogram` —
the same binned-distribution type the paper's figures use — so the
``/stats`` payload exposes bin edges and counts, not just summary
quantiles.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from ..runtime.telemetry import get_recorder
from ..stats.histogram import score_histogram

#: Sliding-window length for exact latency quantiles.  Old observations
#: fall out; the totals keep counting forever.
LATENCY_WINDOW = 4096

#: The endpoints the service tallies individually.
ENDPOINTS = ("enroll", "verify", "identify", "delete", "healthz", "stats")


def _quantiles(values: Deque[float]) -> Optional[Dict[str, float]]:
    """p50/p95/p99/max of a latency window, in milliseconds."""
    if not values:
        return None
    arr = np.asarray(values, dtype=np.float64) * 1000.0
    p50, p95, p99 = np.percentile(arr, (50.0, 95.0, 99.0))
    return {
        "count": int(arr.size),
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "max_ms": round(float(arr.max()), 3),
    }


class ServiceStats:
    """Live counters and distributions for one server process.

    The server runs a single asyncio event loop, so mutation is
    single-threaded; reads (the ``/stats`` handler) happen on the same
    loop.  Everything is also mirrored into the telemetry recorder,
    which is thread-safe and a no-op until telemetry is enabled.
    """

    def __init__(self) -> None:
        self.started_at = time.time()
        self.requests: Dict[str, int] = {name: 0 for name in ENDPOINTS}
        self.statuses: Dict[int, int] = {}
        self.accepted = 0
        self.rejected = 0
        self.enroll_rejected = 0
        self.overloads = 0
        self.deadline_exceeded = 0
        self.batches = 0
        self.batched_jobs = 0
        self.expired_jobs = 0
        self._latencies: Dict[str, Deque[float]] = {
            name: deque(maxlen=LATENCY_WINDOW) for name in ENDPOINTS
        }
        self._batch_sizes: Deque[int] = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # Event sinks
    # ------------------------------------------------------------------
    def record_request(self, endpoint: str, seconds: float, status: int) -> None:
        """Tally one finished HTTP request."""
        if endpoint in self.requests:
            self.requests[endpoint] += 1
            self._latencies[endpoint].append(seconds)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        recorder = get_recorder()
        if recorder.active:
            recorder.count("service.requests")
            recorder.count(f"service.requests.{endpoint}")
            recorder.count(f"service.status.{status}")
            recorder.observe("service.latency_seconds", seconds)

    def record_decision(self, accepted: bool) -> None:
        """Tally one verification decision."""
        if accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        recorder = get_recorder()
        if recorder.active:
            recorder.count(
                "service.accepted" if accepted else "service.rejected"
            )

    def record_enroll_rejected(self) -> None:
        """Tally one quality-gated enrollment rejection."""
        self.enroll_rejected += 1
        get_recorder().count("service.enroll.rejected")

    def record_overload(self) -> None:
        """Tally one admission rejected on a full queue (HTTP 503)."""
        self.overloads += 1
        get_recorder().count("service.overload")

    def record_deadline(self) -> None:
        """Tally one request that outlived its deadline (HTTP 504)."""
        self.deadline_exceeded += 1
        get_recorder().count("service.deadline_exceeded")

    def record_batch(self, size: int, expired: int = 0) -> None:
        """Tally one dispatched micro-batch of ``size`` comparisons.

        A batch whose jobs all expired in the queue dispatches nothing;
        its ``size`` arrives as 0 and only the expiry tally moves.
        """
        if size:
            self.batches += 1
            self.batched_jobs += size
            self._batch_sizes.append(size)
        self.expired_jobs += expired
        recorder = get_recorder()
        if recorder.active:
            if size:
                recorder.count("service.batches")
                recorder.count("service.batched_jobs", size)
                recorder.observe("service.batch_size", float(size))
            if expired:
                recorder.count("service.expired_jobs", expired)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def max_batch_size(self) -> int:
        """Largest micro-batch observed in the window (0 before any)."""
        return max(self._batch_sizes) if self._batch_sizes else 0

    def latency_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-endpoint window quantiles (endpoints never hit are absent)."""
        out: Dict[str, Dict[str, float]] = {}
        for endpoint, window in self._latencies.items():
            quantiles = _quantiles(window)
            if quantiles is not None:
                out[endpoint] = quantiles
        return out

    def batch_snapshot(self) -> dict:
        """Micro-batch distribution: totals plus a unit-binned histogram."""
        sizes = list(self._batch_sizes)
        payload = {
            "batches": self.batches,
            "jobs": self.batched_jobs,
            "expired_jobs": self.expired_jobs,
            "mean_size": (
                round(self.batched_jobs / self.batches, 3) if self.batches else None
            ),
            "max_size": self.max_batch_size(),
        }
        if sizes:
            hist = score_histogram(sizes, bin_width=1.0, label="batch_size")
            payload["histogram"] = {
                "edges": [float(e) for e in hist.edges],
                "counts": [int(c) for c in hist.counts],
            }
        return payload

    def snapshot(self) -> dict:
        """The full ``/stats`` payload (JSON-able)."""
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": dict(self.requests),
            "requests_total": int(sum(self.requests.values())),
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "decisions": {"accepted": self.accepted, "rejected": self.rejected},
            "enroll_rejected": self.enroll_rejected,
            "overloads": self.overloads,
            "deadline_exceeded": self.deadline_exceeded,
            "latency": self.latency_snapshot(),
            "batching": self.batch_snapshot(),
        }


__all__ = ["ServiceStats", "LATENCY_WINDOW", "ENDPOINTS"]
