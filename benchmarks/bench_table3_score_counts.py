"""T3 — Table 3: match scores for different match scenarios.

At paper scale the counting rules give exactly 1,976 / 9,880 / 120,855 /
483,420 scores; the benchmark validates the rules at paper scale (cheap,
enumeration only) and times the job enumeration, then records the
Table 3 rendering of the shared benchmark run.
"""

from repro.api import (
    enumerate_ddmg_jobs,
    enumerate_dmg_jobs,
    expected_counts,
    render_table3,
    StudyConfig,
)


def test_table3_counting_rules(benchmark, study, record_artifact):
    def enumerate_paper_scale():
        return (
            len(enumerate_dmg_jobs(494)),
            len(enumerate_ddmg_jobs(494)),
        )

    dmg, ddmg = benchmark(enumerate_paper_scale)
    assert dmg == 1976      # Table 3, DMG row
    assert ddmg == 9880     # Table 3, DDMG row
    paper = expected_counts(StudyConfig.paper_scale())
    assert paper["DMI"] == 120_855
    assert paper["DDMI"] == 483_420

    sets = study.score_sets()
    text = render_table3(sets, study.config.n_subjects)
    text += (
        "\n\npaper scale: DMG=1,976  DDMG=9,880  DMI=120,855  DDMI=483,420"
    )
    record_artifact(text)
    print("\n" + text)

    scaled = expected_counts(study.config)
    for scenario, expected in scaled.items():
        assert len(sets[scenario]) == expected
