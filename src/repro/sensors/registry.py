"""Device registry — Table 1 of the paper plus behavioural parameters.

The paper's Table 1 gives the physical characteristics of the four
live-scan devices; D4 is the ink-based ten-print card scanned on a
flat-bed at 500 dpi.  Beyond the published numbers, each profile carries
the behavioural parameters of the acquisition model; the comments note
which published observation motivates each choice.

========  ==============================  ===========================================
device    model                           behavioural rationale
========  ==============================  ===========================================
D0        Cross Match Guardian R2         benchmark-grade desktop scanner; the
                                          study's best intra-device FNMR (Table 5)
D1        i3 digID Mini                   compact device; its *diagonal* FNMR is the
                                          worst of the live-scans (Table 5 anomaly) —
                                          modeled as higher per-impression noise
D2        L1 TouchPrint 5300              top-tier booking station; "presents a larger
                                          image size with respect to D1"
D3        Cross Match Seek II             handheld mobile unit with a small platen
                                          (40.6 x 38.1 mm capture area); placement
                                          variability is the paper's stated anomaly
D4        ink ten-print card              rolled ink impressions, scanned; strongest
                                          distortion, lowest cross-device scores
                                          (Figure 4), single impression per subject
========  ==============================  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..runtime.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceProfile:
    """Physical (Table 1) and behavioural parameters of one device.

    Physical attributes are verbatim from the paper; behavioural
    attributes parameterize :mod:`repro.sensors` acquisition models.

    Attributes
    ----------
    device_id:
        ``"D0"`` … ``"D4"``.
    model:
        Commercial model name (Table 1).
    resolution_dpi, image_width_px, image_height_px:
        Capture resolution and image size (Table 1).
    capture_width_mm, capture_height_mm:
        Sensing area (Table 1).
    family:
        ``"optical"`` or ``"ink"``.
    impression_sets:
        Number of impression sets collected (2 for live-scan, 1 for ink).
    signature_magnitude_mm:
        RMS of the fixed device-signature warp field — the systematic
        geometric fingerprint of the sensing-element arrangement.
    elastic_magnitude_mm:
        RMS of the per-impression stochastic elastic warp.
    placement_sigma_mm, rotation_sigma_deg:
        Finger placement variability on this device.
    detection_reliability:
        Multiplier on minutia detection probability (extractor quality).
    spurious_rate:
        Scale of the spurious-minutiae Poisson rate at poor clarity.
    position_jitter_mm, angle_jitter_deg:
        Measurement noise on reported minutia position/direction.
    contrast:
        Baseline imaging contrast in (0, 1]; feeds quality features.
    """

    device_id: str
    model: str
    resolution_dpi: int
    image_width_px: int
    image_height_px: int
    capture_width_mm: float
    capture_height_mm: float
    family: str
    impression_sets: int
    signature_magnitude_mm: float
    elastic_magnitude_mm: float
    placement_sigma_mm: float
    rotation_sigma_deg: float
    detection_reliability: float
    spurious_rate: float
    position_jitter_mm: float
    angle_jitter_deg: float
    contrast: float

    def __post_init__(self) -> None:
        if self.family not in ("optical", "ink"):
            raise ConfigurationError(f"unknown device family {self.family!r}")
        if self.impression_sets < 1:
            raise ConfigurationError("impression_sets must be >= 1")

    @property
    def window_mm(self) -> Tuple[float, float]:
        """Effective capture window: sensing area clipped to image extent."""
        image_w = self.image_width_px / self.resolution_dpi * 25.4
        image_h = self.image_height_px / self.resolution_dpi * 25.4
        return (min(self.capture_width_mm, image_w),
                min(self.capture_height_mm, image_h))


#: The study's devices, Table 1 values verbatim.
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "D0": DeviceProfile(
        device_id="D0", model="Cross Match Guardian R2",
        resolution_dpi=500, image_width_px=800, image_height_px=750,
        capture_width_mm=81.0, capture_height_mm=76.0,
        family="optical", impression_sets=2,
        signature_magnitude_mm=0.46, elastic_magnitude_mm=0.20,
        placement_sigma_mm=1.3, rotation_sigma_deg=6.0,
        detection_reliability=0.97, spurious_rate=1.2,
        position_jitter_mm=0.055, angle_jitter_deg=4.5, contrast=0.95,
    ),
    "D1": DeviceProfile(
        device_id="D1", model="i3 digID Mini",
        resolution_dpi=500, image_width_px=752, image_height_px=750,
        capture_width_mm=81.0, capture_height_mm=76.0,
        family="optical", impression_sets=2,
        signature_magnitude_mm=0.50, elastic_magnitude_mm=0.27,
        placement_sigma_mm=1.6, rotation_sigma_deg=7.0,
        detection_reliability=0.92, spurious_rate=2.6,
        position_jitter_mm=0.075, angle_jitter_deg=6.0, contrast=0.84,
    ),
    "D2": DeviceProfile(
        device_id="D2", model="L1 Identity Solutions TouchPrint 5300",
        resolution_dpi=500, image_width_px=800, image_height_px=750,
        capture_width_mm=81.0, capture_height_mm=76.0,
        family="optical", impression_sets=2,
        signature_magnitude_mm=0.52, elastic_magnitude_mm=0.22,
        placement_sigma_mm=1.3, rotation_sigma_deg=6.0,
        detection_reliability=0.96, spurious_rate=1.4,
        position_jitter_mm=0.060, angle_jitter_deg=5.0, contrast=0.93,
    ),
    "D3": DeviceProfile(
        device_id="D3", model="Cross Match Seek II",
        resolution_dpi=500, image_width_px=800, image_height_px=750,
        capture_width_mm=40.6, capture_height_mm=38.1,
        family="optical", impression_sets=2,
        signature_magnitude_mm=0.48, elastic_magnitude_mm=0.24,
        placement_sigma_mm=2.4, rotation_sigma_deg=9.0,
        detection_reliability=0.95, spurious_rate=1.6,
        position_jitter_mm=0.065, angle_jitter_deg=5.5, contrast=0.90,
    ),
    "D4": DeviceProfile(
        device_id="D4", model="Ink ten-print card (flat-bed scanned)",
        resolution_dpi=500, image_width_px=800, image_height_px=750,
        capture_width_mm=40.6, capture_height_mm=38.1,
        family="ink", impression_sets=1,
        signature_magnitude_mm=0.74, elastic_magnitude_mm=0.45,
        placement_sigma_mm=1.8, rotation_sigma_deg=8.0,
        detection_reliability=0.93, spurious_rate=2.2,
        position_jitter_mm=0.100, angle_jitter_deg=7.0, contrast=0.82,
    ),
}

#: Capture order used for every participant (fixed, per Section III.A).
DEVICE_ORDER: Tuple[str, ...] = ("D0", "D1", "D2", "D3", "D4")

#: The four live-scan devices (D4 is the ink ten-print card).
LIVESCAN_DEVICES: Tuple[str, ...] = ("D0", "D1", "D2", "D3")


def get_profile(device_id: str) -> DeviceProfile:
    """Look up a device profile by id, with a helpful error."""
    try:
        return DEVICE_PROFILES[device_id]
    except KeyError:
        known = ", ".join(sorted(DEVICE_PROFILES))
        raise ConfigurationError(
            f"unknown device {device_id!r}; known devices: {known}"
        ) from None


def table1_rows() -> List[Dict[str, object]]:
    """The published Table 1, row by row, for the report renderer."""
    rows = []
    for device_id in LIVESCAN_DEVICES:
        p = DEVICE_PROFILES[device_id]
        rows.append(
            {
                "device": device_id,
                "model": p.model,
                "resolution_dpi": p.resolution_dpi,
                "image_size_px": f"{p.image_width_px} x {p.image_height_px}",
                "capture_area_mm": f"{p.capture_width_mm} x {p.capture_height_mm}",
            }
        )
    return rows


__all__ = [
    "DeviceProfile",
    "DEVICE_PROFILES",
    "DEVICE_ORDER",
    "LIVESCAN_DEVICES",
    "get_profile",
    "table1_rows",
]
