"""Binned distributions and terminal rendering for the paper's figures.

Figures 2–4 are score histograms; Figure 5 is a 5×5 frequency surface
over (gallery quality, probe quality).  The library renders both as
plain text so every figure can be regenerated in a headless environment
and diffed in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """A one-dimensional binned distribution.

    Attributes
    ----------
    edges:
        Bin edges, length ``len(counts) + 1``, ascending.
    counts:
        Observations per bin.
    label:
        Optional series name (e.g. ``"DMG"``).
    """

    edges: np.ndarray
    counts: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.counts) + 1:
            raise ValueError("edges must be one longer than counts")

    @property
    def total(self) -> int:
        """Total number of observations."""
        return int(self.counts.sum())

    def density(self) -> np.ndarray:
        """Counts normalized to sum to 1 (empty histogram → zeros)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def bin_range(self, index: int) -> Tuple[float, float]:
        """The ``[low, high)`` range of bin ``index``."""
        return float(self.edges[index]), float(self.edges[index + 1])

    def count_in(self, low: float, high: float) -> int:
        """Sum counts of all bins fully inside ``[low, high)``."""
        mask = (self.edges[:-1] >= low) & (self.edges[1:] <= high)
        return int(self.counts[mask].sum())


def score_histogram(
    scores: Sequence[float],
    bin_width: float = 1.0,
    score_range: Optional[Tuple[float, float]] = None,
    label: str = "",
) -> Histogram:
    """Histogram of similarity scores on fixed-width bins.

    The paper reads its figures on unit-width score bins ("the frequency
    of the DMI scores for the range 0-1 is 18,721 ..."), so unit bins are
    the default.
    """
    arr = np.asarray(scores, dtype=np.float64).ravel()
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    if score_range is None:
        if arr.size == 0:
            score_range = (0.0, 1.0)
        else:
            score_range = (float(np.floor(arr.min())), float(np.ceil(arr.max())))
    lo, hi = score_range
    if hi <= lo:
        hi = lo + bin_width
    n_bins = max(1, int(np.ceil((hi - lo) / bin_width)))
    edges = lo + bin_width * np.arange(n_bins + 1)
    counts, __ = np.histogram(arr, bins=edges)
    return Histogram(edges=edges, counts=counts, label=label)


def render_histogram(
    hist: Histogram,
    width: int = 50,
    log_scale: bool = False,
) -> str:
    """Render a histogram as an ASCII bar chart (one line per bin)."""
    lines: List[str] = []
    if hist.label:
        lines.append(f"{hist.label} (n={hist.total})")
    counts = hist.counts.astype(np.float64)
    if log_scale:
        counts = np.log10(counts + 1.0)
    peak = counts.max() if counts.size else 0.0
    for i, count in enumerate(hist.counts):
        lo, hi = hist.bin_range(i)
        bar_len = 0 if peak == 0 else int(round(width * counts[i] / peak))
        bar = "#" * bar_len
        lines.append(f"  [{lo:7.2f},{hi:7.2f}) {count:>8d} |{bar}")
    return "\n".join(lines)


def render_overlaid(
    hist_a: Histogram,
    hist_b: Histogram,
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """Render two same-binning histograms side by side (Figures 2/3 style)."""
    if not np.array_equal(hist_a.edges, hist_b.edges):
        raise ValueError("histograms must share bin edges to be overlaid")
    a = hist_a.counts.astype(np.float64)
    b = hist_b.counts.astype(np.float64)
    if log_scale:
        a = np.log10(a + 1.0)
        b = np.log10(b + 1.0)
    peak = max(a.max() if a.size else 0.0, b.max() if b.size else 0.0)
    label_a = hist_a.label or "A"
    label_b = hist_b.label or "B"
    lines = [f"{label_a} (n={hist_a.total})  vs  {label_b} (n={hist_b.total})"]
    for i in range(len(hist_a.counts)):
        lo, hi = hist_a.bin_range(i)
        la = 0 if peak == 0 else int(round(width * a[i] / peak))
        lb = 0 if peak == 0 else int(round(width * b[i] / peak))
        lines.append(
            f"  [{lo:6.1f},{hi:6.1f}) "
            f"{hist_a.counts[i]:>8d} |{'#' * la:<{width}}| "
            f"{hist_b.counts[i]:>8d} |{'*' * lb}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class FrequencySurface:
    """A 2-D frequency table over integer category pairs (Figure 5).

    Attributes
    ----------
    row_labels, col_labels:
        Category values for the rows and columns (e.g. NFIQ levels 1–5).
    counts:
        ``counts[i, j]`` is the frequency at (row i, column j).
    """

    row_labels: Sequence[int]
    col_labels: Sequence[int]
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.counts.shape != (len(self.row_labels), len(self.col_labels)):
            raise ValueError("counts shape must match labels")

    @property
    def total(self) -> int:
        """Total frequency over all cells."""
        return int(self.counts.sum())

    def render(self, row_title: str = "rows", col_title: str = "cols") -> str:
        """Render the surface as an aligned text matrix."""
        header = " " * 10 + "".join(f"{c:>8}" for c in self.col_labels)
        lines = [f"{row_title} \\ {col_title}", header]
        for i, r in enumerate(self.row_labels):
            row = "".join(f"{int(self.counts[i, j]):>8d}"
                          for j in range(len(self.col_labels)))
            lines.append(f"{r:>10}" + row)
        return "\n".join(lines)


def frequency_surface(
    row_values: Sequence[int],
    col_values: Sequence[int],
    levels: Sequence[int] = (1, 2, 3, 4, 5),
) -> FrequencySurface:
    """Count co-occurrences of (row, col) pairs over fixed category levels."""
    rows = np.asarray(row_values, dtype=np.int64).ravel()
    cols = np.asarray(col_values, dtype=np.int64).ravel()
    if rows.size != cols.size:
        raise ValueError("row_values and col_values must pair up")
    levels = list(levels)
    index = {level: i for i, level in enumerate(levels)}
    counts = np.zeros((len(levels), len(levels)), dtype=np.int64)
    for r, c in zip(rows, cols):
        if int(r) in index and int(c) in index:
            counts[index[int(r)], index[int(c)]] += 1
    return FrequencySurface(row_labels=levels, col_labels=levels, counts=counts)


__all__ = [
    "Histogram",
    "score_histogram",
    "render_histogram",
    "render_overlaid",
    "FrequencySurface",
    "frequency_surface",
]
