"""Device inference from quality measures — Poh, Kittler & Bourlai.

Section II of the paper describes Poh et al.'s mitigation for the
cross-device mismatch scenario: "the problem was modeled in terms of a
Bayesian Network used to estimate the posterior probability of the
device d given quality measures q, referred to as p(d|q).  The term
p(d|q) of the network is estimated using the Gaussian mixture model
(GMM) based on training data.  During testing, the device is unknown and
it can be inferred based on the quality measures extracted from the
images."

This module implements that estimator from scratch:

* a diagonal-covariance :class:`GaussianMixture` fit by EM;
* :class:`DeviceInferenceModel` — one mixture per device over the
  :meth:`~repro.quality.features.QualityFeatures.as_vector` quality
  measures, a uniform device prior, and Bayes' rule for the posterior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quality.features import QualityFeatures
from ..runtime.errors import CalibrationError

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class GaussianMixture:
    """Diagonal-covariance Gaussian mixture fit by expectation-maximization.

    Attributes (set by :meth:`fit`)
    -------------------------------
    weights:
        (k,) mixing proportions.
    means:
        (k, d) component means.
    variances:
        (k, d) per-dimension variances, floored for stability.
    """

    n_components: int = 3
    max_iterations: int = 120
    tolerance: float = 1e-5
    variance_floor: float = 1e-4

    weights: Optional[np.ndarray] = None
    means: Optional[np.ndarray] = None
    variances: Optional[np.ndarray] = None

    def fit(self, data: np.ndarray, rng: np.random.Generator) -> "GaussianMixture":
        """Fit the mixture to (n, d) data; returns self."""
        x = np.asarray(data, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < self.n_components:
            raise CalibrationError(
                f"GMM needs at least {self.n_components} samples of shape (n, d), "
                f"got {x.shape}"
            )
        n, d = x.shape
        # Initialize means on random data points; variances to data variance.
        pick = rng.choice(n, size=self.n_components, replace=False)
        self.means = x[pick].copy()
        global_var = np.maximum(x.var(axis=0), self.variance_floor)
        self.variances = np.tile(global_var, (self.n_components, 1))
        self.weights = np.full(self.n_components, 1.0 / self.n_components)

        previous = -np.inf
        for __ in range(self.max_iterations):
            log_resp, log_likelihood = self._e_step(x)
            self._m_step(x, log_resp)
            if abs(log_likelihood - previous) < self.tolerance * max(1.0, abs(previous)):
                break
            previous = log_likelihood
        return self

    def _component_log_pdf(self, x: np.ndarray) -> np.ndarray:
        """(n, k) log N(x | mean_k, var_k) for diagonal covariances."""
        diff = x[:, None, :] - self.means[None, :, :]
        inv_var = 1.0 / self.variances
        quad = np.sum(diff**2 * inv_var[None, :, :], axis=2)
        log_det = np.sum(np.log(self.variances), axis=1)
        d = x.shape[1]
        return -0.5 * (quad + log_det[None, :] + d * _LOG_2PI)

    def _e_step(self, x: np.ndarray) -> Tuple[np.ndarray, float]:
        log_prob = self._component_log_pdf(x) + np.log(self.weights)[None, :]
        log_norm = _logsumexp(log_prob, axis=1)
        return log_prob - log_norm[:, None], float(log_norm.sum())

    def _m_step(self, x: np.ndarray, log_resp: np.ndarray) -> None:
        resp = np.exp(log_resp)
        totals = resp.sum(axis=0) + 1e-12
        self.weights = totals / totals.sum()
        self.means = (resp.T @ x) / totals[:, None]
        diff = x[:, None, :] - self.means[None, :, :]
        self.variances = np.maximum(
            np.einsum("nk,nkd->kd", resp, diff**2) / totals[:, None],
            self.variance_floor,
        )

    def log_likelihood(self, x: np.ndarray) -> np.ndarray:
        """(n,) per-sample log-likelihood under the fitted mixture."""
        if self.means is None:
            raise CalibrationError("GaussianMixture is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        log_prob = self._component_log_pdf(x) + np.log(self.weights)[None, :]
        return _logsumexp(log_prob, axis=1)


def _logsumexp(values: np.ndarray, axis: int) -> np.ndarray:
    peak = np.max(values, axis=axis, keepdims=True)
    out = peak.squeeze(axis) + np.log(
        np.sum(np.exp(values - peak), axis=axis)
    )
    return out


class DeviceInferenceModel:
    """Posterior p(device | quality measures) via per-device GMMs.

    Train with labeled impressions (device id known at enrollment time),
    then infer the capture device of unlabeled probes from their quality
    feature vectors alone — the situation Poh et al. address, where "the
    device is unknown and it can be inferred based on the quality
    measures extracted from the images".
    """

    def __init__(self, n_components: int = 3) -> None:
        self._n_components = n_components
        self._mixtures: Dict[str, GaussianMixture] = {}
        self._devices: List[str] = []

    @property
    def devices(self) -> Tuple[str, ...]:
        """Device labels seen at training time."""
        return tuple(self._devices)

    def fit(
        self,
        features_by_device: Dict[str, Sequence[QualityFeatures]],
        rng: np.random.Generator,
    ) -> "DeviceInferenceModel":
        """Fit one mixture per device; returns self."""
        if len(features_by_device) < 2:
            raise CalibrationError("device inference needs at least two devices")
        self._devices = sorted(features_by_device)
        for device in self._devices:
            vectors = np.array(
                [f.as_vector() for f in features_by_device[device]]
            )
            k = min(self._n_components, max(1, len(vectors) // 8))
            mixture = GaussianMixture(n_components=k)
            mixture.fit(vectors, rng)
            self._mixtures[device] = mixture
        return self

    def posterior(self, features: QualityFeatures) -> Dict[str, float]:
        """p(d | q) over the trained devices (uniform prior)."""
        if not self._mixtures:
            raise CalibrationError("DeviceInferenceModel is not fitted")
        vector = features.as_vector()[None, :]
        log_liks = np.array(
            [float(self._mixtures[d].log_likelihood(vector)[0]) for d in self._devices]
        )
        log_post = log_liks - _logsumexp(log_liks[None, :], axis=1)[0]
        probs = np.exp(log_post)
        return {d: float(p) for d, p in zip(self._devices, probs)}

    def predict(self, features: QualityFeatures) -> str:
        """The maximum-a-posteriori device."""
        posterior = self.posterior(features)
        return max(posterior, key=posterior.get)

    def accuracy(
        self, labeled: Sequence[Tuple[str, QualityFeatures]]
    ) -> float:
        """Top-1 device identification accuracy on labeled samples."""
        if not labeled:
            raise CalibrationError("accuracy needs at least one labeled sample")
        hits = sum(1 for device, f in labeled if self.predict(f) == device)
        return hits / len(labeled)


__all__ = ["GaussianMixture", "DeviceInferenceModel"]
