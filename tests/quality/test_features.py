"""Quality feature vector."""

import numpy as np
import pytest

from repro.quality.features import FEATURE_DIM, QualityFeatures


def _features(**overrides):
    params = dict(
        minutiae_count=35,
        contact_area_fraction=0.7,
        mean_coherence=0.8,
        dryness_artifact=0.1,
        noise_level=0.2,
        mean_minutia_quality=0.75,
    )
    params.update(overrides)
    return QualityFeatures(**params)


class TestValidation:
    def test_valid(self):
        assert _features().minutiae_count == 35

    def test_negative_count(self):
        with pytest.raises(ValueError):
            _features(minutiae_count=-1)

    @pytest.mark.parametrize(
        "field",
        [
            "contact_area_fraction",
            "mean_coherence",
            "dryness_artifact",
            "noise_level",
            "mean_minutia_quality",
        ],
    )
    def test_unit_interval_enforced(self, field):
        with pytest.raises(ValueError):
            _features(**{field: 1.5})
        with pytest.raises(ValueError):
            _features(**{field: -0.1})


class TestVector:
    def test_dimension(self):
        assert _features().as_vector().shape == (FEATURE_DIM,)

    def test_all_unit_scale(self):
        vector = _features(minutiae_count=500).as_vector()
        assert np.all((vector >= 0) & (vector <= 1))

    def test_count_saturates(self):
        low = _features(minutiae_count=10).as_vector()[0]
        high = _features(minutiae_count=60).as_vector()[0]
        huge = _features(minutiae_count=600).as_vector()[0]
        assert low < high < huge <= 1.0
