"""Blocking HTTP client for the serving layer.

A thin :mod:`http.client` wrapper used by the tests, the CI smoke
check, and the load benchmark — anything that wants to talk to a
:class:`~repro.service.server.VerificationServer` without pulling in an
async stack.  Templates are serialized to base64 ANSI/INCITS 378 on the
way out, mirroring :func:`repro.service.server.decode_template_field`
on the way in.

The client speaks the versioned ``/v1`` API by default; pass
``api_base=""`` to exercise the deprecated unversioned paths (the
deprecation tests do).  Error responses come back as
:class:`ServiceClientError` carrying the HTTP status and the server's
error envelope — ``code``/``message``/``request_id`` are exposed as
properties — so callers can assert on exact status codes (the smoke
test does) or branch on ``retryable`` (429/503/504 — the transient
statuses — line up with the study's
:class:`~repro.runtime.errors.TransientError` taxonomy).  The server's
``Retry-After`` header (sent on 429 and 503) is honored when backing
off — :meth:`ServiceClient.retry_delay` surfaces it,
:meth:`ServiceClient.wait_until_healthy` sleeps by it instead of a
fixed interval, and ``retry_rate_limited=N`` retries a 429 up to ``N``
times transparently.  ``api_key`` authenticates against a keyed server
(:mod:`repro.service.auth`).

Every request carries a generated ``X-Request-ID``, and the id the
server echoes back is kept on :attr:`ServiceClient.last_request_id`
(response headers on :attr:`~ServiceClient.last_headers`), so a caller
can tie its own records to the server's reqlog and traces.
"""

from __future__ import annotations

import base64
import http.client
import json
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..io.incits378 import encode as encode_378
from ..matcher.types import Template
from ..runtime.errors import ReproError, TransientError
from ..runtime.telemetry import new_request_id

#: HTTP statuses that correspond to transient (retry-worthy) failures:
#: overload (503), deadline (504), and rate limiting (429).
RETRYABLE_STATUSES = frozenset({429, 503, 504})


class ServiceClientError(ReproError):
    """The server answered with an error status.

    ``payload`` is the parsed response body.  The v1 API wraps every
    failure in one envelope — ``{"error": {"code", "message",
    "request_id", ...}}`` — surfaced here through the :attr:`code`,
    :attr:`error_message`, :attr:`request_id` and :attr:`kind`
    properties; legacy flat bodies (``{"error": "..."}``) degrade to
    ``None`` codes rather than raising.
    """

    def __init__(self, status: int, payload: dict) -> None:
        error = payload.get("error") if isinstance(payload, dict) else None
        detail = error.get("message") if isinstance(error, dict) else error
        super().__init__(
            f"service returned HTTP {status}: {detail if detail is not None else payload}"
        )
        self.status = status
        self.payload = payload

    @property
    def _envelope(self) -> dict:
        error = self.payload.get("error") if isinstance(self.payload, dict) else None
        return error if isinstance(error, dict) else {}

    @property
    def code(self) -> Optional[str]:
        """The envelope's machine-readable error slug."""
        return self._envelope.get("code")

    @property
    def error_message(self) -> Optional[str]:
        """The envelope's human-readable message."""
        envelope = self._envelope
        if envelope:
            return envelope.get("message")
        error = self.payload.get("error") if isinstance(self.payload, dict) else None
        return error if isinstance(error, str) else None

    @property
    def request_id(self) -> Optional[str]:
        """The request id the server stamped on the failure."""
        return self._envelope.get("request_id")

    @property
    def kind(self) -> Optional[str]:
        """The library exception class named by the envelope, if any."""
        return self._envelope.get("kind")

    @property
    def retryable(self) -> bool:
        """Whether the failure is transient (overload / deadline)."""
        return self.status in RETRYABLE_STATUSES


def encode_template(template: Template) -> str:
    """Base64 INCITS 378 wire form of a template."""
    return base64.b64encode(encode_378(template)).decode("ascii")


class ServiceClient:
    """Blocking client for one server address.

    One persistent keep-alive connection per client instance; a client
    is therefore *not* thread-safe — the load generator gives each
    worker thread its own.

    ``follower`` names an optional read replica (a ``--follow`` server
    tailing the primary's WAL); ``followers`` generalizes it to a fleet:
    :meth:`verify` and :meth:`identify` round-robin across the replicas,
    skipping past any that are unreachable and falling back to the
    primary when none answer, while writes (:meth:`enroll`,
    :meth:`delete`) always target the primary — a replica would refuse
    them with ``read_only`` anyway.

    ``api_key`` attaches ``Authorization: Bearer <key>`` to every
    request (replicas included — a follower enforces the same keyfile
    as its primary).  ``retry_rate_limited`` opts into transparent 429
    retries: up to that many extra attempts, each sleeping the server's
    advertised ``Retry-After`` first; the default 0 surfaces the 429 to
    the caller immediately.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 30.0,
        api_base: str = "/v1",
        follower: Optional[Tuple[str, int]] = None,
        followers: Optional[Sequence[Tuple[str, int]]] = None,
        api_key: Optional[str] = None,
        retry_rate_limited: int = 0,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        #: Path prefix for every endpoint; "" targets the deprecated
        #: unversioned surface.
        self.api_base = api_base.rstrip("/")
        self.api_key = api_key
        self.retry_rate_limited = max(0, int(retry_rate_limited))
        replicas: List[Tuple[str, int]] = []
        if follower is not None:
            replicas.append(follower)
        if followers is not None:
            replicas.extend(followers)
        self._followers: List["ServiceClient"] = [
            ServiceClient(
                replica_host, int(replica_port),
                timeout_s=timeout_s, api_base=api_base, api_key=api_key,
            )
            for replica_host, replica_port in replicas
        ]
        self._follower_rr = 0
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Request id echoed by the server on the last response (the id
        #: this client sent, unless a proxy rewrote it).
        self.last_request_id: Optional[str] = None
        #: Lower-cased headers of the last response (``retry-after``
        #: shows up here on a 429/503).
        self.last_headers: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout_s
            )
        return self._connection

    def close(self) -> None:
        """Drop the persistent connection(s) (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        for replica in self._followers:
            replica.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _exchange(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> tuple:
        """One round trip; returns ``(status, raw_body)`` after capturing
        the echoed request id and response headers."""
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        request_id = new_request_id()
        headers["X-Request-ID"] = request_id
        if self.api_key is not None:
            headers["Authorization"] = f"Bearer {self.api_key}"
        try:
            connection = self._connect()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (ConnectionError, socket.timeout, http.client.HTTPException, OSError) as exc:
            self.close()
            raise TransientError(
                f"service at {self._host}:{self._port} unreachable: {exc}"
            ) from exc
        self.last_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        self.last_request_id = self.last_headers.get("x-request-id", request_id)
        return response.status, raw

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        attempts_left = self.retry_rate_limited
        while True:
            status, raw = self._exchange(method, path, payload)
            try:
                data = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                data = {"error": raw.decode("utf-8", "replace")}
            if status == 429 and attempts_left > 0:
                # The limiter advertises exactly when the next token
                # lands; sleeping that long makes the retry succeed
                # (absent competing traffic) instead of busy-looping.
                attempts_left -= 1
                time.sleep(self.retry_delay())
                continue
            if status >= 400:
                raise ServiceClientError(status, data)
            return data

    def _path(self, endpoint: str) -> str:
        """An endpoint path under the client's API base."""
        return f"{self.api_base}{endpoint}"

    @property
    def follower(self) -> Optional["ServiceClient"]:
        """The first read-replica client, when any was configured."""
        return self._followers[0] if self._followers else None

    @property
    def followers(self) -> Tuple["ServiceClient", ...]:
        """Every configured read-replica client, in declaration order."""
        return tuple(self._followers)

    def _read_request(self, method: str, path: str, payload: dict) -> dict:
        """A read: round-robin the replicas, fall back to the primary.

        Successive reads start from successive replicas, so a replica
        fleet shares the load evenly.  Only transport failures move on
        to the next replica (and ultimately the primary) — an HTTP
        error from a replica (bad template, unknown identity, 401/403,
        429) is the same answer the primary would give, so it
        propagates as-is rather than doubling the load.
        """
        count = len(self._followers)
        if count:
            start = self._follower_rr
            self._follower_rr = (start + 1) % count
            for offset in range(count):
                replica = self._followers[(start + offset) % count]
                try:
                    result = replica._request(method, path, payload)
                except TransientError:
                    continue  # replica unreachable: try the next one
                self.last_request_id = replica.last_request_id
                self.last_headers = replica.last_headers
                return result
        return self._request(method, path, payload)

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """Liveness probe."""
        return self._request("GET", self._path("/healthz"))

    def stats(self) -> dict:
        """The server's live counters and distributions."""
        return self._request("GET", self._path("/stats"))

    def metrics(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        status, raw = self._exchange("GET", self._path("/metrics"))
        text = raw.decode("utf-8", "replace")
        if status >= 400:
            raise ServiceClientError(status, {"error": text})
        return text

    def enroll(
        self, identity: str, template: Template, device: str = "default"
    ) -> dict:
        """Enroll one template (may raise 409 via ServiceClientError)."""
        return self._request(
            "POST",
            self._path("/enroll"),
            {
                "identity": identity,
                "device": device,
                "template": encode_template(template),
            },
        )

    def verify(
        self,
        identity: str,
        template: Template,
        device: str = "default",
        threshold: Optional[float] = None,
        timeout_s: Optional[float] = None,
    ) -> dict:
        """1:1 verification of a claimed identity."""
        payload: dict = {
            "identity": identity,
            "device": device,
            "template": encode_template(template),
        }
        if threshold is not None:
            payload["threshold"] = threshold
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._read_request("POST", self._path("/verify"), payload)

    def identify(
        self,
        template: Template,
        device: Optional[str] = "default",
        max_candidates: int = 10,
        threshold: Optional[float] = None,
        timeout_s: Optional[float] = None,
        mode: Optional[str] = None,
        candidate_k: Optional[int] = None,
    ) -> dict:
        """1:N search; ``device=None`` searches every shard.

        ``mode`` selects the search path (``"exact"`` exhaustive,
        ``"two_stage"`` descriptor-prefiltered; ``None`` defers to the
        server's default), and ``candidate_k`` sizes the two-stage
        shortlist.  The response's ``search`` block reports what
        actually ran.
        """
        payload: dict = {
            "template": encode_template(template),
            "max_candidates": max_candidates,
        }
        if device is not None:
            payload["device"] = device
        if threshold is not None:
            payload["threshold"] = threshold
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        if mode is not None:
            payload["mode"] = mode
        if candidate_k is not None:
            payload["candidate_k"] = candidate_k
        return self._read_request("POST", self._path("/identify"), payload)

    def delete(self, identity: str, device: str = "default") -> dict:
        """Remove one enrollment."""
        return self._request("DELETE", self._path(f"/enroll/{device}/{identity}"))

    def retry_delay(self, default: float = 0.05) -> float:
        """How long to back off before retrying the last failed request.

        Honors the server's ``Retry-After`` header (seconds form) when
        the last response carried one — the server knows its own queue
        better than any client-side constant — and falls back to
        ``default`` when absent or unparsable.  Negative advertised
        delays clamp to 0.
        """
        raw = self.last_headers.get("retry-after")
        if raw is not None:
            try:
                return max(0.0, float(raw))
            except ValueError:
                pass
        return max(0.0, default)

    def wait_until_healthy(self, timeout_s: float = 10.0) -> dict:
        """Poll ``/healthz`` until the server answers (startup helper).

        Backs off by the server's ``Retry-After`` on a 503 (capped to
        the remaining budget) and by a short fixed interval while the
        socket is not answering at all.
        """
        deadline = time.monotonic() + timeout_s
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except ServiceClientError as exc:
                last_error = exc
                delay = self.retry_delay() if exc.status == 503 else 0.05
                time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            except TransientError as exc:
                last_error = exc
                time.sleep(0.05)
        raise TransientError(
            f"service at {self._host}:{self._port} did not become healthy "
            f"within {timeout_s:.1f}s: {last_error}"
        )


__all__ = [
    "ServiceClient",
    "ServiceClientError",
    "encode_template",
    "RETRYABLE_STATUSES",
]
