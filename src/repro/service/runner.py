"""Host a :class:`VerificationServer` on a background thread.

The server is asyncio all the way down, but most of its consumers are
blocking code: pytest, the load benchmark, a notebook.
:class:`ServiceRunner` owns a private event loop on a daemon thread,
starts the server there, and exposes the bound address — so synchronous
callers can drive the service with :class:`~repro.service.client.ServiceClient`
and still get real concurrent-request behaviour (the event loop thread
keeps coalescing micro-batches while N client threads block on their
sockets).

Startup failures (port in use → :class:`ServerStartupError`) are
re-raised in the caller's thread from :meth:`start`, not swallowed on
the loop thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from ..runtime.errors import ConfigurationError
from .server import VerificationServer

#: How long :meth:`ServiceRunner.start` waits for the loop thread.
_STARTUP_TIMEOUT_S = 30.0


class ServiceRunner:
    """Run one server on its own event-loop thread.

    Usable as a context manager::

        with ServiceRunner(server) as (host, port):
            ServiceClient(host, port).healthz()
    """

    def __init__(self, server: VerificationServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> Tuple[str, int]:
        """Start the loop thread and the server; returns (host, port)."""
        if self._thread is not None:
            raise ConfigurationError("ServiceRunner is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(_STARTUP_TIMEOUT_S):
            raise ConfigurationError("service thread did not start in time")
        if self._startup_error is not None:
            self._thread.join(timeout=_STARTUP_TIMEOUT_S)
            self._thread = None
            raise self._startup_error
        return self.server.address

    def stop(self) -> None:
        """Stop the server and join the loop thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=_STARTUP_TIMEOUT_S)
        self._thread = None
        self._loop = None
        self._stop = None

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 - re-raised in start()
            self._startup_error = exc
            self._started.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


__all__ = ["ServiceRunner"]
