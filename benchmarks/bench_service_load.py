"""Load-benchmark the online serving layer: micro-batching on vs off.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_load.py \
        --label "PR-5 serving layer" --out service_load_pr5.json

Closed-loop load generator: ``--clients`` concurrent client threads
replay a mixed workload against a live ``VerificationServer`` over real
HTTP.  The gallery holds 8 subjects enrolled on two capture devices
(D0 and D1 — the interoperability study's cross-device setting), and
each client loops through cycles of one same-device verify plus three
all-device identifies for its assigned identity.  Client identities are
drawn from a *hot population*: with ``--hot 4``, 16 clients replay
traffic for 4 frequent identities (4 clients per identity), the
duplicate-heavy regime where an admission queue sees the same
comparison arrive from several in-flight requests at once.

Each hot-population level runs twice — batching disabled (the control
arm: one scalar matcher call and one worker round trip per comparison)
and enabled (pair jobs coalesce into shared dispatches and duplicate
comparisons collapse to a single kernel invocation).  Both arms score
bit-identical results; the record carries throughput, client-observed
latency percentiles, the server's batch-size distribution, and the
matcher's collapse/invocation counters so the speedup is attributable.

A final sweep measures the observability stack itself: the same
batched workload with request tracing + the JSONL request log enabled
versus ``tracing=False`` and no log.  The tracing arm must stay within
the 3% throughput-overhead budget; the record reports the measured
overhead against it (best-of ``--repeats`` per arm to damp scheduler
noise).

The admission-control sweep does the same for the hardening layer:
keyed auth (constant-time lookup on every request) plus a live rate
limiter (generous enough to never refuse, so the arm measures the
bucket machinery rather than throttling) versus the open server.
Same 3% budget, same best-of-repeats protocol.

The worker-count sweep (``--worker-counts``, default ``1,2,4``)
measures horizontal sharding: an identify-only closed loop against the
same gallery served by 1 (in-process control), 2, and 4 sharded worker
processes.  Counts above ``os.cpu_count()`` are skipped — running 4
matcher processes on fewer cores measures contention, not sharding —
and the record says so (``skipped_counts`` / ``skip_reason``) with an
honest ``cpus`` field, leaving ``speedup`` null when the top count
could not run.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from _bench_common import OUTPUT_DIR
from repro.api import BioEngineMatcher, StudyConfig, build_collection
from repro.runtime.telemetry import disable_telemetry, enable_telemetry
from repro.service import (
    ApiKeyAuthenticator,
    BatchingConfig,
    GalleryIndex,
    LimitsConfig,
    RateLimiter,
    RequestLog,
    ServiceClient,
    ServiceRunner,
    VerificationServer,
    generate_key,
    write_keyfile,
)

DEVICES = ("D0", "D1")
GALLERY_SUBJECTS = 8
IDENTIFIES_PER_CYCLE = 3


def _percentiles(samples_ms):
    arr = np.asarray(samples_ms, dtype=np.float64)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 2),
        "p95_ms": round(float(np.percentile(arr, 95)), 2),
        "p99_ms": round(float(np.percentile(arr, 99)), 2),
        "max_ms": round(float(arr.max()), 2),
        "count": int(arr.size),
    }


def _run_arm(
    collection, matcher, *, enabled, clients, cycles, hot,
    tracing=False, with_reqlog=False, with_auth=False,
):
    """One benchmark arm; returns its measurement record."""
    recorder = enable_telemetry()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            gallery = GalleryIndex(Path(tmp) / "gallery")
            batching = BatchingConfig(
                max_batch=512, max_wait_ms=20.0, queue_depth=4096, enabled=enabled
            )
            reqlog = (
                RequestLog(Path(tmp) / "reqlog.jsonl") if with_reqlog else None
            )
            api_key = None
            auth = False
            limits = None
            if with_auth:
                # Every request authenticates and passes a live token
                # bucket; the bucket is too roomy to ever refuse, so
                # the arm measures the machinery, not throttling.
                api_key = generate_key()
                keyfile = Path(tmp) / "keys.json"
                write_keyfile(keyfile, [{
                    "principal": "bench", "key": api_key,
                    "roles": ["read", "write", "admin"], "limits": {},
                }])
                auth = ApiKeyAuthenticator(keyfile)
                roomy = {c: 1e6 for c in ("read", "write", "admin")}
                limits = RateLimiter(
                    config=LimitsConfig(rates=roomy, bursts=roomy)
                )
            server = VerificationServer(
                gallery, matcher=matcher, port=0, batching=batching,
                tracing=tracing, reqlog=reqlog, auth=auth, limits=limits,
            )
            with ServiceRunner(server) as (host, port):
                with ServiceClient(host, port, api_key=api_key) as setup:
                    for sid in range(GALLERY_SUBJECTS):
                        for device in DEVICES:
                            template = collection.get(
                                sid, "right_index", device, 0
                            ).template
                            setup.enroll(f"subject-{sid}", template, device=device)
                probes = {
                    sid: collection.get(sid, "right_index", "D1", 1).template
                    for sid in range(hot)
                }

                def worker(wid):
                    sid = wid % hot
                    identity = f"subject-{sid}"
                    latencies = []
                    with ServiceClient(host, port, api_key=api_key) as client:
                        for _ in range(cycles):
                            start = time.perf_counter()
                            verdict = client.verify(
                                identity, probes[sid], device="D1"
                            )
                            latencies.append(time.perf_counter() - start)
                            assert verdict["decision"] == "accept", (
                                f"genuine {identity} rejected"
                            )
                            for _ in range(IDENTIFIES_PER_CYCLE):
                                start = time.perf_counter()
                                hits = client.identify(probes[sid], device=None)
                                latencies.append(time.perf_counter() - start)
                                top = hits["candidates"][0]["identity"]
                                assert top.split("/")[-1] == identity, (
                                    f"rank-1 miss: {top} for {identity}"
                                )
                    return latencies

                wall_start = time.perf_counter()
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=clients
                ) as pool:
                    per_client = list(pool.map(worker, range(clients)))
                wall = time.perf_counter() - wall_start
                with ServiceClient(host, port, api_key=api_key) as client:
                    snapshot = client.stats()
        latencies_ms = [1000.0 * s for worker in per_client for s in worker]
        counters = recorder.metrics.snapshot()["counters"]
        batching_stats = snapshot["batching"]
        return {
            "batching_enabled": enabled,
            "tracing_enabled": tracing,
            "reqlog_enabled": with_reqlog,
            "auth_enabled": with_auth,
            "requests": len(latencies_ms),
            "wall_seconds": round(wall, 3),
            "throughput_rps": round(len(latencies_ms) / wall, 1),
            "latency": _percentiles(latencies_ms),
            "batches": batching_stats["batches"],
            "mean_batch_size": batching_stats["mean_size"],
            "max_batch_size": batching_stats["max_size"],
            "batch_size_histogram": batching_stats["histogram"],
            "matcher_invocations": int(counters.get("matcher.invocations", 0)),
            "collapsed_comparisons": int(counters.get("matcher.collapsed", 0)),
        }
    finally:
        disable_telemetry()


def _worker_arm(collection, matcher, *, workers, clients, cycles):
    """One worker-count arm: identify-only closed loop, both modes."""
    with tempfile.TemporaryDirectory() as tmp:
        gallery = GalleryIndex(Path(tmp) / "gallery")
        batching = BatchingConfig(
            max_batch=512, max_wait_ms=5.0, queue_depth=4096
        )
        server = VerificationServer(
            gallery, matcher=matcher, port=0, batching=batching,
            workers=workers,
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as setup:
                for sid in range(GALLERY_SUBJECTS):
                    for device in DEVICES:
                        template = collection.get(
                            sid, "right_index", device, 0
                        ).template
                        setup.enroll(f"subject-{sid}", template, device=device)
            probes = {
                sid: collection.get(sid, "right_index", "D1", 1).template
                for sid in range(GALLERY_SUBJECTS)
            }

            def worker(wid):
                sid = wid % GALLERY_SUBJECTS
                identity = f"subject-{sid}"
                count = 0
                with ServiceClient(host, port) as client:
                    for cycle in range(cycles):
                        mode = "two_stage" if cycle % 2 else "exact"
                        hits = client.identify(
                            probes[sid], device=None, mode=mode
                        )
                        count += 1
                        top = hits["candidates"][0]["identity"]
                        assert top.split("/")[-1] == identity, (
                            f"rank-1 miss: {top} for {identity}"
                        )
                return count

            wall_start = time.perf_counter()
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=clients
            ) as pool:
                requests = sum(pool.map(worker, range(clients)))
            wall = time.perf_counter() - wall_start
            with ServiceClient(host, port) as client:
                snapshot = client.stats()
    return {
        "workers": workers,
        "requests": requests,
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(requests / wall, 1),
        "worker_dispatches": sum(
            snapshot["workers"]["dispatches"].values()
        ),
        "respawns": sum(snapshot["workers"]["respawns"].values()),
    }


#: Acceptance target: identify throughput at 4 workers vs 1.
WORKER_SPEEDUP_TARGET = 2.5


def _worker_sweep(collection, matcher, *, clients, cycles, counts):
    """Sharded identify throughput across worker counts (1 = control).

    Skips counts above the core count rather than reporting a number
    that measures oversubscription; the record carries the honest
    ``cpus`` and the skip reason so a reader can tell a small runner
    from a regression.
    """
    cpus = os.cpu_count() or 1
    runnable = [c for c in counts if c <= cpus]
    skipped = [c for c in counts if c > cpus]
    arms = []
    for count in runnable:
        arm = _worker_arm(
            collection, matcher, workers=count, clients=clients, cycles=cycles
        )
        arms.append(arm)
        print(
            f"workers={count}: {arm['throughput_rps']} identify/s "
            f"({arm['worker_dispatches']} worker dispatches)"
        )
    by_count = {arm["workers"]: arm for arm in arms}
    top = max(runnable) if runnable else 0
    speedup = None
    if top > 1 and 1 in by_count:
        speedup = round(
            by_count[top]["throughput_rps"] / by_count[1]["throughput_rps"], 2
        )
    if skipped:
        print(
            f"worker counts {skipped} skipped: only {cpus} CPU(s) — "
            "sharding needs a core per worker to mean anything"
        )
    return {
        "counts_requested": counts,
        "cpus": cpus,
        "skipped_counts": skipped,
        "skip_reason": (
            f"host has {cpus} CPU(s); counts above that would measure "
            "core contention, not sharding" if skipped else None
        ),
        "speedup": speedup,
        "speedup_measured_at": top if speedup is not None else None,
        "speedup_target": WORKER_SPEEDUP_TARGET,
        "arms": arms,
    }


TRACING_BUDGET_PCT = 3.0


def _tracing_overhead(collection, matcher, *, clients, cycles, hot, repeats):
    """Tracing+reqlog vs tracing-off on the batched workload, best-of runs."""
    arms = {}
    for mode, tracing, with_reqlog in (
        ("tracing_off", False, False),
        ("tracing_on", True, True),
    ):
        runs = [
            _run_arm(
                collection, matcher, enabled=True, clients=clients,
                cycles=cycles, hot=hot, tracing=tracing,
                with_reqlog=with_reqlog,
            )
            for _ in range(repeats)
        ]
        arms[mode] = max(runs, key=lambda r: r["throughput_rps"])
    off_rps = arms["tracing_off"]["throughput_rps"]
    on_rps = arms["tracing_on"]["throughput_rps"]
    overhead_pct = round(100.0 * (1.0 - on_rps / off_rps), 2)
    return {
        "hot_identities": hot,
        "repeats_per_arm": repeats,
        "overhead_pct": overhead_pct,
        "budget_pct": TRACING_BUDGET_PCT,
        "within_budget": overhead_pct <= TRACING_BUDGET_PCT,
        **arms,
    }


AUTH_BUDGET_PCT = 3.0


def _auth_overhead(collection, matcher, *, clients, cycles, hot, repeats):
    """Auth+limits vs the open server on the batched workload, best-of."""
    arms = {}
    for mode, with_auth in (("auth_off", False), ("auth_on", True)):
        runs = [
            _run_arm(
                collection, matcher, enabled=True, clients=clients,
                cycles=cycles, hot=hot, with_auth=with_auth,
            )
            for _ in range(repeats)
        ]
        arms[mode] = max(runs, key=lambda r: r["throughput_rps"])
    off_rps = arms["auth_off"]["throughput_rps"]
    on_rps = arms["auth_on"]["throughput_rps"]
    overhead_pct = round(100.0 * (1.0 - on_rps / off_rps), 2)
    return {
        "hot_identities": hot,
        "repeats_per_arm": repeats,
        "overhead_pct": overhead_pct,
        "budget_pct": AUTH_BUDGET_PCT,
        "within_budget": overhead_pct <= AUTH_BUDGET_PCT,
        **arms,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--cycles", type=int, default=4)
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="runs per tracing-overhead arm (best-of damps noise)",
    )
    parser.add_argument(
        "--hot",
        type=lambda text: [int(v) for v in text.split(",")],
        default=[4, 8],
        help="hot-population sizes to sweep (first one is the headline)",
    )
    parser.add_argument(
        "--worker-counts",
        type=lambda text: [int(v) for v in text.split(",")],
        default=[1, 2, 4],
        help="sharded-pool sizes to sweep (counts above cpu_count skip)",
    )
    parser.add_argument("--label", default="online serving micro-batching")
    parser.add_argument("--out", default="service_load.json")
    args = parser.parse_args()

    config = StudyConfig(n_subjects=max(GALLERY_SUBJECTS, max(args.hot)))
    collection = build_collection(config)
    matcher = BioEngineMatcher()

    sweep = []
    for hot in args.hot:
        arms = {}
        for enabled in (False, True):
            mode = "batched" if enabled else "unbatched"
            arms[mode] = _run_arm(
                collection,
                matcher,
                enabled=enabled,
                clients=args.clients,
                cycles=args.cycles,
                hot=hot,
            )
        speedup = round(
            arms["batched"]["throughput_rps"] / arms["unbatched"]["throughput_rps"],
            2,
        )
        sweep.append({"hot_identities": hot, "speedup": speedup, **arms})
        print(
            f"hot={hot}: unbatched {arms['unbatched']['throughput_rps']} req/s, "
            f"batched {arms['batched']['throughput_rps']} req/s ({speedup}x)"
        )

    worker_sweep = _worker_sweep(
        collection, matcher, clients=args.clients, cycles=args.cycles,
        counts=args.worker_counts,
    )

    tracing = _tracing_overhead(
        collection, matcher, clients=args.clients, cycles=args.cycles,
        hot=args.hot[0], repeats=args.repeats,
    )
    print(
        f"tracing overhead: {tracing['overhead_pct']}% "
        f"(budget {TRACING_BUDGET_PCT}%, "
        f"{'within' if tracing['within_budget'] else 'OVER'} budget)"
    )

    auth = _auth_overhead(
        collection, matcher, clients=args.clients, cycles=args.cycles,
        hot=args.hot[0], repeats=args.repeats,
    )
    print(
        f"auth+limits overhead: {auth['overhead_pct']}% "
        f"(budget {AUTH_BUDGET_PCT}%, "
        f"{'within' if auth['within_budget'] else 'OVER'} budget)"
    )

    record = {
        "label": args.label,
        "clients": args.clients,
        "cycles_per_client": args.cycles,
        "workload": (
            f"per cycle: 1 verify (device D1) + {IDENTIFIES_PER_CYCLE} "
            f"all-device identifies; gallery {GALLERY_SUBJECTS} subjects x "
            f"{len(DEVICES)} devices"
        ),
        "cpus": os.cpu_count(),
        "headline_speedup": sweep[0]["speedup"],
        "sweep": sweep,
        "worker_sweep": worker_sweep,
        "tracing_overhead": tracing,
        "auth_overhead": auth,
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out_path = OUTPUT_DIR / args.out
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"written to {out_path}")


if __name__ == "__main__":
    main()
