"""repro — reproduction of "Interoperability in Fingerprint Recognition:
A Large-Scale Empirical Study" (Lugini, Marasco, Cukic & Gashi, DSN 2013).

The paper measures how fingerprint match scores and error rates degrade
when enrollment and verification use *different* capture devices.  This
library rebuilds the entire measurement apparatus — synthetic
fingerprints, parameterized sensor models for the study's five capture
sources, an NFIQ-style quality assessor, a minutiae matcher — and the
study engine that regenerates every table and figure of the paper.

The supported import surface is :mod:`repro.api`::

    from repro.api import run_study, StudyConfig

    result = run_study(StudyConfig(n_subjects=60))
    score_sets = result.score_sets            # DMG / DMI / DDMG / DDMI
    table5 = result.fnmr_matrix(1e-4)         # FNMR @ FMR 0.01%
    table4 = result.kendall_matrix()          # rank-correlation p-values

The facade entry points (:func:`~repro.api.run_study`,
:func:`~repro.api.load_scores`, :func:`~repro.api.compare_devices`) are
also re-exported here.  The historic top-level names
(``from repro import InteroperabilityStudy`` etc.) keep working but emit
:class:`DeprecationWarning`; ``docs/api.md`` has the migration table.
"""

import warnings

from . import api
from .api import (
    DeviceComparison,
    StudyResult,
    compare_devices,
    load_scores,
    run_study,
)

__version__ = "1.1.0"

#: Names that used to be exported eagerly from this module.  They now
#: resolve through ``__getattr__`` so that touching one emits a
#: DeprecationWarning pointing at the stable surface, ``repro.api``.
_LEGACY_NAMES = frozenset(
    {
        "InteroperabilityStudy",
        "ScoreSet",
        "FnmrPredictor",
        "TemplateDatabase",
        "EnrolledRecord",
        "Verifier",
        "InteropAwareVerifier",
        "StudyConfig",
        "SeedTree",
        "ScoreCache",
        "ReproError",
        "RunManifest",
        "enable_telemetry",
        "disable_telemetry",
        "get_recorder",
        "configure_logging",
        "Population",
        "BioEngineMatcher",
        "RidgeGeometryMatcher",
        "Template",
        "Minutia",
        "QualityFeatures",
        "nfiq_level",
        "Impression",
        "OpticalSensor",
        "InkCardSensor",
        "build_sensor",
        "DEVICE_ORDER",
        "DEVICE_PROFILES",
        "LIVESCAN_DEVICES",
    }
)


def __getattr__(name: str):
    if name in _LEGACY_NAMES:
        warnings.warn(
            f"importing {name!r} from 'repro' is deprecated; "
            f"use 'from repro.api import {name}' instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LEGACY_NAMES)


__all__ = [
    # stable facade
    "api",
    "run_study",
    "load_scores",
    "compare_devices",
    "StudyResult",
    "DeviceComparison",
    "__version__",
    # legacy names (deprecated — import from repro.api instead)
    "InteroperabilityStudy",
    "ScoreSet",
    "FnmrPredictor",
    "TemplateDatabase",
    "EnrolledRecord",
    "Verifier",
    "InteropAwareVerifier",
    "StudyConfig",
    "SeedTree",
    "ScoreCache",
    "ReproError",
    "RunManifest",
    "enable_telemetry",
    "disable_telemetry",
    "get_recorder",
    "configure_logging",
    "Population",
    "BioEngineMatcher",
    "RidgeGeometryMatcher",
    "Template",
    "Minutia",
    "QualityFeatures",
    "nfiq_level",
    "Impression",
    "OpticalSensor",
    "InkCardSensor",
    "build_sensor",
    "DEVICE_ORDER",
    "DEVICE_PROFILES",
    "LIVESCAN_DEVICES",
]
