"""Descriptive statistics helpers used across the analysis modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a score population."""

    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    def render(self, label: str = "") -> str:
        """One-line textual rendering."""
        prefix = f"{label}: " if label else ""
        return (
            f"{prefix}n={self.n} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.minimum:.3f} q25={self.q25:.3f} med={self.median:.3f} "
            f"q75={self.q75:.3f} max={self.maximum:.3f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of ``values``.

    Raises
    ------
    ValueError
        If ``values`` is empty or contains non-finite entries.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if np.any(~np.isfinite(arr)):
        raise ValueError("summarize requires finite values")
    q25, median, q75 = np.quantile(arr, [0.25, 0.5, 0.75])
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        q25=float(q25),
        median=float(median),
        q75=float(q75),
        maximum=float(arr.max()),
    )


def proportion(condition_count: int, total: int) -> float:
    """Safe proportion: ``condition_count / total`` with zero-total guard."""
    if total < 0 or condition_count < 0:
        raise ValueError("counts must be non-negative")
    if condition_count > total:
        raise ValueError("condition_count cannot exceed total")
    if total == 0:
        return 0.0
    return condition_count / total


def overlap_coefficient(
    sample_a: Sequence[float], sample_b: Sequence[float], n_bins: int = 64
) -> float:
    """Histogram-overlap coefficient in [0, 1] between two samples.

    Used to quantify the paper's qualitative claim that "the overlap of
    genuine and impostor score distributions is greater when they were
    acquired from diverse sensors".
    """
    a = np.asarray(sample_a, dtype=np.float64).ravel()
    b = np.asarray(sample_b, dtype=np.float64).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        return 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    pa, __ = np.histogram(a, bins=edges)
    pb, __ = np.histogram(b, bins=edges)
    da = pa / pa.sum()
    db = pb / pb.sum()
    return float(np.minimum(da, db).sum())


__all__ = ["Summary", "summarize", "proportion", "overlap_coefficient"]
