"""Deterministic hierarchical random-number seeding.

A large-scale empirical study is only reproducible if every stochastic
component can be replayed in isolation.  This module provides a *seed
tree*: a master seed plus a path of string/int labels deterministically
derives an independent :class:`numpy.random.Generator` for any node of
the experiment, e.g. ``subject 17 → device "D2" → set 1 → impression 0``.

Derivation uses BLAKE2b over the label path, so

* the generator for a node never depends on how many sibling nodes exist
  (adding subjects does not shift anyone else's randomness), and
* two distinct paths collide with negligible probability.

Example
-------
>>> tree = SeedTree(1234)
>>> g = tree.generator("subject", 17, "device", "D2", "impression", 0)
>>> h = tree.child("subject", 17).generator("device", "D2", "impression", 0)
>>> float(g.random()) == float(h.random())
True
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

Label = Union[str, int]

_SEED_BYTES = 16  # 128-bit seeds for the PCG64 bit generator


def _encode_label(label: Label) -> bytes:
    """Encode one path label unambiguously (type-tagged, length-prefixed)."""
    if isinstance(label, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("seed-tree labels must be str or int, not bool")
    if isinstance(label, int):
        body = str(label).encode("ascii")
        tag = b"i"
    elif isinstance(label, str):
        body = label.encode("utf-8")
        tag = b"s"
    else:
        raise TypeError(f"seed-tree labels must be str or int, got {type(label)!r}")
    return tag + len(body).to_bytes(4, "big") + body


def derive_seed(master_seed: int, *path: Label) -> int:
    """Derive a 128-bit integer seed for the node at ``path``.

    The same ``(master_seed, path)`` always yields the same seed, across
    processes and platforms.
    """
    h = hashlib.blake2b(digest_size=_SEED_BYTES)
    h.update(_encode_label(int(master_seed)))
    for label in path:
        h.update(_encode_label(label))
    return int.from_bytes(h.digest(), "big")


class SeedTree:
    """A node in a deterministic seed hierarchy.

    Parameters
    ----------
    master_seed:
        Root seed of the tree.  Two trees with the same master seed are
        interchangeable.
    _path:
        Internal; the label path from the root to this node.
    """

    __slots__ = ("_master_seed", "_path")

    def __init__(self, master_seed: int, _path: Tuple[Label, ...] = ()) -> None:
        self._master_seed = int(master_seed)
        self._path = tuple(_path)

    @property
    def master_seed(self) -> int:
        """Root seed shared by the whole tree."""
        return self._master_seed

    @property
    def path(self) -> Tuple[Label, ...]:
        """Label path from the root to this node."""
        return self._path

    def child(self, *labels: Label) -> "SeedTree":
        """Return the descendant node reached by appending ``labels``."""
        if not labels:
            raise ValueError("child() requires at least one label")
        return SeedTree(self._master_seed, self._path + tuple(labels))

    def seed(self, *labels: Label) -> int:
        """Integer seed for the descendant at ``labels`` (or this node)."""
        return derive_seed(self._master_seed, *self._path, *labels)

    def generator(self, *labels: Label) -> np.random.Generator:
        """Fresh, independent generator for the descendant at ``labels``."""
        return np.random.Generator(np.random.PCG64(self.seed(*labels)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(master_seed={self._master_seed}, path={self._path!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedTree):
            return NotImplemented
        return (self._master_seed, self._path) == (other._master_seed, other._path)

    def __hash__(self) -> int:
        return hash((self._master_seed, self._path))
