"""End-to-end reconstruction of the paper's WVU 2012 dataset.

``build_collection`` runs the full collection campaign for a
configuration: synthesize the population, march every subject through
the fixed-order protocol, and return the complete
:class:`~repro.sensors.protocol.Collection`.

The collection is a *pure function of the configuration* — the same
``StudyConfig`` always reproduces the identical dataset, which is what
makes process-parallel score generation possible without shipping
impressions between workers (each worker rebuilds its shard).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from ..runtime.config import StudyConfig, resolve_worker_count
from ..runtime.progress import NullProgress, ProgressReporter
from ..runtime.rng import SeedTree
from ..runtime.telemetry import get_logger, get_recorder
from ..sensors.base import Impression
from ..sensors.protocol import (
    Collection,
    ProtocolSettings,
    acquire_subject_session,
    build_sensor,
)
from ..sensors.registry import DEVICE_ORDER
from ..synthesis.population import Population

#: Per-process sensor instances (signature fields are pure device state).
_SENSOR_CACHE: dict = {}

_log = get_logger("datasets")


def _sensors_for(device_order: Sequence[str]) -> dict:
    key = tuple(device_order)
    if key not in _SENSOR_CACHE:
        _SENSOR_CACHE[key] = {d: build_sensor(d) for d in device_order}
    return _SENSOR_CACHE[key]


def subject_session(
    config: StudyConfig,
    subject_id: int,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[Impression]:
    """All impressions of one subject's collection session.

    Module-level and driven purely by ``(config, subject_id, settings)``
    so it can run in a worker process.
    """
    population = Population(config)
    subject = population.subject(subject_id)
    tree = SeedTree(config.master_seed).child("session", subject_id)
    sensors = _sensors_for(settings.device_order)
    return acquire_subject_session(
        subject,
        sensors,
        tree,
        finger_labels=population.finger_labels,
        settings=settings,
    )


def _subject_session_task(args) -> List[Impression]:
    config, subject_id, settings = args
    return subject_session(config, subject_id, settings)


def build_collection(
    config: StudyConfig,
    settings: ProtocolSettings = ProtocolSettings(),
    progress: Optional[ProgressReporter] = None,
) -> Collection:
    """Acquire the whole campaign for ``config``.

    Parallelizes over subjects when ``config.n_workers > 0``; results are
    identical either way because every impression's randomness comes from
    the subject's own seed-tree node.
    """
    if progress is None:
        progress = NullProgress(total=config.n_subjects, label="collection")
    recorder = get_recorder()
    collection = Collection()
    with recorder.span("acquisition"):
        workers = resolve_worker_count(config.n_workers)
        if workers > 1 and config.n_subjects >= 8:
            tasks = [(config, sid, settings) for sid in range(config.n_subjects)]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for impressions in pool.map(
                    _subject_session_task, tasks,
                    chunksize=max(1, len(tasks) // (workers * 4)),
                ):
                    _tally_impressions(recorder, collection, impressions)
                    progress.update()
        else:
            for sid in range(config.n_subjects):
                _tally_impressions(
                    recorder, collection, subject_session(config, sid, settings)
                )
                progress.update()
    progress.finish()
    _log.info(
        "collection acquired",
        extra={"data": {"subjects": config.n_subjects,
                        "impressions": len(collection)}},
    )
    return collection


def _tally_impressions(recorder, collection: Collection, impressions) -> None:
    """Add a session's impressions, keeping the NFIQ tally counters."""
    for impression in impressions:
        collection.add(impression)
    if recorder.active:
        recorder.count("acquisition.impressions", len(impressions))
        for impression in impressions:
            recorder.count(f"acquisition.nfiq.level.{impression.nfiq}")


def default_device_order() -> Sequence[str]:
    """The fixed capture order of the paper's protocol."""
    return DEVICE_ORDER


__all__ = ["build_collection", "subject_session", "default_device_order"]
