"""Consensus alignment recovery."""

import numpy as np
import pytest

from repro.matcher.alignment import (
    RigidTransform,
    candidate_pairs,
    estimate_alignment,
    estimate_alignments,
)


def _apply(theta, tx, ty, points):
    c, s = np.cos(theta), np.sin(theta)
    rot = np.array([[c, -s], [s, c]])
    return points @ rot.T + np.array([tx, ty])


@pytest.fixture()
def scene():
    rng = np.random.default_rng(0)
    points = rng.uniform(-10, 10, size=(25, 2))
    angles = rng.uniform(0, 2 * np.pi, size=25)
    return points, angles


class TestRigidTransform:
    def test_identity(self):
        t = RigidTransform.identity()
        pts = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(t.apply(pts), pts)

    def test_apply_matches_reference(self):
        t = RigidTransform(theta=0.3, tx=1.0, ty=-2.0)
        pts = np.random.default_rng(1).normal(size=(5, 2))
        np.testing.assert_allclose(t.apply(pts), _apply(0.3, 1.0, -2.0, pts))

    def test_angles_wrap(self):
        t = RigidTransform(theta=np.pi, tx=0, ty=0)
        out = t.apply_angles(np.array([1.5 * np.pi]))
        assert 0 <= out[0] < 2 * np.pi


class TestCandidatePairs:
    def test_orders_by_similarity(self):
        sim = np.array([[0.9, 0.1], [0.2, 0.8]])
        pairs = candidate_pairs(sim, min_similarity=0.0)
        assert pairs[0, 2] >= pairs[-1, 2]

    def test_weak_matrix_still_yields_candidates(self):
        sim = np.full((5, 5), 0.05)
        pairs = candidate_pairs(sim, min_similarity=0.45)
        assert pairs.shape[0] > 0

    def test_empty_matrix(self):
        assert candidate_pairs(np.zeros((0, 3))).shape[0] == 0


class TestEstimateAlignment:
    @pytest.mark.parametrize("theta,tx,ty", [
        (0.0, 0.0, 0.0),
        (0.4, 3.0, -2.0),
        (-0.6, -5.0, 1.0),
    ])
    def test_recovers_known_transform(self, scene, theta, tx, ty):
        points, angles = scene
        moved = _apply(theta, tx, ty, points)
        moved_angles = np.mod(angles + theta, 2 * np.pi)
        # Perfect candidates: identity correspondence.
        candidates = np.column_stack(
            [np.arange(len(points)), np.arange(len(points)), np.ones(len(points))]
        ).astype(np.float64)
        transform = estimate_alignment(points, angles, moved, moved_angles, candidates)
        registered = transform.apply(points)
        residual = np.sqrt(np.mean(np.sum((registered - moved) ** 2, axis=1)))
        assert residual < 0.05

    def test_robust_to_outlier_candidates(self, scene):
        points, angles = scene
        theta, tx, ty = 0.3, 2.0, 1.0
        moved = _apply(theta, tx, ty, points)
        moved_angles = np.mod(angles + theta, 2 * np.pi)
        good = np.column_stack(
            [np.arange(20), np.arange(20), np.full(20, 0.9)]
        )
        # Five wrong correspondences with decent similarity.
        bad = np.column_stack(
            [np.arange(5), np.arange(5)[::-1] + 20, np.full(5, 0.8)]
        )
        candidates = np.vstack([good, bad]).astype(np.float64)
        transform = estimate_alignment(points, angles, moved, moved_angles, candidates)
        registered = transform.apply(points[:20])
        residual = np.sqrt(np.mean(np.sum((registered - moved[:20]) ** 2, axis=1)))
        assert residual < 0.2

    def test_no_candidates_returns_none(self, scene):
        points, angles = scene
        assert (
            estimate_alignment(points, angles, points, angles, np.zeros((0, 3)))
            is None
        )

    def test_multiple_hypotheses(self, scene):
        points, angles = scene
        moved = _apply(0.2, 1.0, 0.0, points)
        moved_angles = np.mod(angles + 0.2, 2 * np.pi)
        candidates = np.column_stack(
            [np.arange(len(points)), np.arange(len(points)), np.ones(len(points))]
        ).astype(np.float64)
        transforms = estimate_alignments(
            points, angles, moved, moved_angles, candidates, max_hypotheses=2
        )
        assert 1 <= len(transforms) <= 2
        assert isinstance(transforms[0], RigidTransform)
