"""Admission control: token buckets, quotas, and live 429 behavior.

Everything bucket-shaped runs against a hand-driven clock, so refusals
and ``retry_after`` values are asserted exactly; the live-server tests
then confirm the 429 surfaces in the ``/v1`` envelope with a
``Retry-After`` header the client's transparent retry can sleep on.
"""

import pytest

from repro.runtime.errors import TransientError
from repro.service import (
    BatchingConfig,
    GalleryIndex,
    ServiceClient,
    ServiceClientError,
    ServiceRunner,
    VerificationServer,
    parse_exposition,
    sample_value,
)
from repro.service.limits import (
    DEFAULT_BURSTS,
    DEFAULT_RATES,
    ENDPOINT_CLASSES,
    LimitsConfig,
    RateLimiter,
    RateLimitExceeded,
    TokenBucket,
)

FINGER = "right_index"


class Clock:
    """A clock the test winds by hand."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_burst_then_exact_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(3)] == [0.0] * 3
        # Empty: the next token lands in 1/rate seconds, exactly.
        assert bucket.try_acquire(0.0) == pytest.approx(0.5)
        assert bucket.try_acquire(0.5) == 0.0
        assert bucket.try_acquire(0.5) == pytest.approx(0.5)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.try_acquire(0.0)
        # An hour idle refills to the ceiling, not beyond it.
        for _ in range(2):
            assert bucket.try_acquire(3600.0) == 0.0
        assert bucket.try_acquire(3600.0) > 0.0

    def test_zero_rate_never_admits_after_burst(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, now=0.0)
        assert bucket.try_acquire(0.0) == 0.0
        assert bucket.try_acquire(1e9) == float("inf")

    def test_clock_regression_is_harmless(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=10.0)
        assert bucket.try_acquire(5.0) == 0.0  # no negative elapsed credit


class TestRateLimiter:
    def _limiter(self, clock, **config):
        return RateLimiter(config=LimitsConfig(**config), clock=clock)

    def test_burst_exhaustion_reports_exact_wait(self):
        clock = Clock()
        limiter = self._limiter(clock, rates={"read": 4.0}, bursts={"read": 2.0})
        limiter.check("alice", "verify")
        limiter.check("alice", "identify")  # same class, same bucket
        with pytest.raises(RateLimitExceeded) as excinfo:
            limiter.check("alice", "verify")
        assert excinfo.value.scope == "rate"
        assert excinfo.value.retry_after == pytest.approx(0.25)
        assert limiter.rate_limited_total == 1
        clock.now = 0.25
        limiter.check("alice", "verify")

    def test_classes_and_principals_are_independent(self):
        clock = Clock()
        limiter = self._limiter(
            clock, rates={"read": 1.0, "write": 1.0},
            bursts={"read": 1.0, "write": 1.0},
        )
        limiter.check("alice", "verify")
        with pytest.raises(RateLimitExceeded):
            limiter.check("alice", "verify")
        limiter.check("alice", "enroll")  # write bucket untouched
        limiter.check("bob", "verify")    # bob's read bucket untouched

    def test_unlimited_endpoints_pass_through(self):
        clock = Clock()
        limiter = self._limiter(clock, rates={"read": 1.0}, bursts={"read": 1.0})
        for _ in range(50):
            limiter.check("alice", "healthz")
        assert limiter.bucket_occupancy() == 0

    def test_zero_rate_disables_the_class(self):
        clock = Clock()
        limiter = self._limiter(clock, rates={"read": 0.0})
        for _ in range(50):
            limiter.check("alice", "verify")

    def test_per_principal_override_beats_role_default(self):
        clock = Clock()
        limiter = RateLimiter(
            config=LimitsConfig(rates={"read": 100.0}, bursts={"read": 100.0}),
            overrides={"tight": {"read": {"rate": 1.0, "burst": 1.0}}},
            clock=clock,
        )
        limiter.check("tight", "verify")
        with pytest.raises(RateLimitExceeded):
            limiter.check("tight", "verify")
        for _ in range(50):
            limiter.check("roomy", "verify")

    def test_quota_charged_only_after_bucket_admits(self):
        clock = Clock()
        limiter = RateLimiter(
            config=LimitsConfig(
                rates={"read": 1.0}, bursts={"read": 1.0},
                quota=5, quota_window_s=60.0,
            ),
            clock=clock,
        )
        limiter.check("alice", "verify")
        for _ in range(3):  # throttled by the bucket, quota untouched
            with pytest.raises(RateLimitExceeded) as excinfo:
                limiter.check("alice", "verify")
            assert excinfo.value.scope == "rate"
        assert limiter.snapshot()["quotas"]["alice"]["used"] == 1

    def test_quota_exhaustion_and_window_roll(self):
        clock = Clock()
        limiter = RateLimiter(
            config=LimitsConfig(
                rates={"read": 1000.0}, bursts={"read": 1000.0},
                quota=3, quota_window_s=60.0,
            ),
            clock=clock,
        )
        for _ in range(3):
            limiter.check("alice", "verify")
        clock.now = 10.0
        with pytest.raises(RateLimitExceeded) as excinfo:
            limiter.check("alice", "verify")
        assert excinfo.value.scope == "quota"
        assert excinfo.value.retry_after == pytest.approx(50.0)
        clock.now = 60.0  # window rolls, budget resets
        limiter.check("alice", "verify")
        assert limiter.snapshot()["quotas"]["alice"]["used"] == 1

    def test_bucket_lru_is_bounded(self):
        clock = Clock()
        limiter = RateLimiter(
            config=LimitsConfig(max_buckets=8), clock=clock
        )
        for index in range(32):
            limiter.check(f"principal-{index}", "verify")
        assert limiter.bucket_occupancy() == 8
        snapshot = limiter.snapshot()
        assert snapshot["bucket_occupancy"] == 8
        assert snapshot["max_buckets"] == 8

    def test_set_overrides_reclamps_live_buckets(self):
        clock = Clock()
        limiter = self._limiter(
            clock, rates={"read": 10.0}, bursts={"read": 10.0}
        )
        limiter.check("alice", "verify")  # bucket now holds 9 tokens
        limiter.set_overrides({"alice": {"read": {"rate": 1.0, "burst": 2.0}}})
        limiter.check("alice", "verify")
        limiter.check("alice", "verify")  # the clamped 2 tokens are gone
        with pytest.raises(RateLimitExceeded):
            limiter.check("alice", "verify")

    def test_snapshot_shape(self):
        limiter = RateLimiter(clock=Clock())
        snapshot = limiter.snapshot()
        assert snapshot["rates"] == DEFAULT_RATES
        assert snapshot["bursts"] == DEFAULT_BURSTS
        assert snapshot["rate_limited_total"] == 0
        assert snapshot["quotas"] == {}

    def test_every_routed_endpoint_is_classified(self):
        # Every limited endpoint must map onto a real class; healthz is
        # deliberately absent (probes are never throttled).
        assert "healthz" not in ENDPOINT_CLASSES
        assert set(ENDPOINT_CLASSES.values()) == {"read", "write", "admin"}


class TestLimitsConfigEnvironment:
    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_RATE_READ", "7")
        monkeypatch.setenv("REPRO_SERVE_BURST_READ", "9")
        monkeypatch.setenv("REPRO_SERVE_QUOTA", "123")
        monkeypatch.setenv("REPRO_SERVE_QUOTA_WINDOW_S", "30")
        config = LimitsConfig.from_environment()
        assert config.rates["read"] == 7.0
        assert config.bursts["read"] == 9.0
        assert config.rates["write"] == DEFAULT_RATES["write"]
        assert config.quota == 123
        assert config.quota_window_s == 30.0

    def test_explicit_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_RATE_READ", "7")
        config = LimitsConfig.from_environment(rates={"read": 2.0})
        assert config.rates["read"] == 2.0


class _FakeExchangeClient(ServiceClient):
    """A client whose transport is a scripted list of responses."""

    def __init__(self, script, **kwargs):
        super().__init__("127.0.0.1", 0, **kwargs)
        self.script = list(script)
        self.exchanges = 0

    def _exchange(self, method, path, payload=None):
        self.exchanges += 1
        status, body, headers = self.script.pop(0)
        self.last_headers = headers
        self.last_request_id = "req-test"
        return status, body


def _throttled(retry_after):
    return (
        429,
        b'{"error": {"code": "rate_limited", "message": "slow down",'
        b' "request_id": "r1"}}',
        {"retry-after": f"{retry_after:.3f}"},
    )


_OK = (200, b'{"decision": "accept"}', {})


class TestClientRetry:
    def test_disabled_by_default_surfaces_429(self):
        client = _FakeExchangeClient([_throttled(0.2)])
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/v1/verify", {})
        assert excinfo.value.status == 429
        assert excinfo.value.code == "rate_limited"
        assert excinfo.value.retryable
        assert client.exchanges == 1

    def test_retries_sleep_the_advertised_delay(self, monkeypatch):
        naps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", naps.append
        )
        client = _FakeExchangeClient(
            [_throttled(0.25), _throttled(0.5), _OK],
            retry_rate_limited=3,
        )
        assert client._request("POST", "/v1/verify", {}) == {
            "decision": "accept"
        }
        assert client.exchanges == 3
        assert naps == [pytest.approx(0.25), pytest.approx(0.5)]

    def test_attempts_are_bounded(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda _s: None
        )
        client = _FakeExchangeClient(
            [_throttled(0.01)] * 5, retry_rate_limited=2
        )
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/v1/verify", {})
        assert excinfo.value.status == 429
        assert client.exchanges == 3  # initial try + 2 retries

    def test_missing_retry_after_uses_default_backoff(self, monkeypatch):
        naps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", naps.append
        )
        throttled_bare = (429, b'{"error": "busy"}', {})
        client = _FakeExchangeClient(
            [throttled_bare, _OK], retry_rate_limited=1
        )
        client._request("POST", "/v1/verify", {})
        assert naps == [pytest.approx(0.05)]


@pytest.fixture()
def limited_service(tmp_path, tiny_collection, matcher):
    """An open (auth-off) server with a tiny read bucket: burst 2,
    one token every 5 s — slow enough that a test burst can never
    outrun a refill."""
    gallery = GalleryIndex(tmp_path / "gallery")
    gallery.enroll(
        "subject-0",
        tiny_collection.get(0, FINGER, "D0", 0).template,
        device="D0",
    )
    limiter = RateLimiter(
        config=LimitsConfig(rates={"read": 0.2}, bursts={"read": 2.0})
    )
    server = VerificationServer(
        gallery,
        matcher=matcher,
        port=0,
        batching=BatchingConfig(max_wait_ms=5.0),
        limits=limiter,
    )
    with ServiceRunner(server) as (host, port):
        yield host, port


class TestLimitedServer:
    def test_burst_surfaces_429_with_retry_after(
        self, limited_service, tiny_collection
    ):
        host, port = limited_service
        probe = tiny_collection.get(0, FINGER, "D0", 1).template
        with ServiceClient(host, port) as client:
            for _ in range(2):
                client.verify("subject-0", probe, device="D0")
            with pytest.raises(ServiceClientError) as excinfo:
                client.verify("subject-0", probe, device="D0")
            assert excinfo.value.status == 429
            assert excinfo.value.code == "rate_limited"
            assert excinfo.value.request_id
            assert excinfo.value.retryable
            retry_after = float(client.last_headers["retry-after"])
            assert 0.0 < retry_after <= 5.0
            # Bucketing is per endpoint class: probes stay open and the
            # admin surface still answers under a read-side flood.
            assert client.healthz()["status"] == "ok"
            stats = client.stats()
            limits = stats["auth"]["limits"]
            assert limits["rate_limited_total"] >= 1
            # The /stats call itself opened the ("anonymous", "admin")
            # bucket alongside the read bucket the burst used.
            assert limits["bucket_occupancy"] == 2

    def test_429_lands_in_metrics_and_top_counters(self, limited_service, tiny_collection):
        host, port = limited_service
        probe = tiny_collection.get(0, FINGER, "D0", 1).template
        with ServiceClient(host, port) as client:
            for _ in range(2):
                client.verify("subject-0", probe, device="D0")
            for _ in range(3):
                with pytest.raises(ServiceClientError):
                    client.verify("subject-0", probe, device="D0")
            families = parse_exposition(client.metrics())
            assert sample_value(
                families, "repro_rate_limited_total", {}
            ) == 3
            assert sample_value(
                families, "repro_rate_limited_total",
                {"principal": "anonymous"},
            ) == 3
            # read bucket from the burst + admin bucket from this scrape
            assert sample_value(families, "repro_limit_buckets", {}) == 2
            assert client.stats()["statuses"].get("429") == 3


def test_transparent_retry_succeeds_with_fast_refill(
    tmp_path, tiny_collection, matcher
):
    """burst 1, 20 tokens/s: every other request 429s, and a client with
    retry_rate_limited=2 still completes a 6-request sweep untouched."""
    gallery = GalleryIndex(tmp_path / "gallery")
    gallery.enroll(
        "subject-0",
        tiny_collection.get(0, FINGER, "D0", 0).template,
        device="D0",
    )
    limiter = RateLimiter(
        config=LimitsConfig(rates={"read": 20.0}, bursts={"read": 1.0})
    )
    server = VerificationServer(
        gallery,
        matcher=matcher,
        port=0,
        batching=BatchingConfig(max_wait_ms=5.0),
        limits=limiter,
    )
    probe = tiny_collection.get(0, FINGER, "D0", 1).template
    with ServiceRunner(server) as (host, port):
        with ServiceClient(host, port, retry_rate_limited=2) as client:
            for _ in range(6):
                reply = client.verify("subject-0", probe, device="D0")
                assert reply["decision"] == "accept"
    assert limiter.rate_limited_total >= 1  # the retries really hit 429s
