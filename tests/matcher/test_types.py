"""Template and minutia datatypes."""

import numpy as np
import pytest

from repro.matcher.types import (
    KIND_BIFURCATION,
    KIND_ENDING,
    Minutia,
    Template,
    template_from_arrays,
)
from repro.runtime.errors import MatcherError


def _make_template(n=3):
    minutiae = tuple(
        Minutia(x=10.0 * i, y=5.0 * i, angle=0.5 * i, kind=KIND_ENDING, quality=50)
        for i in range(n)
    )
    return Template(minutiae=minutiae, width_px=800, height_px=750)


class TestMinutia:
    def test_valid(self):
        m = Minutia(1.0, 2.0, 3.0, KIND_BIFURCATION, 80)
        assert m.kind_name == "bifurcation"

    def test_bad_kind(self):
        with pytest.raises(MatcherError):
            Minutia(0, 0, 0, 9, 50)

    def test_bad_quality(self):
        with pytest.raises(MatcherError):
            Minutia(0, 0, 0, KIND_ENDING, 150)

    def test_non_finite_position(self):
        with pytest.raises(MatcherError):
            Minutia(float("nan"), 0, 0, KIND_ENDING, 50)

    def test_angle_out_of_range(self):
        with pytest.raises(MatcherError):
            Minutia(0, 0, 7.0, KIND_ENDING, 50)


class TestTemplate:
    def test_len(self):
        assert len(_make_template(4)) == 4

    def test_positions_shapes(self):
        t = _make_template(3)
        assert t.positions_px().shape == (3, 2)
        assert t.positions_mm().shape == (3, 2)
        assert t.angles().shape == (3,)
        assert t.kinds().shape == (3,)
        assert t.qualities().shape == (3,)

    def test_mm_conversion_at_500dpi(self):
        t = _make_template(2)
        ratio = t.positions_px()[1, 0] / t.positions_mm()[1, 0]
        assert ratio == pytest.approx(500 / 25.4)

    def test_empty_template_arrays(self):
        t = Template(minutiae=(), width_px=10, height_px=10)
        assert t.positions_px().shape == (0, 2)
        assert t.angles().shape == (0,)

    def test_bad_dimensions(self):
        with pytest.raises(MatcherError):
            Template(minutiae=(), width_px=0, height_px=10)

    def test_bad_resolution(self):
        with pytest.raises(MatcherError):
            Template(minutiae=(), width_px=10, height_px=10, resolution_dpi=0)


class TestFromArrays:
    def test_roundtrip(self):
        t = template_from_arrays(
            positions_px=[[1.0, 2.0], [3.0, 4.0]],
            angles=[0.1, 6.5],  # second wraps past 2*pi
            kinds=[KIND_ENDING, KIND_BIFURCATION],
            qualities=[40, 300],  # clipped to 100
            width_px=100,
            height_px=100,
        )
        assert len(t) == 2
        assert 0 <= t.minutiae[1].angle < 2 * np.pi
        assert t.minutiae[1].quality == 100

    def test_length_mismatch(self):
        with pytest.raises(MatcherError):
            template_from_arrays(
                positions_px=[[1.0, 2.0]],
                angles=[0.1, 0.2],
                kinds=[1],
                qualities=[50],
                width_px=10,
                height_px=10,
            )
