"""Image-domain substrate: extractor fidelity and throughput.

Not a paper artifact per se — the authors used images natively — but the
substrate the template shortcut replaces.  The benchmark times the full
render→extract loop and asserts the extractor's recovery quality on
planted ground truth.
"""

import numpy as np

from repro.api import (
    extract_template,
    recovery_metrics,
    render_finger,
    RenderSettings,
    synthesize_master_finger,
)

N_FINGERS = 6


def test_imaging_extractor_fidelity(benchmark, record_artifact):
    fingers = [
        synthesize_master_finger(np.random.default_rng(100 + k))
        for k in range(N_FINGERS)
    ]

    def render_and_extract():
        results = []
        for finger in fingers:
            rendered = render_finger(finger, RenderSettings(pixels_per_mm=8.0))
            template = extract_template(
                rendered.image, rendered.pixels_per_mm, rendered.mask
            )
            results.append(
                recovery_metrics(
                    template, rendered.minutiae_px, rendered.pixels_per_mm
                )
            )
        return results

    metrics = benchmark(render_and_extract)
    precisions = [p for p, __ in metrics]
    recalls = [r for __, r in metrics]

    text = "\n".join(
        [
            f"Image pipeline fidelity over {N_FINGERS} fingers "
            "(render at 8 px/mm, classical extractor)",
            f"  precision: mean {np.mean(precisions):.2f} "
            f"min {np.min(precisions):.2f}",
            f"  recall:    mean {np.mean(recalls):.2f} "
            f"min {np.min(recalls):.2f}",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    assert np.mean(precisions) > 0.6
    assert np.mean(recalls) > 0.5
