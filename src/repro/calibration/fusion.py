"""Score-level fusion: multiple fingers, multiple matchers.

Two of the paper's further-work items are fusion experiments:

* "Using more than one fingerprint image from a given participant to
  improve the FMR and FNMR rates and overall Decision Making" —
  multi-finger fusion;
* "more detailed analysis on the effects of diverse matchers on
  interoperability ... examples where diverse matchers improve the
  detection rates" — multi-matcher fusion.

Both reduce to combining parallel score arrays; the classical
combination rules (Kittler et al.) are implemented plus a weighted sum
whose weights can come from per-source d-prime separability.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from ..runtime.errors import CalibrationError


def _stack(score_arrays: Sequence[np.ndarray]) -> np.ndarray:
    if not score_arrays:
        raise CalibrationError("fusion needs at least one score source")
    arrays = [np.asarray(a, dtype=np.float64).ravel() for a in score_arrays]
    n = arrays[0].size
    for a in arrays:
        if a.size != n:
            raise CalibrationError(
                f"fusion sources must align: lengths {[x.size for x in arrays]}"
            )
    return np.vstack(arrays)


def sum_fusion(score_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Mean of the sources (the sum rule, scale-preserving variant)."""
    return _stack(score_arrays).mean(axis=0)


def max_fusion(score_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise maximum — accept if *any* source is confident."""
    return _stack(score_arrays).max(axis=0)


def min_fusion(score_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise minimum — accept only if *all* sources agree."""
    return _stack(score_arrays).min(axis=0)


def product_fusion(score_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Geometric mean (the product rule on a similarity scale)."""
    stacked = _stack(score_arrays)
    if np.any(stacked < 0):
        raise CalibrationError("product fusion requires non-negative scores")
    return np.exp(np.mean(np.log(stacked + 1e-9), axis=0))


def weighted_sum_fusion(
    score_arrays: Sequence[np.ndarray], weights: Sequence[float]
) -> np.ndarray:
    """Convex combination with explicit weights."""
    stacked = _stack(score_arrays)
    w = np.asarray(weights, dtype=np.float64)
    if w.size != stacked.shape[0]:
        raise CalibrationError(
            f"{stacked.shape[0]} sources but {w.size} weights"
        )
    if np.any(w < 0) or w.sum() <= 0:
        raise CalibrationError("weights must be non-negative and sum > 0")
    w = w / w.sum()
    return (w[:, None] * stacked).sum(axis=0)


def d_prime(genuine: np.ndarray, impostor: np.ndarray) -> float:
    """Separability index (mu_g - mu_i) / sqrt((var_g + var_i) / 2)."""
    g = np.asarray(genuine, dtype=np.float64)
    i = np.asarray(impostor, dtype=np.float64)
    if g.size < 2 or i.size < 2:
        raise CalibrationError("d_prime needs >= 2 scores on each side")
    pooled = np.sqrt((g.var(ddof=1) + i.var(ddof=1)) / 2.0)
    if pooled == 0:
        return float("inf") if g.mean() != i.mean() else 0.0
    return float((g.mean() - i.mean()) / pooled)


def separability_weights(
    genuine_sources: Sequence[np.ndarray], impostor_sources: Sequence[np.ndarray]
) -> np.ndarray:
    """Fusion weights proportional to each source's d-prime (floored at 0)."""
    if len(genuine_sources) != len(impostor_sources):
        raise CalibrationError("need genuine and impostor arrays per source")
    weights = np.array(
        [
            max(0.0, d_prime(g, i))
            for g, i in zip(genuine_sources, impostor_sources)
        ]
    )
    if weights.sum() == 0:
        weights = np.ones_like(weights)
    return weights / weights.sum()


#: Registry of rule names to callables (used by benchmarks/examples).
FUSION_RULES: Dict[str, Callable[[Sequence[np.ndarray]], np.ndarray]] = {
    "sum": sum_fusion,
    "max": max_fusion,
    "min": min_fusion,
    "product": product_fusion,
}


__all__ = [
    "sum_fusion",
    "max_fusion",
    "min_fusion",
    "product_fusion",
    "weighted_sum_fusion",
    "d_prime",
    "separability_weights",
    "FUSION_RULES",
]
