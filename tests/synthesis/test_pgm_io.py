"""PGM reader/writer round trips and strictness."""

import numpy as np
import pytest

from repro.synthesis.ridges import read_pgm, write_pgm


class TestRoundTrip:
    def test_exact_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(37, 53), dtype=np.uint8)
        path = tmp_path / "x.pgm"
        write_pgm(image, path)
        np.testing.assert_array_equal(read_pgm(path), image)

    def test_non_square(self, tmp_path):
        image = np.arange(12, dtype=np.uint8).reshape(3, 4)
        write_pgm(image, tmp_path / "r.pgm")
        restored = read_pgm(tmp_path / "r.pgm")
        assert restored.shape == (3, 4)


class TestStrictness:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n2 2\n255\n" + bytes(12))
        with pytest.raises(ValueError, match="P5"):
            read_pgm(path)

    def test_truncated_raster(self, tmp_path):
        path = tmp_path / "short.pgm"
        path.write_bytes(b"P5\n4 4\n255\n" + bytes(7))
        with pytest.raises(ValueError, match="raster"):
            read_pgm(path)

    def test_unsupported_maxval(self, tmp_path):
        path = tmp_path / "deep.pgm"
        path.write_bytes(b"P5\n2 2\n65535\n" + bytes(8))
        with pytest.raises(ValueError, match="maxval"):
            read_pgm(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "hdr.pgm"
        path.write_bytes(b"P5\n2")
        with pytest.raises(ValueError, match="truncated"):
            read_pgm(path)
