"""Kendall tau-b correctness, including cross-validation against scipy."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.kendall import KendallResult, erfc_two_sided, kendall_tau

scipy_stats = pytest.importorskip("scipy.stats")


class TestBasics:
    def test_perfect_agreement(self):
        result = kendall_tau([1, 2, 3, 4, 5], [10, 20, 30, 40, 50])
        assert result.tau == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        result = kendall_tau([1, 2, 3, 4, 5], [5, 4, 3, 2, 1])
        assert result.tau == pytest.approx(-1.0)

    def test_known_small_case(self):
        # Classic example: tau = 1/3 for this permutation.
        result = kendall_tau([1, 2, 3, 4], [2, 1, 4, 3])
        assert result.tau == pytest.approx(1.0 / 3.0)

    def test_constant_input_gives_nan(self):
        result = kendall_tau([1.0, 1.0, 1.0], [1, 2, 3])
        assert math.isnan(result.tau)
        assert result.p_value == 1.0

    def test_p_value_of_self_correlation_shrinks_with_n(self):
        p_small = kendall_tau(range(20), range(20)).p_value
        p_large = kendall_tau(range(200), range(200)).p_value
        assert p_large < p_small < 1e-8

    def test_paper_diagonal_magnitude(self):
        # At n=494, tau=1 should give p on the order of the paper's
        # diagonal (~5e-242).
        p = kendall_tau(range(494), range(494)).p_value
        assert 1e-250 < p < 1e-230

    def test_independent_large_sample_insignificant(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        y = rng.normal(size=500)
        assert kendall_tau(x, y).p_value > 0.01


class TestErrors:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [2])

    def test_non_finite(self):
        with pytest.raises(ValueError):
            kendall_tau([1, np.nan, 3], [1, 2, 3])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau(np.zeros((2, 2)), np.zeros((2, 2)))


class TestAgainstScipy:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=20), min_size=5, max_size=60
        ).flatmap(
            lambda xs: st.tuples(
                st.just(xs),
                st.lists(
                    st.integers(min_value=0, max_value=20),
                    min_size=len(xs),
                    max_size=len(xs),
                ),
            )
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_tau_matches_scipy(self, pair):
        x, y = pair
        if len(set(x)) < 2 or len(set(y)) < 2:
            return  # undefined correlation; covered elsewhere
        ours = kendall_tau(x, y)
        theirs = scipy_stats.kendalltau(x, y)
        assert ours.tau == pytest.approx(theirs.statistic, abs=1e-9)

    def test_pvalue_close_to_scipy_asymptotic(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=300)
        y = 0.3 * x + rng.normal(size=300)
        ours = kendall_tau(x, y)
        theirs = scipy_stats.kendalltau(x, y, method="asymptotic")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-3)

    def test_pvalue_with_heavy_ties(self):
        rng = np.random.default_rng(4)
        x = rng.integers(0, 4, size=400)
        y = x + rng.integers(0, 3, size=400)
        ours = kendall_tau(x, y)
        theirs = scipy_stats.kendalltau(x, y, method="asymptotic")
        assert ours.tau == pytest.approx(theirs.statistic, abs=1e-9)
        # Extreme tail: compare on the log scale.
        assert math.log(ours.p_value + 1e-300) == pytest.approx(
            math.log(theirs.pvalue + 1e-300), rel=0.02
        )


class TestErfc:
    def test_two_sided_at_zero(self):
        assert erfc_two_sided(0.0) == pytest.approx(1.0)

    def test_symmetry(self):
        assert erfc_two_sided(2.5) == erfc_two_sided(-2.5)

    def test_known_value(self):
        # P(|Z| >= 1.96) ~ 0.05.
        assert erfc_two_sided(1.959964) == pytest.approx(0.05, abs=1e-4)
