"""T1 — Table 1: characteristics of the Live-scan devices.

The registry carries the published values verbatim; the benchmark times
sensor construction (device signature fields included) and records the
rendered table.
"""

from repro.api import (
    build_sensor,
    DEVICE_ORDER,
    DEVICE_PROFILES,
    render_table1,
)


def test_table1_device_registry(benchmark, record_artifact):
    def build_all_sensors():
        return {device: build_sensor(device) for device in DEVICE_ORDER}

    sensors = benchmark(build_all_sensors)
    text = render_table1()
    record_artifact(text)
    print("\n" + text)

    assert len(sensors) == 5
    # Published values spot-check.
    assert DEVICE_PROFILES["D1"].image_width_px == 752
    assert DEVICE_PROFILES["D3"].capture_width_mm == 40.6
    assert all(p.resolution_dpi == 500 for p in DEVICE_PROFILES.values())
