"""Histogram and frequency-surface utilities."""

import numpy as np
import pytest

from repro.stats.histogram import (
    FrequencySurface,
    Histogram,
    frequency_surface,
    render_histogram,
    render_overlaid,
    score_histogram,
)


class TestScoreHistogram:
    def test_unit_bins_by_default(self):
        hist = score_histogram([0.5, 1.5, 1.7, 2.2], score_range=(0, 3))
        np.testing.assert_array_equal(hist.counts, [1, 2, 1])

    def test_total(self):
        hist = score_histogram([1, 2, 3], score_range=(0, 5))
        assert hist.total == 3

    def test_density_sums_to_one(self):
        hist = score_histogram(np.random.default_rng(0).random(100) * 5)
        assert hist.density().sum() == pytest.approx(1.0)

    def test_empty_histogram(self):
        hist = score_histogram([])
        assert hist.total == 0
        assert hist.density().sum() == 0.0

    def test_count_in_range(self):
        hist = score_histogram([0.5, 1.5, 2.5, 6.5], score_range=(0, 10))
        assert hist.count_in(0, 3) == 3  # the paper's "scores below 7" reads

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            score_histogram([1.0], bin_width=0)

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Histogram(edges=np.array([0, 1]), counts=np.array([1, 2]))


class TestRendering:
    def test_render_contains_counts(self):
        hist = score_histogram([1, 1, 2], score_range=(0, 3), label="DMG")
        text = render_histogram(hist)
        assert "DMG" in text and "2" in text

    def test_overlaid_requires_same_edges(self):
        a = score_histogram([1], score_range=(0, 3))
        b = score_histogram([1], score_range=(0, 4))
        with pytest.raises(ValueError):
            render_overlaid(a, b)

    def test_overlaid_renders_both(self):
        a = score_histogram([1, 2], score_range=(0, 3), label="genuine")
        b = score_histogram([0.2], score_range=(0, 3), label="impostor")
        text = render_overlaid(a, b)
        assert "genuine" in text and "impostor" in text


class TestFrequencySurface:
    def test_counts_pairs(self):
        surface = frequency_surface([1, 1, 2], [1, 3, 2])
        assert surface.counts[0, 0] == 1  # (1,1)
        assert surface.counts[0, 2] == 1  # (1,3)
        assert surface.counts[1, 1] == 1  # (2,2)
        assert surface.total == 3

    def test_out_of_level_values_dropped(self):
        surface = frequency_surface([1, 9], [1, 9])
        assert surface.total == 1

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            frequency_surface([1, 2], [1])

    def test_render(self):
        surface = frequency_surface([1, 2], [2, 2])
        text = surface.render(row_title="gallery", col_title="probe")
        assert "gallery" in text and "probe" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FrequencySurface(
                row_labels=[1, 2], col_labels=[1, 2], counts=np.zeros((3, 2))
            )
