"""Measure acquisition cold/warm/parallel timings and record them.

Usage::

    PYTHONPATH=src python benchmarks/acquisition_pipeline.py \
        --label "PR-3 artifact store" --out acquisition_pipeline_pr3.json

Four measurements over the same population:

* ``cold_serial_seconds`` — build every subject from seeds, no store.
* ``cold_parallel_seconds`` — same build fanned across ``--workers``
  processes (degrades to serial when the machine has fewer CPUs; the
  record carries ``cpus`` so readers can interpret the ratio honestly).
* ``warm_seconds`` — reload the whole collection from the artifact
  store populated by the parallel pass.
* ``thinning`` — microbenchmark of the padded-slice neighbourhood
  against the original ``np.roll`` chain it replaced.

Every pass re-verifies that the resulting collections are equal, so the
recorded speedups are for bit-identical outputs.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from _bench_common import OUTPUT_DIR
from repro.api import ArtifactStore, StudyConfig, build_collection


def _time_collection(config, repeats=1):
    best = float("inf")
    collection = None
    for _ in range(repeats):
        start = time.perf_counter()
        collection = build_collection(config)
        best = min(best, time.perf_counter() - start)
    return best, collection


def _thinning_microbench(repeats: int = 5):
    from repro.imaging.thinning import neighbourhood_planes

    def roll_planes(z):
        p2 = np.roll(z, 1, axis=0)
        p3 = np.roll(p2, -1, axis=1)
        p4 = np.roll(z, -1, axis=1)
        p6 = np.roll(z, -1, axis=0)
        p5 = np.roll(p6, -1, axis=1)
        p7 = np.roll(p6, 1, axis=1)
        p8 = np.roll(z, 1, axis=1)
        p9 = np.roll(p2, 1, axis=1)
        return p2, p3, p4, p5, p6, p7, p8, p9

    rng = np.random.Generator(np.random.PCG64(0))
    z = (rng.random((512, 512)) < 0.4).astype(np.uint8)
    iterations = 200

    def best_of(func):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                func(z)
            best = min(best, time.perf_counter() - start)
        return best

    roll_s = best_of(roll_planes)
    slice_s = best_of(neighbourhood_planes)
    return {
        "shape": list(z.shape),
        "iterations": iterations,
        "roll_seconds": round(roll_s, 4),
        "slice_seconds": round(slice_s, 4),
        "speedup": round(roll_s / slice_s, 2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--subjects", type=int, default=12)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--label", default="artifact store + parallel acquisition")
    parser.add_argument("--out", default="acquisition_pipeline.json")
    args = parser.parse_args()

    base = StudyConfig(n_subjects=args.subjects)

    cold_serial_s, serial = _time_collection(base)

    with tempfile.TemporaryDirectory() as tmp:
        parallel_config = base.replace(
            n_workers=args.workers, artifact_dir=os.path.join(tmp, "arts")
        )
        cold_parallel_s, parallel = _time_collection(parallel_config)
        assert parallel == serial, "parallel build diverged from serial"

        warm_s, warm = _time_collection(
            base.replace(artifact_dir=parallel_config.artifact_dir), repeats=3
        )
        assert warm == serial, "warm load diverged from cold build"
        store_stats = ArtifactStore(parallel_config.artifact_dir).stats()

    record = {
        "label": args.label,
        "n_subjects": args.subjects,
        "workers_requested": args.workers,
        "cpus": os.cpu_count(),
        "cold_serial_seconds": round(cold_serial_s, 3),
        "cold_parallel_seconds": round(cold_parallel_s, 3),
        "warm_seconds": round(warm_s, 3),
        "parallel_speedup": round(cold_serial_s / cold_parallel_s, 2),
        "warm_speedup": round(cold_serial_s / warm_s, 2),
        "store_bytes": store_stats["total"]["bytes"],
        "store_entries": store_stats["total"]["entries"],
        "thinning": _thinning_microbench(),
    }
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    out_path = OUTPUT_DIR / args.out
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"written to {out_path}")


if __name__ == "__main__":
    main()
