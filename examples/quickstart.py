#!/usr/bin/env python3
"""Quickstart: run a scaled-down version of the DSN 2013 study.

Builds a synthetic participant pool, captures everyone on the five
devices of the paper (four optical live-scans + ink ten-print cards),
generates the four score sets of Table 2, and prints the headline
comparison: same-device vs cross-device genuine match scores.

Run:
    python examples/quickstart.py            # 40 subjects, ~30 s
    REPRO_SUBJECTS=120 python examples/quickstart.py
"""

import numpy as np

from repro.api import (
    DEVICE_ORDER,
    InteroperabilityStudy,
    LIVESCAN_DEVICES,
    render_score_histograms,
    render_table3,
    StudyConfig,
    summarize,
)


def main() -> None:
    config = StudyConfig.from_environment(n_subjects=40, n_workers=4)
    print(config.describe())
    print()

    study = InteroperabilityStudy(config)
    sets = study.score_sets()

    print(render_table3(sets, config.n_subjects))
    print()

    print("Genuine score summary per scenario")
    print(" ", summarize(sets["DMG"].scores).render("DMG  (same device)"))
    print(" ", summarize(sets["DDMG"].scores).render("DDMG (cross device)"))
    print(" ", summarize(sets["DMI"].scores).render("DMI  (impostor)"))
    print()

    print("Same-device vs cross-device genuine means per gallery device:")
    for device in LIVESCAN_DEVICES:
        same = sets["DMG"].for_pair(device, device).scores.mean()
        cross = np.mean(
            [
                sets["DDMG"].for_pair(device, other).scores.mean()
                for other in DEVICE_ORDER
                if other != device
            ]
        )
        print(
            f"  {device}: same-device {same:5.1f}   cross-device {cross:5.1f}"
            f"   penalty {same - cross:+.1f}"
        )
    print()

    print(
        render_score_histograms(
            sets["DMG"].for_pair("D0", "D0"),
            sets["DMI"].for_pair("D0", "D0"),
            "Figure 2 analogue: Cross Match Guardian R2, genuine vs impostor",
        )
    )
    print()
    print(
        "Note the paper's landmark: impostor scores stay below ~7 while a"
        " visible tail of cross-device genuine scores falls under it."
    )


if __name__ == "__main__":
    main()
