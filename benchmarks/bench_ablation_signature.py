"""Ablation 1 — remove the device signature warps.

DESIGN.md's causal claim: the cross-device genuine-score penalty is
driven by each device's fixed systematic warp (same-device comparisons
share it, cross-device comparisons see the difference).  Acquiring the
identical population with ``disable_device_signatures=True`` should
collapse most of the penalty while leaving same-device scores roughly
unchanged.

Run at a reduced population (the ablation needs its own score sets).
"""

import numpy as np

from _bench_common import bench_config
from repro.api import (
    DEVICE_ORDER,
    InteroperabilityStudy,
    LIVESCAN_DEVICES,
    ProtocolSettings,
)

ABLATION_SUBJECTS = 24


def _penalty(study) -> float:
    """Mean same-device minus cross-device genuine score gap."""
    sets = study.score_sets()
    gaps = []
    for device in LIVESCAN_DEVICES:
        same = sets["DMG"].for_pair(device, device).scores.mean()
        cross = np.mean(
            [
                sets["DDMG"].for_pair(device, other).scores.mean()
                for other in DEVICE_ORDER
                if other != device
            ]
        )
        gaps.append(same - cross)
    return float(np.mean(gaps))


def test_ablation_device_signature(benchmark, record_artifact):
    config = bench_config(n_subjects=ABLATION_SUBJECTS)

    with_signatures = InteroperabilityStudy(config)
    without_signatures = InteroperabilityStudy(
        config, protocol=ProtocolSettings(disable_device_signatures=True)
    )
    with_signatures.score_sets()

    def run_ablated():
        return without_signatures.score_sets()

    benchmark.pedantic(run_ablated, rounds=1, iterations=1)

    penalty_on = _penalty(with_signatures)
    penalty_off = _penalty(without_signatures)
    text = "\n".join(
        [
            "Ablation: device signature warps "
            f"({ABLATION_SUBJECTS} subjects)",
            f"  same-vs-cross genuine gap, signatures ON : {penalty_on:+.2f}",
            f"  same-vs-cross genuine gap, signatures OFF: {penalty_off:+.2f}",
            f"  collapse: {100 * (1 - penalty_off / penalty_on):.0f}% of the "
            "penalty disappears with the mechanism removed"
            if penalty_on > 0
            else "",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    assert penalty_on > 0
    # Removing the mechanism removes most of the effect.
    assert penalty_off < 0.6 * penalty_on
