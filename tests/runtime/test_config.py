"""StudyConfig validation and scaling rules."""

import pytest

from repro.runtime.config import (
    DEFAULT_SUBJECT_COUNT,
    PAPER_DDMI_BUDGET,
    PAPER_DMI_BUDGET,
    PAPER_SUBJECT_COUNT,
    StudyConfig,
    resolve_worker_count,
)
from repro.runtime.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        config = StudyConfig()
        assert config.n_subjects == DEFAULT_SUBJECT_COUNT

    def test_too_few_subjects(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(n_subjects=1)

    def test_zero_fingers(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(fingers_per_subject=0)

    def test_one_set_rejected(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(sets_per_device=1)

    def test_unknown_matcher(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(matcher_name="neuralnet")

    def test_negative_workers(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(n_workers=-1)

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(dmi_budget=0)
        with pytest.raises(ConfigurationError):
            StudyConfig(ddmi_budget=0)


class TestPaperScale:
    def test_matches_table3(self):
        config = StudyConfig.paper_scale()
        assert config.n_subjects == PAPER_SUBJECT_COUNT == 494
        assert config.scaled_dmi_budget() == PAPER_DMI_BUDGET == 120_855
        assert config.scaled_ddmi_budget() == PAPER_DDMI_BUDGET == 483_420
        assert config.is_paper_scale

    def test_override(self):
        config = StudyConfig.paper_scale(master_seed=7)
        assert config.master_seed == 7
        assert config.n_subjects == PAPER_SUBJECT_COUNT


class TestScaling:
    def test_budget_scales_quadratically(self):
        half = StudyConfig(n_subjects=247)
        ratio = half.scaled_dmi_budget() / PAPER_DMI_BUDGET
        expected = (247 * 246) / (494 * 493)
        assert abs(ratio - expected) < 0.01

    def test_explicit_budget_wins(self):
        config = StudyConfig(dmi_budget=500, ddmi_budget=700)
        assert config.scaled_dmi_budget() == 500
        assert config.scaled_ddmi_budget() == 700

    def test_budget_never_zero(self):
        tiny = StudyConfig(n_subjects=2)
        assert tiny.scaled_dmi_budget() >= 1
        assert tiny.scaled_ddmi_budget() >= 1


class TestEnvironment:
    def test_env_subjects(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUBJECTS", "33")
        assert StudyConfig.from_environment().n_subjects == 33

    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert StudyConfig.from_environment().n_workers == 3

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUBJECTS", "many")
        with pytest.raises(ConfigurationError):
            StudyConfig.from_environment()

    def test_env_beats_code_defaults(self, monkeypatch):
        # Keyword arguments are defaults; the environment is the user's
        # explicit request and must win.
        monkeypatch.setenv("REPRO_SUBJECTS", "33")
        assert StudyConfig.from_environment(n_subjects=20).n_subjects == 33

    def test_defaults_used_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUBJECTS", raising=False)
        assert StudyConfig.from_environment(n_subjects=20).n_subjects == 20


class TestMisc:
    def test_replace(self):
        config = StudyConfig().replace(master_seed=42)
        assert config.master_seed == 42

    def test_fingerprint_stable_and_sensitive(self):
        a = StudyConfig(n_subjects=10)
        b = StudyConfig(n_subjects=10)
        c = StudyConfig(n_subjects=11)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_describe_mentions_scale(self):
        assert "scaled-down" in StudyConfig(n_subjects=10).describe()
        assert "paper-scale" in StudyConfig.paper_scale().describe()

    def test_resolve_worker_count(self):
        assert resolve_worker_count(0) == 0
        assert resolve_worker_count(-5) == 0
        assert resolve_worker_count(1) == 1
        assert resolve_worker_count(10**6) >= 1  # capped to CPUs
