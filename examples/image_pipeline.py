#!/usr/bin/env python3
"""The image-domain loop: render → extract → match.

The original study's matcher consumed fingerprint *images*; the
quantitative pipeline in this reproduction shortcuts to templates.
This example demonstrates the full image-domain substrate:

1. render a synthetic finger as a ridge image in which every master
   minutia is planted as a phase spiral (Larkin & Fletcher's
   fingerprint-as-hologram model);
2. run the classical extractor (binarize → Zhang–Suen skeleton →
   crossing number → artifact filtering) to recover a template;
3. report extractor precision/recall against the planted ground truth;
4. match image-extracted templates: genuine vs impostor.

Run:
    python examples/image_pipeline.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.api import (
    ascii_preview,
    BioEngineMatcher,
    extract_template,
    recovery_metrics,
    render_finger,
    RenderSettings,
    synthesize_master_finger,
    to_uint8,
    write_pgm,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("image_pipeline_out")
    out_dir.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(2013)
    finger_a = synthesize_master_finger(rng)
    finger_b = synthesize_master_finger(rng)
    matcher = BioEngineMatcher()

    print(f"Finger A: {finger_a.pattern.value}, {finger_a.n_minutiae} master minutiae")
    rendered = render_finger(finger_a, RenderSettings(pixels_per_mm=8.0))
    write_pgm(to_uint8(rendered.image), out_dir / "finger_a.pgm")
    print(ascii_preview(to_uint8(rendered.image), max_width=66))
    print()

    template = extract_template(rendered.image, rendered.pixels_per_mm, rendered.mask)
    precision, recall = recovery_metrics(
        template, rendered.minutiae_px, rendered.pixels_per_mm
    )
    print(
        f"Extractor: {len(template)} minutiae detected "
        f"(precision {precision:.2f}, recall {recall:.2f} vs planted truth)"
    )
    print()

    def impression(finger, seed, moisture):
        r = render_finger(
            finger,
            RenderSettings(
                pixels_per_mm=8.0, moisture=moisture, noise_std=0.04, seed=seed
            ),
        )
        return extract_template(r.image, r.pixels_per_mm, r.mask)

    a1 = impression(finger_a, seed=1, moisture=0.5)
    a2 = impression(finger_a, seed=2, moisture=0.58)  # drier second visit
    b1 = impression(finger_b, seed=3, moisture=0.5)
    genuine = matcher.match(a2, a1)
    impostor = matcher.match(b1, a1)
    print("Matching image-extracted templates (no ground truth involved):")
    print(f"  genuine  (finger A visit 1 vs visit 2): {genuine:5.1f}")
    print(f"  impostor (finger B vs finger A):        {impostor:5.1f}")
    print()
    print(f"Rendered images written to {out_dir}/")


if __name__ == "__main__":
    main()
