#!/usr/bin/env python3
"""Identification at the border — the paper's US-VISIT motivation.

"Fingerprints are currently enrolled using a 500 dpi optical sensor ...
As different devices may be used for enrollment and then verification,
the lack of interoperability between the devices is a significant
concern."

This example runs the 1:N scenario behind that concern: a watchlist-
style gallery enrolled on the Guardian R2, then identification attempts
with probes from every capture source, reporting CMC curves, rank-1
margins, and open-set error rates with Wilson confidence intervals.

Run:
    python examples/identification_at_the_border.py
"""

import numpy as np

from repro.api import (
    cross_device_cmc,
    DEVICE_ORDER,
    DEVICE_PROFILES,
    InteroperabilityStudy,
    open_set_rates,
    StudyConfig,
    wilson_interval,
)

GALLERY_DEVICE = "D0"


def main() -> None:
    config = StudyConfig.from_environment(n_subjects=30, n_workers=4)
    study = InteroperabilityStudy(config)
    collection = study.collection()
    n = config.n_subjects
    n_enrolled = n * 2 // 3  # the rest of the population is unenrolled

    print(f"Gallery: {n_enrolled} identities enrolled on "
          f"{DEVICE_PROFILES[GALLERY_DEVICE].model}")
    print()

    print("Closed-set identification (CMC) per probe device:")
    print(f"  {'probe device':<42}{'rank-1':>8}{'rank-5':>8}")
    for device in DEVICE_ORDER:
        curve = cross_device_cmc(study, GALLERY_DEVICE, device,
                                 max_rank=5, n_subjects=n_enrolled)
        name = DEVICE_PROFILES[device].model
        print(f"  {name:<42}{curve.rank1:>8.3f}{curve.rate_at(5):>8.3f}")
    print()

    print("Open-set identification at threshold 7.5 "
          "(enrolled travellers vs unknown persons):")
    gallery = {
        f"subject-{sid}": collection.get(
            sid, "right_index", GALLERY_DEVICE, 0
        ).template
        for sid in range(n_enrolled)
    }
    print(f"  {'probe device':<42}{'FNIR':>20}{'FPIR':>20}")
    for device in DEVICE_ORDER:
        enrolled = [
            (f"subject-{sid}",
             collection.get(sid, "right_index", device, 1).template)
            for sid in range(n_enrolled)
        ]
        unenrolled = [
            collection.get(sid, "right_index", device, 1).template
            for sid in range(n_enrolled, n)
        ]
        fnir, fpir = open_set_rates(
            study.matcher(), enrolled, unenrolled, gallery, threshold=7.5
        )
        fnir_lo, fnir_hi = wilson_interval(
            int(round(fnir * len(enrolled))), len(enrolled)
        )
        fpir_lo, fpir_hi = wilson_interval(
            int(round(fpir * len(unenrolled))), len(unenrolled)
        )
        name = DEVICE_PROFILES[device].model
        print(
            f"  {name:<42}"
            f"{fnir:>7.3f} [{fnir_lo:.2f},{fnir_hi:.2f}]"
            f"{fpir:>8.3f} [{fpir_lo:.2f},{fpir_hi:.2f}]"
        )
    print()
    print(
        "Travellers enrolled on the optical desktop sensor but presenting"
        " ink-card-quality probes are the ones the system misses — the"
        " operational shape of the paper's interoperability concern."
    )


if __name__ == "__main__":
    main()
