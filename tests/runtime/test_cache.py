"""On-disk score cache behaviour."""

import numpy as np
import pytest

from repro.runtime.cache import ScoreCache
from repro.runtime.errors import CacheError


@pytest.fixture()
def cache(tmp_path):
    return ScoreCache(tmp_path / "cache")


class TestRoundTrip:
    def test_store_and_load(self, cache):
        arrays = {"scores": np.arange(5.0), "ids": np.array([1, 2, 3, 4, 5])}
        cache.store("run1", arrays)
        loaded = cache.load("run1")
        assert set(loaded) == {"scores", "ids"}
        np.testing.assert_array_equal(loaded["scores"], arrays["scores"])

    def test_meta_roundtrip(self, cache):
        cache.store("k", {"a": np.zeros(2)}, meta={"n": 10, "label": "x"})
        assert cache.load_meta("k") == {"n": 10, "label": "x"}

    def test_meta_not_in_arrays(self, cache):
        cache.store("k", {"a": np.zeros(2)}, meta={"n": 10})
        assert "__meta__" not in cache.load("k")

    def test_miss_returns_none(self, cache):
        assert cache.load("absent") is None
        assert cache.load_meta("absent") is None


class TestDisabled:
    def test_none_directory_disables(self):
        cache = ScoreCache(None)
        assert not cache.enabled
        cache.store("k", {"a": np.zeros(1)})  # silently a no-op
        assert cache.load("k") is None
        assert cache.invalidate("k") is False
        assert cache.clear() == 0


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, cache, tmp_path):
        cache.store("bad", {"a": np.zeros(3)})
        path = tmp_path / "cache" / "bad.npz"
        path.write_bytes(b"not a zipfile at all")
        assert cache.load("bad") is None
        # And the corrupt file was removed so the next store is clean.
        assert not path.exists()

    def test_bad_key_rejected(self, cache):
        with pytest.raises(CacheError):
            cache.store("../escape", {"a": np.zeros(1)})
        with pytest.raises(CacheError):
            cache.load("a/b")

    def test_invalidate(self, cache):
        cache.store("k", {"a": np.zeros(1)})
        assert cache.invalidate("k") is True
        assert cache.load("k") is None
        assert cache.invalidate("k") is False

    def test_clear(self, cache):
        cache.store("k1", {"a": np.zeros(1)})
        cache.store("k2", {"a": np.zeros(1)})
        assert cache.clear() == 2
        assert cache.load("k1") is None

    def test_overwrite(self, cache):
        cache.store("k", {"a": np.zeros(2)})
        cache.store("k", {"a": np.ones(3)})
        np.testing.assert_array_equal(cache.load("k")["a"], np.ones(3))
