"""Fixed-length template descriptors and the top-K prefilter index.

The exact minutiae matcher is O(gallery) in the most expensive kernel:
every ``/identify`` pays one full alignment-and-pairing run per enrolled
template.  That cannot survive the million-identity north star.  This
module provides the coarse first stage of a two-stage search: a cheap,
fixed-length **descriptor vector** per template, plus a
:class:`PrefilterIndex` holding all gallery descriptors in one
contiguous matrix so a probe's top-K nearest candidates fall out of a
single vectorized numpy pass.  Only the K survivors are handed to the
exact matcher; the exhaustive path remains the recall oracle
(:func:`repro.core.identification.rank_candidates`).

The descriptor is a *bag of local structures*: a joint soft histogram
over the rotation- and translation-invariant neighbourhood entries the
exact matcher itself computes (:func:`repro.matcher.descriptors.
build_descriptors` — per-minutia (distance, azimuth, relative-angle)
triples in the Jiang & Yau local frame), concatenated with the
NFIQ-style scalar evidence from
:func:`repro.quality.nfiq.template_quality_features` (minutiae count,
contact area, quality statistics) and a nearest-neighbour
ridge-spacing summary.  Pose invariance is the decisive property: two
impressions of one finger differ by a global rotation/translation that
absolute-coordinate features cannot survive, while the local-frame
entries move only with capture jitter.

Design constraints, in order:

* **Deterministic** — the same template always produces the same
  vector (the gallery persists descriptors, so drift would poison the
  index; :data:`DESCRIPTOR_VERSION` guards format changes).
* **Smooth** — trilinear/circular soft binning everywhere, so the
  jitter between two impressions of one finger moves mass between
  adjacent bins instead of teleporting it; the mate's descriptor stays
  near the enrollment's.
* **Cheap** — pure numpy on arrays the template already exposes;
  building a descriptor costs well under a millisecond, searching 100k
  of them costs milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..matcher.descriptors import build_descriptors
from ..matcher.types import Template
from ..quality.nfiq import quality_utility, template_quality_features
from ..runtime.errors import ConfigurationError

#: Bump when the descriptor layout or weighting changes; persisted
#: descriptors with another version are recomputed, never compared.
DESCRIPTOR_VERSION = 1

#: Joint structure-histogram resolution: distance x azimuth x relative.
_DIST_BINS = 8
_AZIMUTH_BINS = 8
_RELATIVE_BINS = 8

#: Neighbour distances beyond this are clamped into the last bin (mm).
_DIST_RANGE_MM = 10.0

#: Vector layout: structure histogram, count, bifurcation fraction,
#: quality mean/std, neighbour-spacing mean/std, contact area, NFIQ
#: utility.
_BAG_DIM = _DIST_BINS * _AZIMUTH_BINS * _RELATIVE_BINS
DESCRIPTOR_DIM = _BAG_DIM + 1 + 1 + 2 + 2 + 1 + 1

#: Per-block weights: the pose-invariant structure histogram carries
#: nearly all of the identity signal; the scalar statistics only refine
#: the ordering between structurally similar templates, and are kept
#: deliberately light because count/quality/contact evidence shifts
#: systematically between capture devices.
_WEIGHTS = np.concatenate([
    np.full(_BAG_DIM, 3.0),                 # bag of local structures
    [0.3],                                  # minutiae count (squashed)
    [0.15],                                 # bifurcation fraction
    [0.15, 0.075],                          # minutia quality mean/std
    [0.15, 0.075],                          # ridge-spacing proxy mean/std
    [0.09],                                 # contact area fraction
    [0.09],                                 # NFIQ utility
])
assert _WEIGHTS.shape == (DESCRIPTOR_DIM,)


def _axis_parts(scaled: np.ndarray, bins: int, wrap: bool):
    """Soft-binning halves for one histogram axis.

    ``scaled`` is the bin-center coordinate (value already mapped onto
    [-0.5, bins - 0.5]); each sample splits its mass between the two
    surrounding bins.  Circular axes wrap, linear axes clamp at the
    edges.
    """
    low = np.floor(scaled).astype(np.int64)
    frac = scaled - low
    if wrap:
        return ((np.mod(low, bins), 1.0 - frac), (np.mod(low + 1, bins), frac))
    return (
        (np.clip(low, 0, bins - 1), 1.0 - frac),
        (np.clip(low + 1, 0, bins - 1), frac),
    )


def _structure_histogram(template: Template) -> np.ndarray:
    """The bag of local structures: a joint soft 3D histogram.

    Pools every finite neighbourhood entry the exact matcher's
    Jiang & Yau descriptor builder produces — (distance, azimuth,
    relative-angle) triples expressed in each minutia's own frame, hence
    invariant to the global pose difference between two captures — into
    one trilinearly soft-binned histogram, normalized by entry count.
    """
    entries = build_descriptors(template).entries.reshape(-1, 3)
    entries = entries[np.isfinite(entries[:, 0])]
    hist = np.zeros((_DIST_BINS, _AZIMUTH_BINS, _RELATIVE_BINS), dtype=np.float64)
    if len(entries) == 0:
        return hist.ravel()
    dist = np.clip(entries[:, 0] / _DIST_RANGE_MM, 0.0, 1.0 - 1e-9) * _DIST_BINS - 0.5
    azimuth = (entries[:, 1] + np.pi) / (2.0 * np.pi) * _AZIMUTH_BINS - 0.5
    relative = (entries[:, 2] + np.pi) / (2.0 * np.pi) * _RELATIVE_BINS - 0.5
    for d_idx, d_wgt in _axis_parts(dist, _DIST_BINS, wrap=False):
        for a_idx, a_wgt in _axis_parts(azimuth, _AZIMUTH_BINS, wrap=True):
            for r_idx, r_wgt in _axis_parts(relative, _RELATIVE_BINS, wrap=True):
                np.add.at(hist, (d_idx, a_idx, r_idx), d_wgt * a_wgt * r_wgt)
    return hist.ravel() / len(entries)


def _spacing_stats(positions_mm: np.ndarray) -> Tuple[float, float]:
    """Mean/std of each minutia's nearest-neighbour distance (mm).

    The ridge-count proxy: minutiae sit on ridges, so their typical
    spacing tracks local ridge period — without any image in sight.
    Distances are squashed through ``tanh(d / 2 mm)`` onto [0, 1].
    """
    n = len(positions_mm)
    if n < 2:
        return 0.0, 0.0
    deltas = positions_mm[:, None, :] - positions_mm[None, :, :]
    dist = np.sqrt((deltas ** 2).sum(axis=2))
    np.fill_diagonal(dist, np.inf)
    nearest = np.tanh(dist.min(axis=1) / 2.0)
    return float(nearest.mean()), float(nearest.std())


def descriptor_vector(template: Template) -> np.ndarray:
    """The fixed-length prefilter descriptor of one template.

    A weighted float64 vector of length :data:`DESCRIPTOR_DIM`; Euclidean
    distance between two vectors is the prefilter's coarse dissimilarity.
    Deterministic: depends only on the template's minutiae and frame.
    """
    n = len(template)
    features = template_quality_features(template)
    if n:
        qualities = template.qualities().astype(np.float64) / 100.0
        quality_mean = float(qualities.mean())
        quality_std = float(qualities.std())
        bif_fraction = float((template.kinds() == 2).mean())
        spacing_mean, spacing_std = _spacing_stats(template.positions_mm())
    else:
        quality_mean = quality_std = bif_fraction = 0.0
        spacing_mean = spacing_std = 0.0
    raw = np.concatenate([
        _structure_histogram(template),
        [np.tanh(n / 60.0)],
        [bif_fraction],
        [quality_mean, quality_std],
        [spacing_mean, spacing_std],
        [features.contact_area_fraction],
        [quality_utility(features)],
    ])
    return raw * _WEIGHTS


@dataclass(frozen=True)
class PrefilterCandidate:
    """One survivor of the coarse stage: key, distance, 1-based rank."""

    key: str
    distance: float
    rank: int


class PrefilterIndex:
    """A contiguous matrix of descriptors supporting vectorized top-K.

    Keys are arbitrary strings (the gallery uses identities).  ``add``
    replaces an existing key's row in place; ``remove`` swaps the last
    row into the hole, so the matrix stays contiguous without shifting —
    enroll and delete are both O(1) row operations (amortized: the
    backing array doubles when full).

    ``top_k`` computes all squared Euclidean distances in one numpy
    pass, selects K via ``argpartition``, and breaks distance ties by
    key so the candidate order is deterministic.
    """

    def __init__(self, dim: int = DESCRIPTOR_DIM) -> None:
        if dim < 1:
            raise ConfigurationError(f"descriptor dim must be >= 1, got {dim}")
        self._dim = dim
        self._keys: List[str] = []
        self._pos: Dict[str, int] = {}
        self._matrix = np.empty((0, dim), dtype=np.float64)

    @classmethod
    def from_items(
        cls, items: Dict[str, np.ndarray], dim: int = DESCRIPTOR_DIM
    ) -> "PrefilterIndex":
        """Bulk-build an index from ``{key: descriptor}``."""
        index = cls(dim=dim)
        if not items:
            return index
        index._keys = list(items)
        index._pos = {key: i for i, key in enumerate(index._keys)}
        index._matrix = np.ascontiguousarray(
            np.stack([np.asarray(items[key], dtype=np.float64) for key in index._keys])
        )
        if index._matrix.shape[1] != dim:
            raise ConfigurationError(
                f"descriptors have dim {index._matrix.shape[1]}, index wants {dim}"
            )
        return index

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._pos

    @property
    def dim(self) -> int:
        return self._dim

    def keys(self) -> List[str]:
        """Row-ordered keys (parallel to :meth:`matrix` rows)."""
        return list(self._keys)

    def matrix(self) -> np.ndarray:
        """The (n, dim) descriptor matrix — a contiguous copy."""
        return np.ascontiguousarray(self._matrix[: len(self._keys)])

    def _check(self, vector: np.ndarray) -> np.ndarray:
        arr = np.asarray(vector, dtype=np.float64).ravel()
        if arr.shape != (self._dim,):
            raise ConfigurationError(
                f"descriptor must have shape ({self._dim},), got {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ConfigurationError("descriptor contains non-finite values")
        return arr

    def add(self, key: str, vector: np.ndarray) -> None:
        """Insert (or replace) one descriptor row."""
        arr = self._check(vector)
        slot = self._pos.get(key)
        if slot is not None:
            self._matrix[slot] = arr
            return
        n = len(self._keys)
        if n == self._matrix.shape[0]:
            grown = np.empty(
                (max(8, 2 * self._matrix.shape[0]), self._dim), dtype=np.float64
            )
            grown[:n] = self._matrix[:n]
            self._matrix = grown
        self._matrix[n] = arr
        self._pos[key] = n
        self._keys.append(key)

    def remove(self, key: str) -> None:
        """Drop one key (swap-with-last keeps the matrix contiguous)."""
        slot = self._pos.pop(key, None)
        if slot is None:
            raise ConfigurationError(f"prefilter index has no key {key!r}")
        last = len(self._keys) - 1
        if slot != last:
            self._keys[slot] = self._keys[last]
            self._matrix[slot] = self._matrix[last]
            self._pos[self._keys[slot]] = slot
        self._keys.pop()

    def top_k(self, vector: np.ndarray, k: int) -> List[PrefilterCandidate]:
        """The K nearest keys by Euclidean distance, nearest first."""
        if k < 1:
            raise ConfigurationError(f"top_k needs k >= 1, got {k}")
        n = len(self._keys)
        if n == 0:
            return []
        probe = self._check(vector)
        live = self._matrix[:n]
        deltas = live - probe[None, :]
        sq = np.einsum("ij,ij->i", deltas, deltas)
        k = min(k, n)
        if k < n:
            chosen = np.argpartition(sq, k - 1)[:k]
        else:
            chosen = np.arange(n)
        order = sorted(
            (float(np.sqrt(sq[i])), self._keys[i]) for i in chosen
        )
        return [
            PrefilterCandidate(key=key, distance=distance, rank=rank)
            for rank, (distance, key) in enumerate(order, start=1)
        ]


def merge_shard_candidates(
    shards: Sequence[Sequence[PrefilterCandidate]], k: int
) -> List[PrefilterCandidate]:
    """Merge per-shard top-K lists into one global top-K (re-ranked).

    Exact for any metric: the global K nearest are each within their own
    shard's K nearest, so taking every shard's local top-K and re-sorting
    loses nothing.  A key appearing in several shards (overlapping
    shards, or a retried fan-out that answered twice) survives once, at
    its nearest distance — for disjoint shards, the worker-pool case,
    this dedup is a no-op.  Ties break on ``(distance, key)``, the same
    total order :meth:`PrefilterIndex.top_k` uses, so the merged ranking
    is deterministic regardless of shard count or arrival order.
    """
    if k < 1:
        return []
    pooled = sorted(
        (c.distance, c.key) for shard in shards for c in shard
    )
    merged: List[PrefilterCandidate] = []
    seen = set()
    for distance, key in pooled:
        if key in seen:
            continue
        seen.add(key)
        merged.append(
            PrefilterCandidate(
                key=key, distance=distance, rank=len(merged) + 1
            )
        )
        if len(merged) == k:
            break
    return merged


__all__ = [
    "DESCRIPTOR_DIM",
    "DESCRIPTOR_VERSION",
    "descriptor_vector",
    "PrefilterCandidate",
    "PrefilterIndex",
    "merge_shard_candidates",
]
