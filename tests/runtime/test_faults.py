"""Deterministic fault injection: spec parsing, ledger, firing rules."""

import os

import pytest

from repro.runtime.errors import (
    ConfigurationError,
    PermanentError,
    TransientError,
)
from repro.runtime.faults import (
    ENV_LEDGER,
    ENV_SPEC,
    Fault,
    FaultInjector,
    digest_fraction,
    ensure_ledger,
    faults_requested,
    parse_faults,
)


class TestParseFaults:
    def test_simple_entries(self):
        faults = parse_faults("crash:0.1,hang:1")
        assert faults == (
            Fault(kind="crash", rate=0.1),
            Fault(kind="hang", rate=1.0),
        )
        assert not faults[0].is_count
        assert faults[1].is_count and faults[1].count == 1

    def test_target_and_param(self):
        (fault,) = parse_faults("hang@DMG-chunk0003:1:0.5")
        assert fault.target == "DMG-chunk0003"
        assert fault.param == 0.5

    def test_empty_entries_skipped(self):
        assert parse_faults(" , crash:1 ,") == (Fault(kind="crash", rate=1.0),)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="explode"):
            parse_faults("explode:1")

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="not a number"):
            parse_faults("crash:lots")

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="> 0"):
            parse_faults("crash:0")

    def test_missing_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="crash"):
            parse_faults("crash")


class TestDigestFraction:
    def test_uniform_range_and_determinism(self):
        values = [digest_fraction(0, "task", i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [digest_fraction(0, "task", i) for i in range(200)]

    def test_seed_changes_draw(self):
        assert digest_fraction(0, "x") != digest_fraction(1, "x")


class TestFaultInjector:
    def test_count_fault_fires_exactly_n_times(self, tmp_path):
        injector = FaultInjector(parse_faults("transient:2"), tmp_path)
        fired = 0
        for i in range(50):
            try:
                injector.perturb(f"task-{i:02d}")
            except TransientError:
                fired += 1
        assert fired == 2

    def test_fault_fires_once_per_task(self, tmp_path):
        injector = FaultInjector(parse_faults("transient:1"), tmp_path)
        with pytest.raises(TransientError):
            injector.perturb("task-0")
        # The retry of the same task must succeed — the supervisor's
        # convergence contract.
        injector.perturb("task-0")

    def test_probability_fault_is_deterministic(self, tmp_path):
        keys = [f"task-{i:03d}" for i in range(100)]

        def fired_set(ledger):
            injector = FaultInjector(
                parse_faults("permanent:0.2"), ledger, seed=7
            )
            fired = set()
            for key in keys:
                try:
                    injector.perturb(key)
                except PermanentError:
                    fired.add(key)
            return fired

        first = fired_set(tmp_path / "a")
        assert first == fired_set(tmp_path / "b")
        assert 0 < len(first) < len(keys)

    def test_target_filters_tasks(self, tmp_path):
        injector = FaultInjector(parse_faults("permanent@DMI:5"), tmp_path)
        injector.perturb("DMG-chunk0000")  # no match, no fire
        with pytest.raises(PermanentError):
            injector.perturb("DMI-chunk0000")

    def test_corrupt_file_truncates_once(self, tmp_path):
        victim = tmp_path / "entry.npz"
        victim.write_bytes(b"x" * 1000)
        injector = FaultInjector(parse_faults("corrupt:1"), tmp_path / "ledger")
        assert injector.corrupt_file(victim, "entry") is True
        assert victim.stat().st_size == 500
        # Rewrite and try again: the per-key marker protects the repair.
        victim.write_bytes(b"x" * 1000)
        assert injector.corrupt_file(victim, "entry") is False
        assert victim.stat().st_size == 1000

    def test_task_faults_skip_corrupt_kind(self, tmp_path):
        injector = FaultInjector(parse_faults("corrupt:5"), tmp_path)
        injector.perturb("task-0")  # corrupt never fires in perturb


class TestEnvironment:
    def test_from_environment_requires_both_variables(self, monkeypatch):
        monkeypatch.delenv(ENV_SPEC, raising=False)
        monkeypatch.delenv(ENV_LEDGER, raising=False)
        assert FaultInjector.from_environment() is None
        monkeypatch.setenv(ENV_SPEC, "crash:1")
        assert FaultInjector.from_environment() is None
        monkeypatch.setenv(ENV_LEDGER, "/tmp/ledger")
        injector = FaultInjector.from_environment()
        assert injector is not None
        assert injector.faults == parse_faults("crash:1")

    def test_ensure_ledger_creates_and_exports(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_SPEC, "crash:1")
        monkeypatch.delenv(ENV_LEDGER, raising=False)
        ledger = ensure_ledger()
        assert ledger is not None
        assert os.environ[ENV_LEDGER] == ledger
        assert os.path.isdir(ledger)

    def test_ensure_ledger_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_SPEC, raising=False)
        assert not faults_requested()
        assert ensure_ledger() is None
