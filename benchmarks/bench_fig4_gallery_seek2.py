"""F4 — Figure 4: genuine scores per probe device against the Cross
Match Seek II gallery.

Expected shape (paper): "match scores are the highest when measuring the
similarity between images acquired by the same sensor ... the lowest
match scores representing the similarity with the ink-based ten-print
scans as probes".
"""

import numpy as np

from repro.api import DEVICE_ORDER, render_figure4

GALLERY = "D3"  # Cross Match Seek II


def test_fig4_probe_ranking_vs_seek2(benchmark, study, record_artifact):
    def collect():
        return {
            probe: study.genuine_scores(GALLERY, probe).scores
            for probe in DEVICE_ORDER
        }

    per_probe = benchmark(collect)
    text = render_figure4(per_probe, gallery_device=GALLERY)
    record_artifact(text)
    print("\n" + text)

    means = {probe: float(np.mean(scores)) for probe, scores in per_probe.items()}
    # Same-device probes score highest; ten-print probes lowest.
    assert max(means, key=means.get) == GALLERY
    assert min(means, key=means.get) == "D4"
