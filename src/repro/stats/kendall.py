"""Kendall rank correlation (tau-b) with significance testing.

The paper's Table 4 reports p-values from "Kendall's rank correlation
statistical test" comparing genuine score lists between same-device and
cross-device scenarios.  This module implements tau-b (the tie-corrected
variant appropriate for matcher scores, which are heavily tied at the
integer level) from scratch:

* an O(n log n) merge-sort inversion count for the concordance statistic,
* the tie-corrected normal approximation for the p-value, following
  Kendall (1970) — the same approximation scipy uses for large n.

scipy is *not* imported here; the test suite cross-validates against
``scipy.stats.kendalltau`` where scipy is available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class KendallResult:
    """Outcome of a Kendall tau-b test.

    Attributes
    ----------
    tau:
        Tie-corrected correlation in [-1, 1]; ``nan`` when either input
        is constant (correlation undefined).
    p_value:
        Two-sided p-value under the null hypothesis of independence,
        from the tie-corrected normal approximation.
    n:
        Number of paired observations.
    concordant_minus_discordant:
        The raw S statistic (concordant pairs minus discordant pairs).
    """

    tau: float
    p_value: float
    n: int
    concordant_minus_discordant: float


def _merge_sort_inversions(values: np.ndarray) -> int:
    """Count inversions in ``values`` via iterative bottom-up merge sort."""
    arr = values.copy()
    n = arr.size
    buffer = np.empty_like(arr)
    inversions = 0
    width = 1
    while width < n:
        for start in range(0, n, 2 * width):
            mid = min(start + width, n)
            end = min(start + 2 * width, n)
            i, j, k = start, mid, start
            while i < mid and j < end:
                if arr[i] <= arr[j]:
                    buffer[k] = arr[i]
                    i += 1
                else:
                    buffer[k] = arr[j]
                    inversions += mid - i
                    j += 1
                k += 1
            while i < mid:
                buffer[k] = arr[i]
                i += 1
                k += 1
            while j < end:
                buffer[k] = arr[j]
                j += 1
                k += 1
        arr, buffer = buffer, arr
        width *= 2
    return inversions


def _tie_statistics(sorted_values: np.ndarray) -> tuple:
    """Return (sum t*(t-1)/2, sum t*(t-1)*(t-2), sum t*(t-1)*(2t+5)).

    ``t`` ranges over the sizes of tie groups in ``sorted_values``.
    These are the three tie-correction terms in Kendall's variance
    formula.
    """
    if sorted_values.size == 0:
        return 0.0, 0.0, 0.0
    __, counts = np.unique(sorted_values, return_counts=True)
    t = counts.astype(np.float64)
    pairs = float(np.sum(t * (t - 1.0)) / 2.0)
    triple = float(np.sum(t * (t - 1.0) * (t - 2.0)))
    var_term = float(np.sum(t * (t - 1.0) * (2.0 * t + 5.0)))
    return pairs, triple, var_term


def kendall_tau(x: Sequence[float], y: Sequence[float]) -> KendallResult:
    """Kendall tau-b correlation between paired samples ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        Equal-length 1-D sequences.  Ties in either variable are handled
        with the tau-b correction.

    Raises
    ------
    ValueError
        If the inputs differ in length or have fewer than 2 elements.
    """
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.ndim != 1 or ya.ndim != 1:
        raise ValueError("kendall_tau expects 1-D sequences")
    if xa.size != ya.size:
        raise ValueError(f"length mismatch: {xa.size} vs {ya.size}")
    n = int(xa.size)
    if n < 2:
        raise ValueError("kendall_tau needs at least 2 observations")
    if np.any(~np.isfinite(xa)) or np.any(~np.isfinite(ya)):
        raise ValueError("kendall_tau inputs must be finite")

    # Sort by x, breaking ties by y: discordances then equal inversions in y.
    order = np.lexsort((ya, xa))
    xs = xa[order]
    ys = ya[order]

    # Joint ties (pairs tied in both x and y).
    joint = np.empty(n, dtype=np.complex128)
    joint.real = xs
    joint.imag = ys
    # np.unique on complex works lexicographically on (real, imag).
    __, joint_counts = np.unique(joint, return_counts=True)
    jt = joint_counts.astype(np.float64)
    ties_xy = float(np.sum(jt * (jt - 1.0)) / 2.0)

    ties_x, tx3, vx = _tie_statistics(xs)
    ties_y, ty3, vy = _tie_statistics(np.sort(ya))

    total_pairs = n * (n - 1) / 2.0
    discordant = float(_merge_sort_inversions(ys))
    # Inversions within x-tie groups are not discordant; they are ties in x.
    # Since we sorted ties in x by ascending y, within-group y values are
    # non-decreasing, contributing zero inversions — no correction needed.
    concordant = total_pairs - discordant - ties_x - ties_y + ties_xy
    s = concordant - discordant

    denom = math.sqrt((total_pairs - ties_x) * (total_pairs - ties_y))
    if denom == 0.0:
        return KendallResult(tau=float("nan"), p_value=1.0, n=n,
                             concordant_minus_discordant=s)
    tau = s / denom
    # Clamp floating error; tau-b is bounded by construction.
    tau = max(-1.0, min(1.0, tau))

    p_value = _p_value_normal(n, s, vx, vy, tx3, ty3, ties_x, ties_y)
    return KendallResult(tau=tau, p_value=p_value, n=n,
                         concordant_minus_discordant=s)


def _p_value_normal(
    n: int,
    s: float,
    vx: float,
    vy: float,
    tx3: float,
    ty3: float,
    ties_x_pairs: float,
    ties_y_pairs: float,
) -> float:
    """Two-sided p-value via the tie-corrected normal approximation.

    Var(S) = [n(n-1)(2n+5) - sum t(t-1)(2t+5) - sum u(u-1)(2u+5)] / 18
             + tie cross terms (Kendall 1970, eq. 4.5).
    """
    nf = float(n)
    var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - vx - vy) / 18.0
    if n > 2:
        var_s += (tx3 * ty3) / (9.0 * nf * (nf - 1.0) * (nf - 2.0))
    var_s += (2.0 * ties_x_pairs * ties_y_pairs) / (nf * (nf - 1.0))
    if var_s <= 0.0:
        return 1.0
    z = s / math.sqrt(var_s)
    return erfc_two_sided(z)


def erfc_two_sided(z: float) -> float:
    """Two-sided normal tail probability P(|Z| >= |z|) for Z ~ N(0,1).

    Uses ``math.erfc``, which keeps precision for the extreme tails the
    paper reports (p-values down to ~1e-242).
    """
    return math.erfc(abs(z) / math.sqrt(2.0))


__all__ = ["KendallResult", "kendall_tau", "erfc_two_sided"]
