"""DET tradeoff — the operating-point view behind Tables 5/6.

Renders the detection-error-tradeoff series for the same-device and
cross-device scenarios side by side: at every fixed FMR, the
cross-device FNMR sits above the same-device FNMR — the whole study in
one curve pair.
"""

import numpy as np

from repro.api import det_points, render_det

FMR_TARGETS = (1e-1, 3e-2, 1e-2, 3e-3, 1e-3)


def test_det_same_vs_cross_device(benchmark, study, record_artifact):
    sets = study.score_sets()

    def compute():
        same = det_points(
            sets["DMG"].scores, sets["DMI"].scores, FMR_TARGETS
        )
        cross = det_points(
            sets["DDMG"].scores, sets["DDMI"].scores, FMR_TARGETS
        )
        return same, cross

    (same_fmr, same_fnmr), (cross_fmr, cross_fnmr) = benchmark(compute)

    text = (
        render_det(same_fmr, same_fnmr, title="DET, same-device (DMG vs DMI)")
        + "\n\n"
        + render_det(cross_fmr, cross_fnmr, title="DET, cross-device (DDMG vs DDMI)")
    )
    record_artifact(text)
    print("\n" + text)

    # At every operating point the cross-device scenario is no better.
    for same_value, cross_value in zip(same_fnmr, cross_fnmr):
        assert cross_value >= same_value - 1e-9
    # And strictly worse somewhere.
    assert np.any(cross_fnmr > same_fnmr)
