"""Verification engines — the paper's §V architecture question, answered.

The paper's further-work list asks: "what advice can we prescribe for an
overall architecture of fingerprint recognition that employs diverse
sensors, and/or improves interoperability?"  This module implements two
architectures the rest of the library makes possible:

* :class:`Verifier` — the baseline system the paper measured: fixed
  threshold on the raw matcher score, blind to devices.  Its error rates
  degrade off the diagonal exactly as Table 5 shows.
* :class:`InteropAwareVerifier` — the mitigated architecture: knows (or
  infers, via Poh et al.'s p(d|q)) the probe's capture device, applies
  Ross & Nadgir TPS compensation for the (probe, gallery) device pair,
  and z-normalizes the score against that pair's impostor distribution
  so one global threshold is meaningful across pairs.

Both engines share the enrollment database and produce fully-audited
decisions.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..calibration.device_inference import DeviceInferenceModel
from ..calibration.score_norm import ZNormalizer
from ..calibration.tps import (
    ThinPlateSpline,
    apply_tps_to_template,
    control_points_from_matches,
    fit_tps,
)
from ..matcher.engine import BioEngineMatcher
from ..matcher.types import Template
from ..quality.features import QualityFeatures
from ..runtime.errors import CalibrationError, ConfigurationError
from ..runtime.telemetry import get_recorder
from ..sensors.registry import DEVICE_ORDER
from .database import TemplateDatabase
from .decision import AuditLog, VerificationDecision


class Verifier:
    """Baseline verification engine: raw score vs a fixed threshold."""

    def __init__(
        self,
        database: TemplateDatabase,
        threshold: float = 7.5,
        matcher: Optional[BioEngineMatcher] = None,
    ) -> None:
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.database = database
        self.threshold = threshold
        self.matcher = matcher if matcher is not None else BioEngineMatcher()
        self.audit = AuditLog()

    def _record_decision(self, decision: VerificationDecision) -> None:
        """Append to the audit log and keep the verification counters."""
        self.audit.append(decision)
        recorder = get_recorder()
        if recorder.active:
            recorder.count("verify.attempts")
            recorder.count(
                "verify.accepted" if decision.accepted else "verify.rejected"
            )
            if getattr(decision, "probe_device_inferred", False):
                recorder.count("verify.device_inferred")
            if getattr(decision, "calibration_applied", False):
                recorder.count("verify.calibrated")

    def verify(
        self,
        identity: str,
        probe: Template,
        probe_device: str = "",
        probe_features: Optional[QualityFeatures] = None,
    ) -> VerificationDecision:
        """One verification attempt against the claimed identity."""
        record = self.database.get(identity)
        score = self.matcher.match(probe, record.template)
        decision = VerificationDecision(
            identity=identity,
            accepted=score >= self.threshold,
            raw_score=score,
            normalized_score=score,
            threshold=self.threshold,
            gallery_device=record.device_id,
            probe_device=probe_device,
        )
        self._record_decision(decision)
        return decision

    def verify_multi_sample(
        self,
        identity: str,
        probes: Sequence[Template],
        probe_device: str = "",
    ) -> VerificationDecision:
        """Verify with several probe samples of the claimed identity.

        Implements the paper's §V suggestion of "using more than one
        fingerprint image from a given participant to improve the FMR
        and FNMR rates": each probe is scored independently against the
        enrolled template and the *mean* normalized score decides (the
        sum rule).  Only the fused decision enters the audit log.
        """
        if not probes:
            raise ConfigurationError("verify_multi_sample needs >= 1 probe")
        record = self.database.get(identity)
        normalized = []
        raw = []
        for probe in probes:
            score = self.matcher.match(probe, record.template)
            raw.append(score)
            normalized.append(
                self._normalize_score(record.device_id, probe_device, score)
            )
        fused = float(np.mean(normalized))
        decision = VerificationDecision(
            identity=identity,
            accepted=fused >= self.threshold,
            raw_score=float(np.mean(raw)),
            normalized_score=fused,
            threshold=self.threshold,
            gallery_device=record.device_id,
            probe_device=probe_device,
        )
        self._record_decision(decision)
        return decision

    def _normalize_score(
        self, gallery_device: str, probe_device: str, score: float
    ) -> float:
        """Hook for subclasses; the baseline uses the raw score."""
        return score


class InteropAwareVerifier(Verifier):
    """Device-aware verification with inference, calibration and z-norm.

    Train with :meth:`fit` before verifying; the training data is a
    labeled development set (typically a study's collection), exactly
    the situation of a deployment that characterizes its fleet of
    sensors before going live.
    """

    def __init__(
        self,
        database: TemplateDatabase,
        threshold: float = 3.0,  # in z-norm units: sigmas above impostors
        matcher: Optional[BioEngineMatcher] = None,
    ) -> None:
        super().__init__(database, threshold=threshold, matcher=matcher)
        self._device_model: Optional[DeviceInferenceModel] = None
        self._znorm = ZNormalizer()
        self._splines: Dict[Tuple[str, str], ThinPlateSpline] = {}
        self._fitted_pairs: set = set()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit_device_inference(
        self,
        features_by_device: Dict[str, Sequence[QualityFeatures]],
        rng: np.random.Generator,
        n_components: int = 2,
    ) -> None:
        """Fit p(d|q) so unlabeled probes can be attributed to a device."""
        self._device_model = DeviceInferenceModel(n_components=n_components).fit(
            features_by_device, rng
        )

    def fit_score_normalization(
        self,
        impostor_scores_by_pair: Dict[Tuple[str, str], np.ndarray],
    ) -> None:
        """Fit per-(gallery, probe)-pair impostor z-normalization."""
        for (gallery_device, probe_device), scores in impostor_scores_by_pair.items():
            self._znorm.fit_cell(gallery_device, probe_device, scores)
            self._fitted_pairs.add((gallery_device, probe_device))

    def fit_calibration(
        self,
        pair: Tuple[str, str],
        probe_templates: Sequence[Template],
        gallery_templates: Sequence[Template],
        max_pairs: int = 300,
    ) -> bool:
        """Learn the TPS compensation for (gallery_device, probe_device).

        Returns whether a spline was fit (False when the training
        matches yield too few control points).
        """
        try:
            src, dst = control_points_from_matches(
                self.matcher, probe_templates, gallery_templates, max_pairs
            )
            self._splines[pair] = fit_tps(src, dst, regularization=0.5)
            return True
        except CalibrationError:
            return False

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(
        self,
        identity: str,
        probe: Template,
        probe_device: str = "",
        probe_features: Optional[QualityFeatures] = None,
    ) -> VerificationDecision:
        """Device-aware verification: infer → calibrate → normalize → decide."""
        record = self.database.get(identity)
        gallery_device = record.device_id

        inferred = False
        if not probe_device and self._device_model is not None:
            if probe_features is None:
                raise ConfigurationError(
                    "device inference needs probe_features when probe_device "
                    "is not declared"
                )
            probe_device = self._device_model.predict(probe_features)
            inferred = True

        calibrated = False
        effective_probe = probe
        spline = self._splines.get((gallery_device, probe_device))
        if spline is not None and gallery_device != probe_device:
            effective_probe = apply_tps_to_template(probe, spline)
            calibrated = True

        raw = self.matcher.match(effective_probe, record.template)
        normalized = self._normalize_score(gallery_device, probe_device, raw)
        decision = VerificationDecision(
            identity=identity,
            accepted=normalized >= self.threshold,
            raw_score=raw,
            normalized_score=normalized,
            threshold=self.threshold,
            gallery_device=gallery_device,
            probe_device=probe_device,
            probe_device_inferred=inferred,
            calibration_applied=calibrated,
        )
        self._record_decision(decision)
        return decision


    def _normalize_score(
        self, gallery_device: str, probe_device: str, score: float
    ) -> float:
        if (gallery_device, probe_device) in self._fitted_pairs:
            return self._znorm.normalize(gallery_device, probe_device, score)
        # Unseen pair: fall back to a pooled-scale heuristic so the
        # system degrades gracefully rather than refusing service.
        return score / 2.0


def train_interop_verifier_from_study(
    study,
    database: TemplateDatabase,
    threshold: float = 3.0,
    calibrate_pairs: Sequence[Tuple[str, str]] = (),
    n_train_subjects: Optional[int] = None,
) -> InteropAwareVerifier:
    """Build and train an :class:`InteropAwareVerifier` from a study.

    Uses the study's collection for device-inference features, its
    impostor score sets for per-pair z-normalization, and genuine
    cross-device matches of the first ``n_train_subjects`` for TPS
    calibration of ``calibrate_pairs``.
    """
    verifier = InteropAwareVerifier(
        database, threshold=threshold, matcher=study.matcher()
    )
    collection = study.collection()
    n = study.config.n_subjects
    n_train = n_train_subjects if n_train_subjects is not None else max(6, n // 3)

    features_by_device = {
        device: [
            collection.get(sid, "right_index", device, 0).features
            for sid in range(n)
        ]
        for device in DEVICE_ORDER
    }
    verifier.fit_device_inference(
        features_by_device, np.random.default_rng(study.config.master_seed)
    )

    # Per-cell impostor statistics need a reasonable sample; thin cells
    # (small studies, rare pairs) fall back to the pooled distribution of
    # their scenario type so the z-scale never degenerates.
    min_cell_samples = 25
    pooled_same = study.score_sets()["DMI"].scores
    pooled_cross = study.score_sets()["DDMI"].scores
    impostor_by_pair: Dict[Tuple[str, str], np.ndarray] = {}
    for gallery_device in DEVICE_ORDER:
        for probe_device in DEVICE_ORDER:
            cell = study.impostor_scores(gallery_device, probe_device)
            if len(cell) >= min_cell_samples:
                impostor_by_pair[(gallery_device, probe_device)] = cell.scores
            else:
                pooled = (
                    pooled_same if gallery_device == probe_device else pooled_cross
                )
                impostor_by_pair[(gallery_device, probe_device)] = pooled
    verifier.fit_score_normalization(impostor_by_pair)

    for pair in calibrate_pairs:
        gallery_device, probe_device = pair
        probes = [
            collection.get(sid, "right_index", probe_device, 1).template
            for sid in range(n_train)
        ]
        galleries = [
            collection.get(sid, "right_index", gallery_device, 0).template
            for sid in range(n_train)
        ]
        verifier.fit_calibration(pair, probes, galleries)
    return verifier


__all__ = ["Verifier", "InteropAwareVerifier", "train_interop_verifier_from_study"]
