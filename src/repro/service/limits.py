"""Per-principal admission control: token buckets and windowed quotas.

Authentication says *who* is calling; this module says *how often they
may*.  Each (principal, endpoint class) pair owns a deterministic token
bucket — ``rate`` tokens/second refill up to a ``burst`` ceiling — and
each principal additionally carries an optional windowed quota (a hard
request count per rolling window, "10k requests/day" style).  A request
that finds its bucket empty or its quota spent is refused with
:class:`RateLimitExceeded`, which the server maps to HTTP 429
``rate_limited`` with a ``Retry-After`` header telling the caller
exactly when the next token lands.

Endpoint *classes* — ``read`` (verify/identify), ``write``
(enroll/delete), ``admin`` (stats/metrics/key-reload) — get separate
buckets so a verification flood cannot starve enrollment and vice
versa, mirroring the quality-gated-enrollment literature's assumption
that the enrollment channel is throttled separately from verification
traffic.  ``healthz`` is never limited: a liveness probe that can be
throttled is a liveness probe that lies.

Everything is deterministic under an injectable ``clock`` (tests drive
it by hand), and bucket storage is a bounded LRU: a flood of unknown or
rotating principals evicts the *least recently used* buckets instead of
exhausting memory.  Evicting a bucket forgives at most one burst — an
acceptable trade against an unbounded dict.

Role defaults come from :class:`LimitsConfig` (env-tunable via
``REPRO_SERVE_RATE_<CLASS>`` / ``REPRO_SERVE_BURST_<CLASS>`` /
``REPRO_SERVE_QUOTA`` / ``REPRO_SERVE_QUOTA_WINDOW_S``); the keyfile's
per-principal ``limits`` blocks override them (see
:mod:`repro.service.auth`).  A rate of 0 disables the bucket for that
class; a quota of 0 disables the quota.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..runtime.config import env_float, env_int
from ..runtime.errors import TransientError

#: Endpoint class per stats-bucket endpoint name; absent = unlimited.
ENDPOINT_CLASSES: Dict[str, str] = {
    "verify": "read",
    "identify": "read",
    "enroll": "write",
    "delete": "write",
    "stats": "admin",
    "metrics": "admin",
    "admin": "admin",
}

#: The classes a limiter tracks.
CLASSES = ("read", "write", "admin")

#: Default steady-state rates (requests/second) per endpoint class.
DEFAULT_RATES: Dict[str, float] = {"read": 50.0, "write": 10.0, "admin": 20.0}

#: Default burst ceilings (bucket capacity) per endpoint class.
DEFAULT_BURSTS: Dict[str, float] = {"read": 100.0, "write": 20.0, "admin": 40.0}

#: Default windowed quota: 0 disables it.
DEFAULT_QUOTA = 0

#: Default quota window: one day.
DEFAULT_QUOTA_WINDOW_S = 86400.0

#: Bucket-LRU bound: (principal, class) pairs kept live at once.
DEFAULT_MAX_BUCKETS = 4096


class RateLimitExceeded(TransientError):
    """The caller exhausted its bucket or quota (HTTP 429).

    ``retry_after`` is the seconds until the request *would* succeed —
    the next token for a bucket, the window roll for a quota — rounded
    up so a client sleeping exactly that long never busy-loops.
    """

    def __init__(
        self, message: str, retry_after: float, scope: str = "rate"
    ) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))
        #: ``"rate"`` (token bucket) or ``"quota"`` (windowed count).
        self.scope = scope


class TokenBucket:
    """The classic leaky counter: ``rate``/s refill, ``burst`` ceiling."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_acquire(self, now: float, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; 0.0 on success, else seconds to wait."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return (cost - self.tokens) / self.rate


class LimitsConfig:
    """Role-default rates/bursts plus the global quota knobs."""

    __slots__ = ("rates", "bursts", "quota", "quota_window_s", "max_buckets")

    def __init__(
        self,
        rates: Optional[Dict[str, float]] = None,
        bursts: Optional[Dict[str, float]] = None,
        quota: int = DEFAULT_QUOTA,
        quota_window_s: float = DEFAULT_QUOTA_WINDOW_S,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ) -> None:
        self.rates = {**DEFAULT_RATES, **(rates or {})}
        self.bursts = {**DEFAULT_BURSTS, **(bursts or {})}
        self.quota = int(quota)
        self.quota_window_s = float(quota_window_s)
        self.max_buckets = max(1, int(max_buckets))

    @classmethod
    def from_environment(cls, **overrides) -> "LimitsConfig":
        """Defaults, then ``REPRO_SERVE_*`` env, then explicit overrides."""
        rates = dict(overrides.pop("rates", {}) or {})
        bursts = dict(overrides.pop("bursts", {}) or {})
        for cls_name in CLASSES:
            rate = env_float(f"REPRO_SERVE_RATE_{cls_name.upper()}")
            if rate is not None and cls_name not in rates:
                rates[cls_name] = rate
            burst = env_float(f"REPRO_SERVE_BURST_{cls_name.upper()}")
            if burst is not None and cls_name not in bursts:
                bursts[cls_name] = burst
        if "quota" not in overrides:
            quota = env_int("REPRO_SERVE_QUOTA")
            if quota is not None:
                overrides["quota"] = quota
        if "quota_window_s" not in overrides:
            window = env_float("REPRO_SERVE_QUOTA_WINDOW_S")
            if window is not None:
                overrides["quota_window_s"] = window
        return cls(rates=rates, bursts=bursts, **overrides)


class RateLimiter:
    """Deterministic per-(principal, class) admission control.

    Lock-protected (requests land from the event loop, probes from
    anywhere); every decision is a pure function of the injected
    clock, so tests advance time by hand and assert exact refusals.
    """

    def __init__(
        self,
        config: Optional[LimitsConfig] = None,
        overrides: Optional[Dict[str, dict]] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else LimitsConfig()
        #: Per-principal keyfile overrides:
        #: ``{principal: {"read": {"rate": .., "burst": ..},
        #:                "quota": .., "quota_window_s": ..}}``.
        self._overrides = dict(overrides or {})
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[Tuple[str, str], TokenBucket]" = (
            OrderedDict()
        )
        self._quotas: Dict[str, Tuple[float, int]] = {}
        self.rate_limited_total = 0

    def set_overrides(self, overrides: Dict[str, dict]) -> None:
        """Swap the per-principal overrides (after a keyfile reload).

        Existing buckets keep their fill but adopt the new rate/burst
        on their next refill, so rotation never hands out a free burst.
        """
        with self._lock:
            self._overrides = dict(overrides or {})
            for (principal, endpoint_class), bucket in self._buckets.items():
                rate, burst = self._limits_for(principal, endpoint_class)
                bucket.rate = rate
                bucket.burst = burst
                bucket.tokens = min(bucket.tokens, burst)

    def _limits_for(
        self, principal: str, endpoint_class: str
    ) -> Tuple[float, float]:
        override = self._overrides.get(principal, {}).get(endpoint_class, {})
        rate = override.get("rate", self.config.rates[endpoint_class])
        burst = override.get("burst", self.config.bursts[endpoint_class])
        return float(rate), float(burst)

    def _quota_for(self, principal: str) -> Tuple[int, float]:
        override = self._overrides.get(principal, {})
        quota = override.get("quota", self.config.quota)
        window = override.get("quota_window_s", self.config.quota_window_s)
        return int(quota), float(window)

    def check(self, principal: str, endpoint: str) -> None:
        """Admit or refuse one request; raises :class:`RateLimitExceeded`.

        Unlimited endpoints (``healthz``, unknown paths) pass through
        untouched.  The quota is charged only after the bucket admits —
        a throttled burst must not also burn the day's budget.
        """
        endpoint_class = ENDPOINT_CLASSES.get(endpoint)
        if endpoint_class is None:
            return
        now = self._clock()
        with self._lock:
            rate, burst = self._limits_for(principal, endpoint_class)
            if rate > 0.0:
                key = (principal, endpoint_class)
                bucket = self._buckets.get(key)
                if bucket is None:
                    bucket = TokenBucket(rate, burst, now)
                    self._buckets[key] = bucket
                    while len(self._buckets) > self.config.max_buckets:
                        self._buckets.popitem(last=False)
                else:
                    self._buckets.move_to_end(key)
                    bucket.rate, bucket.burst = rate, burst
                wait = bucket.try_acquire(now)
                if wait > 0.0:
                    self.rate_limited_total += 1
                    raise RateLimitExceeded(
                        f"rate limit exceeded for {principal!r} on "
                        f"{endpoint_class} endpoints "
                        f"({rate:g}/s, burst {burst:g})",
                        retry_after=wait,
                        scope="rate",
                    )
            quota, window = self._quota_for(principal)
            if quota > 0:
                window_start, used = self._quotas.get(principal, (now, 0))
                if now - window_start >= window:
                    window_start, used = now, 0
                if used >= quota:
                    self.rate_limited_total += 1
                    raise RateLimitExceeded(
                        f"quota exhausted for {principal!r} "
                        f"({quota} requests per {window:g}s window)",
                        retry_after=window - (now - window_start),
                        scope="quota",
                    )
                self._quotas[principal] = (window_start, used + 1)

    # ------------------------------------------------------------------
    # Introspection (stats / metrics / admin)
    # ------------------------------------------------------------------
    def bucket_occupancy(self) -> int:
        """Live (principal, class) buckets — the LRU's current size."""
        with self._lock:
            return len(self._buckets)

    def snapshot(self) -> dict:
        """The limiter block for ``/stats``."""
        with self._lock:
            quotas = {
                principal: {
                    "used": used,
                    "window_started": round(start, 3),
                }
                for principal, (start, used) in sorted(self._quotas.items())
            }
            return {
                "bucket_occupancy": len(self._buckets),
                "max_buckets": self.config.max_buckets,
                "rate_limited_total": self.rate_limited_total,
                "rates": dict(self.config.rates),
                "bursts": dict(self.config.bursts),
                "quota": self.config.quota,
                "quota_window_s": self.config.quota_window_s,
                "quotas": quotas,
            }


__all__ = [
    "CLASSES",
    "DEFAULT_BURSTS",
    "DEFAULT_MAX_BUCKETS",
    "DEFAULT_QUOTA",
    "DEFAULT_QUOTA_WINDOW_S",
    "DEFAULT_RATES",
    "ENDPOINT_CLASSES",
    "LimitsConfig",
    "RateLimiter",
    "RateLimitExceeded",
    "TokenBucket",
]
