"""Run manifests — the JSON artifact every instrumented run leaves behind.

A :class:`RunManifest` captures, in one file, everything needed to
answer "what did that run do and where did the time go": the config
fingerprint and seed (so the run is replayable), the library version
(plus ``git describe`` when available), the nested span timings, every
counter/gauge/histogram, and derived cache statistics.  Benchmarks and
``repro run --manifest-out`` both emit one; ``repro stats`` renders it
back into a human-readable summary.

The schema is validated dependency-free: :data:`MANIFEST_SCHEMA` is a
JSON-Schema-shaped dict and :func:`validate_manifest` interprets the
subset of it we use (types, required keys, recursion into properties),
so CI can reject a malformed manifest without installing ``jsonschema``.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from .telemetry import TelemetryRecorder

#: Version of the manifest file layout; bump on breaking changes.
MANIFEST_SCHEMA_VERSION = 1

#: JSON-Schema-shaped description of a manifest file.  ``spans`` is
#: recursive (children of the same shape); :func:`validate_manifest`
#: handles that recursion explicitly.
MANIFEST_SCHEMA: dict = {
    "type": "object",
    "required": [
        "schema_version", "version", "created_unix", "config",
        "spans", "counters", "gauges", "histograms", "cache",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "version": {"type": "string"},
        "vcs_version": {"type": ["string", "null"]},
        "created_unix": {"type": "number"},
        "config": {
            "type": "object",
            "required": ["fingerprint", "description", "seed"],
            "properties": {
                "fingerprint": {"type": "string"},
                "description": {"type": "string"},
                "seed": {"type": "integer"},
            },
        },
        "spans": {
            "type": "object",
            "required": ["name", "seconds", "children"],
            "properties": {
                "name": {"type": "string"},
                "seconds": {"type": "number"},
                "children": {"type": "array"},
            },
        },
        "counters": {"type": "object"},
        "gauges": {"type": "object"},
        "histograms": {"type": "object"},
        "cache": {"type": "object"},
        # Optional (schema_version 1 manifests predate the artifact store,
        # the fault-tolerance layer, and the online serving layer).
        "artifacts": {"type": "object"},
        "supervisor": {"type": "object"},
        "service": {"type": "object"},
        "trace": {"type": "object"},
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check_node(data, schema: dict, path: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](data) for t in allowed):
            errors.append(f"{path}: expected {'/'.join(allowed)}, "
                          f"got {type(data).__name__}")
            return
    if isinstance(data, dict):
        for key in schema.get("required", ()):
            if key not in data:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in data:
                _check_node(data[key], sub, f"{path}.{key}", errors)


def _check_span_tree(node, path: str, errors: List[str]) -> None:
    span_schema = MANIFEST_SCHEMA["properties"]["spans"]
    _check_node(node, span_schema, path, errors)
    if isinstance(node, dict):
        for k, child in enumerate(node.get("children") or []):
            _check_span_tree(child, f"{path}.children[{k}]", errors)


def validate_manifest(data: dict) -> None:
    """Raise ``ValueError`` (listing every problem) if ``data`` is not a
    well-formed manifest; return silently when it is."""
    errors: List[str] = []
    _check_node(data, MANIFEST_SCHEMA, "manifest", errors)
    if isinstance(data, dict) and isinstance(data.get("spans"), dict):
        for k, child in enumerate(data["spans"].get("children") or []):
            _check_span_tree(child, f"manifest.spans.children[{k}]", errors)
    if errors:
        raise ValueError("invalid run manifest:\n" + "\n".join(errors))


def vcs_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the source tree, if available.

    The probe must never take a run down with it: a missing ``git``
    binary, a sandbox that blocks subprocesses, or a hung ``git``
    (5-second timeout) all degrade to the literal string
    ``"unavailable"`` — recorded, not raised — while a working ``git``
    in a non-repository (exit code != 0) yields ``None``.
    """
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unavailable"
    if result.returncode != 0:
        return None
    described = result.stdout.strip()
    return described or None


def _store_stats(counters: Dict[str, int], prefix: str) -> dict:
    """Hit/miss rollup of one npz-directory store's counter namespace."""
    hits = counters.get(f"{prefix}.hit", 0)
    misses = counters.get(f"{prefix}.miss", 0)
    looked = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "corrupt": counters.get(f"{prefix}.corrupt", 0),
        "stores": counters.get(f"{prefix}.store", 0),
        "hit_rate": round(hits / looked, 4) if looked else None,
    }


def _cache_stats(counters: Dict[str, int]) -> dict:
    return _store_stats(counters, "cache")


def _supervisor_stats(snapshot: dict) -> dict:
    """Fault-tolerance rollup: what the supervised executor had to do.

    All zeros on a healthy run — the rollup exists so a chaos test (or
    an operator reading ``repro stats``) can assert recovery happened
    from the manifest alone.
    """
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    backoff = snapshot["histograms"].get("supervisor.backoff_seconds") or {}
    return {
        "retries": counters.get("supervisor.retries", 0),
        "requeued": counters.get("supervisor.requeued", 0),
        "timeouts": counters.get("supervisor.timeouts", 0),
        "pool_restarts": counters.get("supervisor.pool_restarts", 0),
        "skipped": counters.get("supervisor.skipped", 0),
        "jobs_skipped": counters.get("study.jobs.skipped", 0),
        "checkpoints_stored": counters.get("study.checkpoint.stored", 0),
        "checkpoints_resumed": counters.get("study.checkpoint.resumed", 0),
        "degraded": gauges.get("supervisor.degraded", 0.0) > 0.0,
        "backoff_seconds_total": round(backoff.get("sum", 0.0), 6),
    }


def _service_stats(snapshot: dict) -> dict:
    """Online-serving rollup: what the service layer did during the run.

    All zeros unless the process hosted a
    :class:`~repro.service.server.VerificationServer` (``repro serve``
    writes a manifest at shutdown); the CI smoke check asserts request
    and batch counts from this block alone.
    """
    counters = snapshot["counters"]
    batch = snapshot["histograms"].get("service.batch_size") or {}
    latency = snapshot["histograms"].get("service.latency_seconds") or {}
    batches = counters.get("service.batches", 0)
    jobs = counters.get("service.batched_jobs", 0)
    mean_latency_ms = None
    if latency.get("count"):
        mean_latency_ms = round(1000.0 * latency["sum"] / latency["count"], 3)
    return {
        "requests": counters.get("service.requests", 0),
        "enroll": counters.get("service.requests.enroll", 0),
        "verify": counters.get("service.requests.verify", 0),
        "identify": counters.get("service.requests.identify", 0),
        "accepted": counters.get("service.accepted", 0),
        "rejected": counters.get("service.rejected", 0),
        "enroll_rejected": counters.get("service.enroll.rejected", 0),
        "overloads": counters.get("service.overload", 0),
        "deadline_exceeded": counters.get("service.deadline_exceeded", 0),
        "batches": batches,
        "batched_jobs": jobs,
        "mean_batch_size": round(jobs / batches, 3) if batches else None,
        "max_batch_size": int(batch.get("max", 0) or 0),
        "mean_latency_ms": mean_latency_ms,
        "auth": {
            "ok": counters.get("service.auth.ok", 0),
            "unauthorized": counters.get("service.auth.unauthorized", 0),
            "forbidden": counters.get("service.auth.forbidden", 0),
            "rate_limited": counters.get("service.rate_limited", 0),
        },
        "replication_rebootstraps": counters.get(
            "replication.rebootstraps", 0
        ),
        "index": _index_stats(snapshot),
        "workers": _worker_stats(snapshot),
        "wal": _wal_stats(snapshot),
    }


def _wal_stats(snapshot: dict) -> dict:
    """Durability rollup: write-ahead log activity during the run.

    All zeros unless the process hosted a WAL-backed
    :class:`~repro.service.gallery.GalleryIndex`; the CI durability
    smoke asserts replay/torn-tail handling from this block alone.
    """
    counters = snapshot["counters"]
    return {
        "appends": counters.get("wal.appends", 0),
        "bytes": counters.get("wal.bytes", 0),
        "rotations": counters.get("wal.rotations", 0),
        "checkpoints": counters.get("wal.checkpoints", 0),
        "segments_removed": counters.get("wal.segments_removed", 0),
        "replayed": counters.get("wal.replayed", 0),
        "torn_truncated": counters.get("wal.torn_truncated", 0),
        "reapplied": counters.get("gallery.wal_reapplied", 0),
        "corrupt_dropped": counters.get("gallery.corrupt_dropped", 0),
    }


def _worker_stats(snapshot: dict) -> dict:
    """Sharded-serving rollup: what the worker pool did during the run.

    All zeros when serving ran in-process (``REPRO_SERVE_WORKERS`` <= 1
    or no server at all); a chaos smoke can assert respawns — and that
    the pool never degraded — from the manifest alone.
    """
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    return {
        "configured": int(gauges.get("service.worker.configured", 0.0)),
        "alive": int(gauges.get("service.worker.alive", 0.0)),
        "degraded": gauges.get("service.worker.degraded", 0.0) > 0.0,
        "dispatches": counters.get("service.worker.dispatches", 0),
        "dispatched_jobs": counters.get("service.worker.dispatched_jobs", 0),
        "respawns": counters.get("service.worker.respawns", 0),
    }


def _index_stats(snapshot: dict) -> dict:
    """Two-stage ``/identify`` rollup: prefilter index activity.

    ``searches`` tallies ``/identify`` calls per recall mode,
    ``candidates_scored`` the exact comparisons those searches spent,
    and ``prefilter_seconds_total`` the wall time spent inside the
    descriptor top-K scan (two-stage searches only) — enough for the
    smoke check to assert that the index actually prefiltered.
    """
    counters = snapshot["counters"]
    prefilter = snapshot["histograms"].get("index.prefilter_seconds") or {}
    prefix = "index.recall_mode."
    searches = {
        name[len(prefix):]: count
        for name, count in sorted(counters.items())
        if name.startswith(prefix)
    }
    return {
        "searches": searches,
        "candidates_scored": counters.get("index.candidates", 0),
        "prefilter_searches": prefilter.get("count", 0),
        "prefilter_seconds_total": round(prefilter.get("sum", 0.0), 6),
    }


def _phase_mean_ms(histograms: dict, name: str) -> Optional[float]:
    hist = histograms.get(name) or {}
    if not hist.get("count"):
        return None
    return round(1000.0 * hist["sum"] / hist["count"], 3)


def _trace_stats(snapshot: dict) -> dict:
    """Request-tracing rollup: how traced serving time decomposed.

    Empty-ish (zero traces, ``None`` phase means) unless the process
    served traced requests with telemetry enabled; the phase means come
    from the ``service.phase.*_seconds`` histograms the micro-batcher
    feeds per pair job.
    """
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    return {
        "requests_traced": counters.get("service.traces", 0),
        "slow_requests": counters.get("service.slow_requests", 0),
        "mean_queue_wait_ms": _phase_mean_ms(
            histograms, "service.phase.queue_wait_seconds"
        ),
        "mean_batch_wait_ms": _phase_mean_ms(
            histograms, "service.phase.batch_wait_seconds"
        ),
        "mean_match_ms": _phase_mean_ms(
            histograms, "service.phase.match_seconds"
        ),
    }


@dataclass
class RunManifest:
    """The end-of-run summary artifact.

    Build one with :meth:`from_recorder` after an instrumented run,
    persist it with :meth:`write`, read it back with :meth:`load`.
    """

    version: str
    config: dict
    spans: dict
    counters: Dict[str, int]
    gauges: Dict[str, float]
    histograms: dict
    cache: dict = field(default_factory=dict)
    artifacts: dict = field(default_factory=dict)
    supervisor: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)
    trace: dict = field(default_factory=dict)
    vcs_version: Optional[str] = None
    created_unix: float = 0.0
    schema_version: int = MANIFEST_SCHEMA_VERSION

    @classmethod
    def from_recorder(cls, recorder: TelemetryRecorder, config) -> "RunManifest":
        """Assemble a manifest from a live recorder and a StudyConfig."""
        from .. import __version__

        snapshot = recorder.metrics.snapshot()
        return cls(
            version=__version__,
            vcs_version=vcs_describe(),
            created_unix=time.time(),
            config={
                "fingerprint": config.fingerprint(),
                "description": config.describe(),
                "seed": config.master_seed,
                "n_subjects": config.n_subjects,
                "matcher": config.matcher_name,
                "n_workers": config.n_workers,
            },
            spans=recorder.span_tree(),
            counters=snapshot["counters"],
            gauges=snapshot["gauges"],
            histograms=snapshot["histograms"],
            cache=_cache_stats(snapshot["counters"]),
            artifacts=_store_stats(snapshot["counters"], "artifacts"),
            supervisor=_supervisor_stats(snapshot),
            service=_service_stats(snapshot),
            trace=_trace_stats(snapshot),
        )

    def to_dict(self) -> dict:
        """Plain-dict (JSON-able) form, schema-ordered."""
        return dataclasses.asdict(self)

    def write(self, path) -> Path:
        """Write the manifest as indented JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True,
                                     default=str) + "\n")
        return target

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Validate ``data`` and build a manifest from it."""
        validate_manifest(data)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, path) -> "RunManifest":
        """Read and validate a manifest file."""
        try:
            data = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        return cls.from_dict(data)


def _render_span(node: dict, depth: int, lines: List[str]) -> None:
    lines.append(f"  {'  ' * depth}{node['name']:<{32 - 2 * depth}} "
                 f"{node['seconds']:>10.3f}s")
    for child in node.get("children", []):
        _render_span(child, depth + 1, lines)


def render_manifest(manifest: RunManifest) -> str:
    """Human-readable summary of a manifest (the ``repro stats`` view)."""
    lines: List[str] = []
    vcs = f" ({manifest.vcs_version})" if manifest.vcs_version else ""
    lines.append(f"run manifest — repro {manifest.version}{vcs}")
    lines.append(f"  config: {manifest.config.get('description', '?')}")
    lines.append(f"  fingerprint: {manifest.config.get('fingerprint', '?')}"
                 f"  seed: {manifest.config.get('seed', '?')}")
    lines.append("")
    lines.append("spans (wall clock)")
    _render_span(manifest.spans, 0, lines)
    if manifest.counters:
        lines.append("")
        lines.append("counters")
        for name in sorted(manifest.counters):
            lines.append(f"  {name:<40} {manifest.counters[name]:>12,}")
    if manifest.gauges:
        lines.append("")
        lines.append("gauges")
        for name in sorted(manifest.gauges):
            lines.append(f"  {name:<40} {manifest.gauges[name]:>12g}")
    if manifest.histograms:
        lines.append("")
        lines.append("histograms")
        lines.append(f"  {'name':<34} {'count':>9} {'mean':>10} "
                     f"{'min':>10} {'max':>10}")
        for name in sorted(manifest.histograms):
            h = manifest.histograms[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(
                f"  {name:<34} {h['count']:>9,} {mean:>9.4f}s "
                f"{h['min']:>9.4f}s {h['max']:>9.4f}s"
            )
    lines.append("")
    hit_rate = manifest.cache.get("hit_rate")
    rate_text = "n/a" if hit_rate is None else f"{100.0 * hit_rate:.1f}%"
    lines.append(
        f"cache: {manifest.cache.get('hits', 0)} hits, "
        f"{manifest.cache.get('misses', 0)} misses, "
        f"{manifest.cache.get('corrupt', 0)} corrupt, "
        f"{manifest.cache.get('stores', 0)} stores (hit rate {rate_text})"
    )
    if manifest.artifacts:
        art_rate = manifest.artifacts.get("hit_rate")
        art_text = "n/a" if art_rate is None else f"{100.0 * art_rate:.1f}%"
        lines.append(
            f"artifacts: {manifest.artifacts.get('hits', 0)} hits, "
            f"{manifest.artifacts.get('misses', 0)} misses, "
            f"{manifest.artifacts.get('corrupt', 0)} corrupt, "
            f"{manifest.artifacts.get('stores', 0)} stores "
            f"(hit rate {art_text})"
        )
    if manifest.supervisor:
        sup = manifest.supervisor
        degraded = " [degraded to serial]" if sup.get("degraded") else ""
        lines.append(
            f"supervisor: {sup.get('retries', 0)} retries, "
            f"{sup.get('requeued', 0)} requeued, "
            f"{sup.get('timeouts', 0)} timeouts, "
            f"{sup.get('pool_restarts', 0)} pool restarts, "
            f"{sup.get('skipped', 0)} batches skipped{degraded}"
        )
        if sup.get("checkpoints_stored") or sup.get("checkpoints_resumed"):
            lines.append(
                f"checkpoints: {sup.get('checkpoints_stored', 0)} stored, "
                f"{sup.get('checkpoints_resumed', 0)} resumed"
            )
    if manifest.service and manifest.service.get("requests"):
        svc = manifest.service
        mean_size = svc.get("mean_batch_size")
        size_text = "n/a" if mean_size is None else f"{mean_size:g}"
        latency = svc.get("mean_latency_ms")
        latency_text = "n/a" if latency is None else f"{latency:g} ms"
        lines.append(
            f"service: {svc.get('requests', 0)} requests "
            f"({svc.get('enroll', 0)} enroll, {svc.get('verify', 0)} verify, "
            f"{svc.get('identify', 0)} identify), "
            f"{svc.get('accepted', 0)} accepted / "
            f"{svc.get('rejected', 0)} rejected, "
            f"{svc.get('enroll_rejected', 0)} quality-rejected"
        )
        lines.append(
            f"  batching: {svc.get('batches', 0)} batches, "
            f"{svc.get('batched_jobs', 0)} jobs "
            f"(mean size {size_text}, max {svc.get('max_batch_size', 0)}), "
            f"{svc.get('overloads', 0)} overloads, "
            f"{svc.get('deadline_exceeded', 0)} deadline-exceeded, "
            f"mean latency {latency_text}"
        )
        workers = svc.get("workers") or {}
        if workers.get("configured"):
            degraded = " [degraded to in-process]" if workers.get("degraded") else ""
            lines.append(
                f"  workers: {workers.get('alive', 0)}/"
                f"{workers.get('configured', 0)} alive, "
                f"{workers.get('dispatches', 0)} dispatches "
                f"({workers.get('dispatched_jobs', 0)} jobs), "
                f"{workers.get('respawns', 0)} respawns{degraded}"
            )
        index = svc.get("index") or {}
        if index.get("searches"):
            modes = ", ".join(
                f"{count} {mode}"
                for mode, count in sorted(index["searches"].items())
            )
            lines.append(
                f"  index: {modes} searches, "
                f"{index.get('candidates_scored', 0)} candidates scored, "
                f"prefilter {index.get('prefilter_seconds_total', 0.0):g}s total"
            )
        wal = svc.get("wal") or {}
        if wal.get("appends") or wal.get("replayed"):
            healed = ""
            if wal.get("torn_truncated") or wal.get("corrupt_dropped"):
                healed = (
                    f" [{wal.get('torn_truncated', 0)} torn tails truncated, "
                    f"{wal.get('corrupt_dropped', 0)} corrupt records dropped]"
                )
            lines.append(
                f"  wal: {wal.get('appends', 0)} appends "
                f"({wal.get('bytes', 0)} bytes), "
                f"{wal.get('rotations', 0)} rotations, "
                f"{wal.get('checkpoints', 0)} checkpoints, "
                f"{wal.get('replayed', 0)} replayed "
                f"({wal.get('reapplied', 0)} reapplied){healed}"
            )
        trace = manifest.trace or {}
        if trace.get("requests_traced"):
            def _ms(key: str) -> str:
                value = trace.get(key)
                return "n/a" if value is None else f"{value:g} ms"

            lines.append(
                f"  tracing: {trace.get('requests_traced', 0)} traced, "
                f"{trace.get('slow_requests', 0)} slow; mean phases "
                f"queue_wait {_ms('mean_queue_wait_ms')}, "
                f"batch_wait {_ms('mean_batch_wait_ms')}, "
                f"match {_ms('mean_match_ms')}"
            )
    return "\n".join(lines)


__all__ = [
    "RunManifest",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_VERSION",
    "validate_manifest",
    "render_manifest",
    "vcs_describe",
]
