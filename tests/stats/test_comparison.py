"""Wilson intervals, McNemar test, DET rendering."""

import numpy as np
import pytest

from repro.stats.comparison import (
    McNemarResult,
    mcnemar_test,
    render_det,
    wilson_interval,
)

scipy_stats = pytest.importorskip("scipy.stats")


class TestWilson:
    def test_contains_true_proportion(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_zero_successes_lower_bound_zero(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert 0.0 < high < 0.15

    def test_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low > 0.85

    def test_zero_trials(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrower_with_more_trials(self):
        small = wilson_interval(5, 50)
        large = wilson_interval(500, 5000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_against_known_value(self):
        # Canonical example: 10/100 at 95% gives (0.0552, 0.1744).
        low, high = wilson_interval(10, 100)
        assert low == pytest.approx(0.0552, abs=1e-3)
        assert high == pytest.approx(0.1744, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 2)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=2.0)


class TestMcNemar:
    def test_identical_systems(self):
        correct = [True, False, True, True]
        result = mcnemar_test(correct, correct)
        assert result.b == result.c == 0
        assert result.p_value == 1.0

    def test_b_and_c_counted(self):
        a = [True, True, False, False, True]
        b = [True, False, True, True, True]
        result = mcnemar_test(a, b)
        assert result.b == 1  # A right, B wrong
        assert result.c == 2  # B right, A wrong
        assert result.favors_b

    def test_strong_asymmetry_significant(self):
        a = [False] * 40 + [True] * 60
        b = [True] * 40 + [True] * 60
        result = mcnemar_test(a, b)
        assert result.c == 40 and result.b == 0
        assert result.p_value < 1e-8

    def test_matches_scipy_contingency(self):
        rng = np.random.default_rng(0)
        a = rng.random(300) < 0.8
        b = rng.random(300) < 0.8
        ours = mcnemar_test(a, b)
        table = [
            [int(np.sum(a & b)), int(np.sum(a & ~b))],
            [int(np.sum(~a & b)), int(np.sum(~a & ~b))],
        ]
        try:
            from statsmodels.stats.contingency_tables import mcnemar  # noqa
            has_ref = True
        except ImportError:
            has_ref = False
        if not has_ref:
            # Cross-check the chi-square tail against scipy instead.
            ref_p = float(scipy_stats.chi2.sf(ours.statistic, df=1))
            assert ours.p_value == pytest.approx(ref_p, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            mcnemar_test([True], [True, False])
        with pytest.raises(ValueError):
            mcnemar_test([], [])


class TestRenderDet:
    def test_renders_rows(self):
        text = render_det([1e-2, 1e-3], [0.01, 0.05], title="my DET")
        assert "my DET" in text
        assert text.count("|") == 2

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            render_det([1e-2], [0.1, 0.2])
