"""Telemetry core: spans, metrics, merge semantics, recorder switching."""

import io
import json
import logging

import pytest

from repro.runtime.telemetry import (
    DEFAULT_BUCKETS,
    JsonLogFormatter,
    MetricsRegistry,
    NullRecorder,
    TelemetryRecorder,
    configure_logging,
    disable_telemetry,
    enable_telemetry,
    get_logger,
    get_recorder,
    set_recorder,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


@pytest.fixture(autouse=True)
def restore_recorder():
    """Never leak a live recorder into other tests."""
    previous = get_recorder()
    yield
    set_recorder(previous)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        reg.count("b", 2)
        assert reg.counter_value("a") == 5
        assert reg.counter_value("b") == 2
        assert reg.counter_value("absent") == 0

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("w", 4.0)
        reg.gauge("w", 8.0)
        assert reg.snapshot()["gauges"]["w"] == 8.0

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.002, 0.2):
            reg.observe("lat", v)
        hist = reg.snapshot()["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.203)
        assert hist["min"] == pytest.approx(0.001)
        assert hist["max"] == pytest.approx(0.2)
        assert sum(hist["buckets"]) == 3

    def test_histogram_overflow_bucket(self):
        reg = MetricsRegistry()
        reg.observe("lat", 10 * max(DEFAULT_BUCKETS))
        assert reg.snapshot()["histograms"]["lat"]["buckets"][-1] == 1

    def test_merge_is_exact(self):
        """The process-pool contract: worker snapshots fold in losslessly."""
        parent, worker1, worker2 = (MetricsRegistry() for _ in range(3))
        parent.count("matcher.invocations", 10)
        worker1.count("matcher.invocations", 7)
        worker1.observe("lat", 0.004)
        worker2.count("matcher.invocations", 5)
        worker2.count("cache.hit", 1)
        worker2.observe("lat", 0.040)
        parent.merge(worker1.snapshot())
        parent.merge(worker2.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["matcher.invocations"] == 22
        assert snap["counters"]["cache.hit"] == 1
        assert snap["histograms"]["lat"]["count"] == 2
        assert snap["histograms"]["lat"]["min"] == pytest.approx(0.004)
        assert snap["histograms"]["lat"]["max"] == pytest.approx(0.040)

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry(buckets=(0.1, 1.0))
        b = MetricsRegistry()
        b.observe("lat", 0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_reset(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.gauge("g", 2.0)
        reg.observe("h", 0.5)
        json.dumps(reg.snapshot())  # must not raise


class TestSpans:
    def test_nesting_and_timing(self):
        clock = FakeClock()
        recorder = TelemetryRecorder(clock=clock)
        with recorder.span("outer"):
            clock.advance(1.0)
            with recorder.span("inner"):
                clock.advance(0.25)
            clock.advance(0.5)
        tree = recorder.span_tree()
        assert tree["name"] == "run"
        outer = tree["children"][0]
        assert outer["name"] == "outer"
        assert outer["seconds"] == pytest.approx(1.75)
        assert outer["children"][0]["name"] == "inner"
        assert outer["children"][0]["seconds"] == pytest.approx(0.25)

    def test_siblings_attach_to_same_parent(self):
        recorder = TelemetryRecorder(clock=FakeClock())
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        assert [c["name"] for c in recorder.span_tree()["children"]] == ["a", "b"]

    def test_span_closes_on_exception(self):
        clock = FakeClock()
        recorder = TelemetryRecorder(clock=clock)
        with pytest.raises(RuntimeError):
            with recorder.span("broken"):
                clock.advance(2.0)
                raise RuntimeError("boom")
        # The stack unwound: new spans attach to the root again.
        with recorder.span("after"):
            pass
        names = [c["name"] for c in recorder.span_tree()["children"]]
        assert names == ["broken", "after"]
        assert recorder.span_tree()["children"][0]["seconds"] == pytest.approx(2.0)

    def test_unfinished_span_reports_elapsed(self):
        clock = FakeClock()
        recorder = TelemetryRecorder(clock=clock)
        clock.advance(3.0)
        assert recorder.span_tree()["seconds"] == pytest.approx(3.0)


class TestRecorderSwitching:
    def test_default_is_null(self):
        disable_telemetry()
        assert isinstance(get_recorder(), NullRecorder)
        assert not get_recorder().active

    def test_null_recorder_is_inert(self):
        recorder = NullRecorder()
        with recorder.span("x") as span:
            assert span is None
        recorder.count("a")
        recorder.observe("h", 1.0)
        recorder.gauge("g", 1.0)
        assert recorder.metrics.snapshot()["counters"] == {}

    def test_enable_disable_roundtrip(self):
        recorder = enable_telemetry()
        assert get_recorder() is recorder and recorder.active
        disable_telemetry()
        assert not get_recorder().active


class TestJsonLogging:
    def test_formatter_emits_json(self):
        record = logging.LogRecord(
            "repro.cache", logging.WARNING, __file__, 1, "corrupt entry", (), None
        )
        record.data = {"key": "abc"}
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.cache"
        assert payload["message"] == "corrupt entry"
        assert payload["key"] == "abc"

    def test_configure_logging_is_idempotent(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("info", stream=stream)
        get_logger("test").info("once")
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 1
        assert json.loads(lines[0])["message"] == "once"
        # Restore library default so other tests stay silent.
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_telemetry", False):
                logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
        logger.propagate = True

    def test_unconfigured_logger_is_silent(self, capsys):
        get_logger("quiet").warning("should not print")
        captured = capsys.readouterr()
        assert captured.err == "" and captured.out == ""

    def test_level_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        stream = io.StringIO()
        logger = configure_logging(stream=stream)
        assert logger.level == logging.DEBUG
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_telemetry", False):
                logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)
        logger.propagate = True
