"""Experiment-infrastructure substrate: seeding, parallelism, caching.

This package contains no biometrics; it is the plumbing that makes a
616,000-comparison empirical study deterministic, resumable and fast.
"""

from .cache import ScoreCache
from .config import (
    DEFAULT_SUBJECT_COUNT,
    PAPER_DDMI_BUDGET,
    PAPER_DMI_BUDGET,
    PAPER_SUBJECT_COUNT,
    StudyConfig,
    resolve_worker_count,
)
from .errors import (
    AcquisitionError,
    CacheError,
    CalibrationError,
    ConfigurationError,
    MatcherError,
    ReproError,
    SynthesisError,
    TemplateFormatError,
)
from .parallel import chunk_indices, parallel_map, sequential_map
from .progress import NullProgress, ProgressReporter
from .rng import SeedTree, derive_seed

__all__ = [
    "ScoreCache",
    "StudyConfig",
    "resolve_worker_count",
    "DEFAULT_SUBJECT_COUNT",
    "PAPER_SUBJECT_COUNT",
    "PAPER_DMI_BUDGET",
    "PAPER_DDMI_BUDGET",
    "ReproError",
    "ConfigurationError",
    "SynthesisError",
    "AcquisitionError",
    "MatcherError",
    "TemplateFormatError",
    "CalibrationError",
    "CacheError",
    "parallel_map",
    "sequential_map",
    "chunk_indices",
    "ProgressReporter",
    "NullProgress",
    "SeedTree",
    "derive_seed",
]
