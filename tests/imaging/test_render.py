"""Holographic ridge rendering."""

import numpy as np
import pytest

from repro.imaging.render import RenderSettings, render_finger, to_uint8
from repro.synthesis import synthesize_master_finger


@pytest.fixture(scope="module")
def finger():
    return synthesize_master_finger(np.random.default_rng(7))


class TestSettings:
    def test_nyquist_guard(self):
        with pytest.raises(ValueError, match="ridge period"):
            RenderSettings(pixels_per_mm=3.0)

    def test_contrast_validated(self):
        with pytest.raises(ValueError):
            RenderSettings(contrast=0.0)


class TestRenderFinger:
    def test_image_range_and_shape(self, finger):
        rendered = render_finger(finger)
        assert rendered.image.min() >= 0.0 and rendered.image.max() <= 1.0
        assert rendered.image.shape == rendered.mask.shape

    def test_all_minutiae_planted(self, finger):
        rendered = render_finger(finger)
        assert len(rendered.minutiae_px) == finger.n_minutiae

    def test_max_minutiae_limits_planting(self, finger):
        rendered = render_finger(finger, max_minutiae=10)
        assert len(rendered.minutiae_px) == 10

    def test_planted_positions_inside_image(self, finger):
        rendered = render_finger(finger)
        height, width = rendered.image.shape
        xs, ys = rendered.minutiae_px[:, 0], rendered.minutiae_px[:, 1]
        assert np.all((xs >= 0) & (xs < width))
        assert np.all((ys >= 0) & (ys < height))

    def test_ridge_periodicity(self, finger):
        # A horizontal slice through the pad crosses multiple ridges:
        # the intensity must oscillate through dark and light.
        rendered = render_finger(finger)
        row = rendered.image[rendered.image.shape[0] // 2]
        assert row.min() < 0.2 and row.max() > 0.8

    def test_deterministic(self, finger):
        a = render_finger(finger, RenderSettings(seed=5, moisture=0.8))
        b = render_finger(finger, RenderSettings(seed=5, moisture=0.8))
        np.testing.assert_array_equal(a.image, b.image)

    def test_dry_skin_brightens(self, finger):
        clean = render_finger(finger, RenderSettings(moisture=0.5))
        dry = render_finger(finger, RenderSettings(moisture=0.95))
        assert dry.image[dry.mask].mean() > clean.image[clean.mask].mean()

    def test_wet_skin_darkens(self, finger):
        clean = render_finger(finger, RenderSettings(moisture=0.5))
        wet = render_finger(finger, RenderSettings(moisture=0.05))
        assert wet.image[wet.mask].mean() < clean.image[clean.mask].mean()

    def test_background_white(self, finger):
        rendered = render_finger(finger)
        assert rendered.image[0, 0] == 1.0

    def test_to_uint8(self, finger):
        rendered = render_finger(finger)
        img8 = to_uint8(rendered.image)
        assert img8.dtype == np.uint8
        assert img8.max() == 255
