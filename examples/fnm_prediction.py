#!/usr/bin/env python3
"""Predicting false non-matches before they happen.

The paper's §V wish list: "being able to answer questions such as 'what
is the probability that I will have a False Non-Match pertaining to a
user enrolled using the Device X and verified using the Device Y?'".

This example fits a Beta-Binomial posterior per device pair from a
study's observed genuine outcomes and answers that question — with
credible intervals, so cells observed rarely report honest uncertainty
instead of false confidence.

Run:
    python examples/fnm_prediction.py
"""

from repro.api import FnmrPredictor, InteroperabilityStudy, StudyConfig


def main() -> None:
    config = StudyConfig.from_environment(n_subjects=40, n_workers=4)
    study = InteroperabilityStudy(config)
    predictor = FnmrPredictor().fit_from_study(study, target_fmr=1e-3)

    print(predictor.render())
    print()

    question = predictor.predict("D0", "D4")
    print(
        "Q: What is the probability of a False Non-Match for a user\n"
        "   enrolled on the Guardian R2 (D0) and verified from an ink\n"
        "   ten-print card (D4)?"
    )
    print(
        f"A: {question.probability:.3f} "
        f"(95% credible interval [{question.low:.3f}, {question.high:.3f}], "
        f"from {question.failures}/{question.trials} observed failures)"
    )
    print()

    native = predictor.predict("D0", "D0")
    print(
        f"For comparison, the native D0 -> D0 pair: {native.probability:.3f} "
        f"[{native.low:.3f}, {native.high:.3f}]"
    )
    ratio = question.probability / max(native.probability, 1e-9)
    print(f"Interoperability multiplies the FNM risk by ~{ratio:.1f}x on this run.")


if __name__ == "__main__":
    main()
