"""Pattern classes and singularity layouts."""

import numpy as np
import pytest

from repro.synthesis.pattern import (
    PATTERN_FREQUENCIES,
    PatternClass,
    build_orientation_field,
    sample_pattern_class,
)


class TestFrequencies:
    def test_cover_all_classes(self):
        assert set(PATTERN_FREQUENCIES) == set(PatternClass)

    def test_roughly_normalized(self):
        assert sum(PATTERN_FREQUENCIES.values()) == pytest.approx(1.0, abs=0.01)

    def test_loops_dominate(self):
        loops = (
            PATTERN_FREQUENCIES[PatternClass.LEFT_LOOP]
            + PATTERN_FREQUENCIES[PatternClass.RIGHT_LOOP]
        )
        assert loops > 0.5


class TestSampling:
    def test_distribution_matches_frequencies(self):
        rng = np.random.default_rng(0)
        samples = [sample_pattern_class(rng) for __ in range(4000)]
        whorl_rate = samples.count(PatternClass.WHORL) / len(samples)
        assert whorl_rate == pytest.approx(
            PATTERN_FREQUENCIES[PatternClass.WHORL], abs=0.03
        )

    def test_deterministic_given_rng(self):
        a = [sample_pattern_class(np.random.default_rng(1)) for __ in range(10)]
        b = [sample_pattern_class(np.random.default_rng(1)) for __ in range(10)]
        assert a == b


class TestLayouts:
    @pytest.mark.parametrize(
        "pattern,n_cores,n_deltas",
        [
            (PatternClass.PLAIN_ARCH, 0, 0),
            (PatternClass.TENTED_ARCH, 1, 1),
            (PatternClass.LEFT_LOOP, 1, 1),
            (PatternClass.RIGHT_LOOP, 1, 1),
            (PatternClass.WHORL, 2, 2),
        ],
    )
    def test_singularity_counts(self, pattern, n_cores, n_deltas):
        fld = build_orientation_field(pattern, np.random.default_rng(3))
        cores = [s for s in fld.singularities if s.kind == "core"]
        deltas = [s for s in fld.singularities if s.kind == "delta"]
        assert len(cores) == n_cores
        assert len(deltas) == n_deltas

    def test_arch_has_bend(self):
        fld = build_orientation_field(PatternClass.PLAIN_ARCH, np.random.default_rng(4))
        assert fld.arch_bend > 0.2

    def test_loop_sides(self):
        rng = np.random.default_rng(5)
        left = build_orientation_field(PatternClass.LEFT_LOOP, rng)
        right = build_orientation_field(PatternClass.RIGHT_LOOP, rng)
        left_core = next(s for s in left.singularities if s.kind == "core")
        right_core = next(s for s in right.singularities if s.kind == "core")
        assert left_core.x < 0 < right_core.x

    def test_jitter_makes_fields_unique(self):
        rng = np.random.default_rng(6)
        a = build_orientation_field(PatternClass.WHORL, rng)
        b = build_orientation_field(PatternClass.WHORL, rng)
        assert a.singularities != b.singularities

    def test_delta_below_core_for_loops(self):
        rng = np.random.default_rng(7)
        for __ in range(10):
            fld = build_orientation_field(PatternClass.LEFT_LOOP, rng)
            core = next(s for s in fld.singularities if s.kind == "core")
            delta = next(s for s in fld.singularities if s.kind == "delta")
            assert delta.y < core.y
