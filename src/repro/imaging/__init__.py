"""Image-domain substrate: rendering and minutiae extraction.

Closes the loop the template pipeline shortcut: render a finger as a
real ridge image (minutiae planted as phase spirals), then recover a
template from the image with a classical extractor (binarize →
Zhang–Suen skeleton → crossing number → artifact filtering).
"""

from .extraction import (
    ExtractionSettings,
    binarize,
    extract_template,
    recovery_metrics,
)
from .render import (
    RenderedImpression,
    RenderSettings,
    render_finger,
    render_sensed_impression,
    to_uint8,
)
from .thinning import crossing_number, skeletonize

__all__ = [
    "RenderSettings",
    "RenderedImpression",
    "render_finger",
    "render_sensed_impression",
    "to_uint8",
    "skeletonize",
    "crossing_number",
    "ExtractionSettings",
    "binarize",
    "extract_template",
    "recovery_metrics",
]
