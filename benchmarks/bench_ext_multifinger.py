"""X5 — §V further work: "using more than one fingerprint image from a
given participant to improve the FMR and FNMR rates".

Re-runs the cross-device D0→D1 genuine/impostor comparisons with the
second finger (right middle), fuses per-subject scores across fingers,
and compares separability and FNMR at a fixed threshold.
"""

import numpy as np

from repro.api import d_prime, GALLERY_SET, PROBE_SET, sum_fusion

CELL = ("D0", "D1")
N_IMPOSTORS = 300
THRESHOLD = 7.5


def _cell_jobs(study):
    gallery_dev, probe_dev = CELL
    n = study.config.n_subjects
    genuine = [
        (s, gallery_dev, GALLERY_SET, s, probe_dev, PROBE_SET) for s in range(n)
    ]
    rng = np.random.default_rng(417)  # same pairs as the X1 benchmark
    impostor = []
    while len(impostor) < N_IMPOSTORS:
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        job = (int(i), gallery_dev, GALLERY_SET, int(j), probe_dev, PROBE_SET)
        if job not in impostor:
            impostor.append(job)
    return genuine, impostor


def test_ext_multifinger_fusion(benchmark, study, record_artifact):
    genuine_jobs, impostor_jobs = _cell_jobs(study)

    index_gen = study.custom_scores("DDMG-x1gen", genuine_jobs).scores
    index_imp = study.custom_scores("DDMI-x1imp", impostor_jobs).scores
    middle_gen = study.custom_scores(
        "DDMG-x5gen", genuine_jobs, finger="right_middle"
    ).scores
    middle_imp = study.custom_scores(
        "DDMI-x5imp", impostor_jobs, finger="right_middle"
    ).scores

    def fuse():
        return (
            sum_fusion([index_gen, middle_gen]),
            sum_fusion([index_imp, middle_imp]),
        )

    fused_gen, fused_imp = benchmark(fuse)

    rows = [
        ("right index only", index_gen, index_imp),
        ("right middle only", middle_gen, middle_imp),
        ("two-finger sum fusion", fused_gen, fused_imp),
    ]
    lines = [f"X5: multi-finger fusion on the cross-device cell {CELL[0]} -> {CELL[1]}"]
    for label, gen, imp in rows:
        lines.append(
            f"  {label:<22} d' = {d_prime(gen, imp):6.2f}   "
            f"FNMR@{THRESHOLD} = {np.mean(gen < THRESHOLD):.3f}"
        )
    text = "\n".join(lines)
    record_artifact(text)
    print("\n" + text)

    d_index = d_prime(index_gen, index_imp)
    d_middle = d_prime(middle_gen, middle_imp)
    d_fused = d_prime(fused_gen, fused_imp)
    assert d_fused > min(d_index, d_middle)
    # Fusion lowers (or keeps) the FNMR relative to the single finger.
    assert np.mean(fused_gen < THRESHOLD) <= np.mean(index_gen < THRESHOLD) + 0.02
