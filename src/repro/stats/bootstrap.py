"""Bootstrap confidence intervals for error-rate estimates.

Table 5's FNMR cells are proportions of a few thousand genuine scores; a
reproduction should state how tight those estimates are.  This module
provides a generic percentile bootstrap and a convenience wrapper for
FNMR-at-fixed-FMR (resampling genuine and impostor sets independently,
as the two populations are independent samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from .roc import fnmr_at_fmr


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap confidence interval.

    Attributes
    ----------
    estimate:
        Point estimate on the full sample.
    low, high:
        Interval endpoints at the requested confidence level.
    confidence:
        The confidence level, e.g. ``0.95``.
    n_resamples:
        Number of bootstrap replicates drawn.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    def width(self) -> float:
        """Interval width ``high - low``."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high


def bootstrap_ci(
    data: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapInterval:
    """Percentile bootstrap CI of ``statistic`` over ``data``.

    Parameters
    ----------
    data:
        The sample to resample with replacement.
    statistic:
        Callable mapping a 1-D array to a scalar.
    n_resamples:
        Bootstrap replicates; 1000 is plenty for 95 % intervals.
    confidence:
        Two-sided confidence level in (0, 1).
    rng:
        Generator for reproducibility; a default generator is created if
        omitted (then results vary run to run).
    """
    arr = np.asarray(data, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError("n_resamples must be >= 1")
    if rng is None:
        rng = np.random.default_rng()

    estimate = float(statistic(arr))
    replicates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        sample = arr[rng.integers(0, arr.size, size=arr.size)]
        replicates[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_fnmr_at_fmr(
    genuine_scores: Sequence[float],
    impostor_scores: Sequence[float],
    target_fmr: float,
    n_resamples: int = 500,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapInterval:
    """Bootstrap CI for FNMR at a fixed FMR operating point.

    Genuine and impostor sets are resampled independently per replicate,
    and the threshold is re-derived from each impostor resample so the
    interval reflects threshold-estimation noise too.
    """
    gen = np.asarray(genuine_scores, dtype=np.float64).ravel()
    imp = np.asarray(impostor_scores, dtype=np.float64).ravel()
    if gen.size == 0 or imp.size == 0:
        raise ValueError("both score sets must be non-empty")
    if rng is None:
        rng = np.random.default_rng()

    estimate = fnmr_at_fmr(gen, imp, target_fmr)
    replicates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        g = gen[rng.integers(0, gen.size, size=gen.size)]
        m = imp[rng.integers(0, imp.size, size=imp.size)]
        replicates[i] = fnmr_at_fmr(g, m, target_fmr)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )


__all__ = ["BootstrapInterval", "bootstrap_ci", "bootstrap_fnmr_at_fmr"]
