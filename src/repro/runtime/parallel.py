"""Parallel map for score generation.

The paper's experiment evaluates ~616,000 matcher invocations.  This
module provides :func:`parallel_map`: a chunked, order-preserving map
over a process pool that degrades gracefully to a sequential loop when
``n_workers == 0`` (the default for tests) or when the workload is too
small to amortize process start-up.

Functions submitted to the pool must be picklable module-level callables;
per-chunk work is deterministic because chunk boundaries depend only on
``len(items)`` and ``chunk_size``, never on scheduling.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from .config import resolve_worker_count
from .telemetry import get_recorder

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items a pool is never worth its start-up cost.
_MIN_ITEMS_FOR_POOL = 64


def chunk_indices(n_items: int, chunk_size: int) -> List[range]:
    """Split ``range(n_items)`` into consecutive ranges of ``chunk_size``."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        range(start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


def _apply_chunk(func: Callable[[T], R], items: Sequence[T]) -> List[R]:
    """Worker body: map ``func`` over one chunk (module-level, picklable)."""
    return [func(item) for item in items]


def _apply_chunk_timed(
    func: Callable[[T], R], items: Sequence[T]
) -> Tuple[List[R], float]:
    """Worker body that also reports the chunk's wall-clock seconds.

    The timing happens *in the worker* so it measures compute, not the
    parent's result-collection order; the parent feeds it into the
    ``parallel.chunk_seconds`` histogram.
    """
    start = time.perf_counter()
    results = [func(item) for item in items]
    return results, time.perf_counter() - start


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T],
    n_workers: int = 0,
    chunk_size: int = 256,
) -> List[R]:
    """Map ``func`` over ``items``, optionally on a process pool.

    Results are returned in input order regardless of worker scheduling.

    Parameters
    ----------
    func:
        A picklable callable (module-level function or partial of one).
    items:
        The work items; must be a sequence (indexable, sized).
    n_workers:
        Requested pool width.  ``0`` (default) runs sequentially in the
        calling process, which is also the fallback for tiny workloads.
    chunk_size:
        Items per task submitted to the pool; larger chunks amortize IPC.
    """
    effective = resolve_worker_count(n_workers)
    if effective <= 1 or len(items) < _MIN_ITEMS_FOR_POOL:
        return [func(item) for item in items]

    recorder = get_recorder()
    chunks = chunk_indices(len(items), chunk_size)
    if recorder.active:
        recorder.gauge("parallel.workers", float(effective))
        recorder.count("parallel.chunks", len(chunks))
        recorder.count("parallel.items", len(items))
    results: List[R] = []
    with ProcessPoolExecutor(max_workers=effective) as pool:
        if recorder.active:
            futures = [
                pool.submit(_apply_chunk_timed, func, [items[i] for i in chunk])
                for chunk in chunks
            ]
            for future in futures:
                part, seconds = future.result()
                recorder.observe("parallel.chunk_seconds", seconds)
                results.extend(part)
        else:
            futures = [
                pool.submit(_apply_chunk, func, [items[i] for i in chunk])
                for chunk in chunks
            ]
            for future in futures:
                results.extend(future.result())
    return results


def _apply_batch_timed(func: Callable[[T], R], batch: T) -> Tuple[R, float]:
    """Worker body for one pre-formed batch: result + wall-clock seconds."""
    start = time.perf_counter()
    return func(batch), time.perf_counter() - start


def parallel_map_batched(
    func: Callable[[T], R],
    batches: Sequence[T],
    n_workers: int = 0,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[Callable[[R], None]] = None,
) -> List[R]:
    """Apply ``func`` to each pre-formed batch, one pool task per batch.

    Unlike :func:`parallel_map`, the *caller* controls chunking: a batch
    is the unit an optimized kernel wants dispatched whole (for score
    generation, every job sharing one gallery template).  Results are
    per-batch, in input order.

    ``initializer``/``initargs`` seed per-worker state exactly as on
    :class:`ProcessPoolExecutor` (the sequential fallback calls the
    initializer once in-process, so ``func`` sees the same state either
    way).  ``on_result`` fires once per batch as results arrive, in input
    order — the hook for streaming progress without waiting for the full
    map.

    Telemetry (when enabled): ``parallel.batches`` counts dispatches and
    ``parallel.batch_seconds`` observes each batch's compute seconds,
    measured in the worker so scheduling skew never inflates it.
    """
    recorder = get_recorder()
    if recorder.active:
        recorder.count("parallel.batches", len(batches))
    effective = resolve_worker_count(n_workers)
    results: List[R] = []
    if effective <= 1 or len(batches) <= 1:
        if initializer is not None:
            initializer(*initargs)
        for batch in batches:
            if recorder.active:
                result, seconds = _apply_batch_timed(func, batch)
                recorder.observe("parallel.batch_seconds", seconds)
            else:
                result = func(batch)
            results.append(result)
            if on_result is not None:
                on_result(result)
        return results
    if recorder.active:
        recorder.gauge("parallel.workers", float(effective))
    with ProcessPoolExecutor(
        max_workers=effective, initializer=initializer, initargs=initargs
    ) as pool:
        futures = [
            pool.submit(_apply_batch_timed, func, batch) for batch in batches
        ]
        for future in futures:
            result, seconds = future.result()
            if recorder.active:
                recorder.observe("parallel.batch_seconds", seconds)
            results.append(result)
            if on_result is not None:
                on_result(result)
    return results


def sequential_map(func: Callable[[T], R], items: Iterable[T]) -> List[R]:
    """Plain list-building map, for symmetry with :func:`parallel_map`."""
    return [func(item) for item in items]


__all__ = [
    "parallel_map",
    "parallel_map_batched",
    "sequential_map",
    "chunk_indices",
]
