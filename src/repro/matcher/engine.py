"""Matcher facade — the reproduction's "SDK".

:class:`BioEngineMatcher` chains the pipeline stages (descriptors →
consensus alignment → tolerance-box pairing → calibrated score) behind
the interface a commercial SDK exposes: ``match`` for a bare score,
``match_detailed`` for diagnostics, and ``match_many`` for batched
verification of many probes against one gallery template.

Per-template work (mm-space positions, directions, qualities and the
neighbourhood descriptors) is memoized as a :class:`TemplateFrame`,
keyed by a *content fingerprint* — template length plus a hash of the
minutiae — because the study matches every gallery template against
hundreds of probes and ``id()``-based keys can alias after garbage
collection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..runtime.errors import MatcherError
from ..runtime.telemetry import get_recorder
from .alignment import RigidTransform, candidate_pairs, estimate_alignments
from .descriptors import DescriptorSet, build_descriptors, similarity_matrix
from .pairing import PairingResult, pair_minutiae
from .scoring import (
    MIN_TEMPLATE_MINUTIAE,
    ScoreBreakdown,
    compute_score,
)
from .types import Template


@dataclass(frozen=True)
class MatchResult:
    """Full diagnostics of one comparison."""

    score: float
    breakdown: ScoreBreakdown
    transform: Optional[RigidTransform]
    pairing: Optional[PairingResult]


@dataclass(frozen=True)
class TemplateFrame:
    """Everything the match kernel needs from one template, precomputed.

    Built once per distinct template and reused across every comparison
    that template participates in — the gallery side of a batch pays for
    its arrays and descriptors exactly once.
    """

    positions: np.ndarray
    angles: np.ndarray
    qualities: np.ndarray
    descriptors: DescriptorSet


def template_fingerprint(template: Template) -> Tuple[int, int, int]:
    """Content key for memoizing per-template work.

    ``id()`` keys alias when the allocator recycles addresses after GC;
    this key survives that: template length, capture resolution, and the
    hash of the (frozen, hashable) minutiae tuple.
    """
    return template.content_key()


def _empty_result() -> MatchResult:
    empty = ScoreBreakdown(
        score=0.0, match_ratio=0.0, consistency=0.0, quality_weight=0.0,
        n_matched=0, n_overlap_a=0, n_overlap_b=0,
    )
    return MatchResult(score=0.0, breakdown=empty, transform=None, pairing=None)


class BioEngineMatcher:
    """Minutiae matcher calibrated to the paper's score landmarks.

    Thread-compatibility note: the frame memo is a plain dict; use one
    matcher instance per process (the parallel harness does).
    """

    #: Name used by :class:`~repro.runtime.config.StudyConfig`.
    name = "bioengine"

    def __init__(self, max_cache_entries: int = 4096) -> None:
        self._frame_cache: Dict[Tuple[int, int, int], TemplateFrame] = {}
        self._max_cache_entries = max_cache_entries

    def _frame(self, template: Template) -> TemplateFrame:
        key = template_fingerprint(template)
        cached = self._frame_cache.get(key)
        if cached is not None:
            return cached
        frame = TemplateFrame(
            positions=template.positions_mm(),
            angles=template.angles(),
            qualities=template.qualities(),
            descriptors=build_descriptors(template),
        )
        if len(self._frame_cache) >= self._max_cache_entries:
            self._frame_cache.clear()
        self._frame_cache[key] = frame
        return frame

    def _descriptors(self, template: Template) -> DescriptorSet:
        """Descriptor set of ``template`` (memoized via the frame cache)."""
        return self._frame(template).descriptors

    def match(self, probe: Template, gallery: Template) -> float:
        """Similarity score; higher means more likely the same finger."""
        return self.match_detailed(probe, gallery).score

    def score_pairs(self, pairs: Sequence[Tuple[Template, Template]]) -> np.ndarray:
        """Scores of arbitrary (probe, gallery) pairs, batch-grouped.

        The micro-batching entry point of the online serving layer: a
        batch of in-flight comparisons is regrouped so that pairs sharing
        a gallery template ride :meth:`match_many` and pairs sharing a
        probe template ride :meth:`match_one_to_many`; stragglers fall
        back to the scalar kernel.  Result order matches input order, and
        every path reduces to ``_match_frames`` on the same memoized
        frames, so scores are bit-identical to a scalar loop.

        Duplicate comparisons are collapsed first: the kernel is a pure
        function of the two templates' contents, so a batch that contains
        the same (probe, gallery) pair several times — the normal case
        when concurrent verification requests coalesce — pays for it
        once and fans the score out.  This request-collapsing is where
        cross-request micro-batching earns its throughput: a per-request
        dispatcher never sees the redundancy.
        """
        n = len(pairs)
        scores = np.empty(n, dtype=np.float64)
        if n == 0:
            return scores
        distinct: Dict[Tuple, list] = {}
        for index, (probe, gallery) in enumerate(pairs):
            if probe is None or gallery is None:
                raise MatcherError("score_pairs requires probe and gallery templates")
            key = (probe.content_key(), gallery.content_key())
            distinct.setdefault(key, []).append(index)
        if len(distinct) < n:
            recorder = get_recorder()
            if recorder.active:
                recorder.count("matcher.collapsed", n - len(distinct))
            groups = list(distinct.values())
            unique_scores = self._score_distinct(
                [pairs[indices[0]] for indices in groups]
            )
            for indices, score in zip(groups, unique_scores):
                scores[indices] = score
            return scores
        return self._score_distinct(pairs)

    def _score_distinct(
        self, pairs: Sequence[Tuple[Template, Template]]
    ) -> np.ndarray:
        """Batch-group and score pairs assumed pairwise distinct."""
        n = len(pairs)
        scores = np.empty(n, dtype=np.float64)
        by_gallery: Dict[Tuple[int, int, int], list] = {}
        for index, (_probe, gallery) in enumerate(pairs):
            by_gallery.setdefault(gallery.content_key(), []).append(index)
        singles: list = []
        for indices in by_gallery.values():
            if len(indices) == 1:
                singles.append(indices[0])
                continue
            gallery = pairs[indices[0]][1]
            batch = self.match_many([pairs[i][0] for i in indices], gallery)
            scores[indices] = batch
        if singles:
            by_probe: Dict[Tuple[int, int, int], list] = {}
            for index in singles:
                by_probe.setdefault(pairs[index][0].content_key(), []).append(index)
            for indices in by_probe.values():
                if len(indices) == 1:
                    i = indices[0]
                    scores[i] = self.match(pairs[i][0], pairs[i][1])
                    continue
                probe = pairs[indices[0]][0]
                batch = self.match_one_to_many(
                    probe, [pairs[i][1] for i in indices]
                )
                scores[indices] = batch
        return scores

    def match_many(
        self, probes: Sequence[Template], gallery: Template
    ) -> np.ndarray:
        """Scores of every probe against one gallery template.

        The batched entry point of the score engine: the gallery's frame
        (positions, directions, qualities, descriptors) is computed once
        and reused for the whole batch, and each distinct probe template
        pays for its own frame once regardless of how many batches it
        appears in.  Scores are *identical* to calling :meth:`match` in a
        loop — the scalar path is the parity oracle for this kernel.
        """
        if gallery is None:
            raise MatcherError("match_many requires a gallery template")
        n = len(probes)
        scores = np.empty(n, dtype=np.float64)
        if n == 0:
            return scores
        recorder = get_recorder()
        start = time.perf_counter() if recorder.active else 0.0
        gallery_degenerate = len(gallery) < MIN_TEMPLATE_MINUTIAE
        frame_g = None if gallery_degenerate else self._frame(gallery)
        for k, probe in enumerate(probes):
            if probe is None:
                raise MatcherError("match_many requires probe templates")
            if gallery_degenerate or len(probe) < MIN_TEMPLATE_MINUTIAE:
                scores[k] = 0.0
                continue
            scores[k] = self._match_frames(self._frame(probe), frame_g).score
        if recorder.active:
            recorder.count("matcher.invocations", n)
            recorder.observe("matcher.batch_size", float(n))
            recorder.observe(
                "matcher.batch_seconds", time.perf_counter() - start
            )
        return scores

    def match_one_to_many(
        self, probe: Template, galleries: Sequence[Template]
    ) -> np.ndarray:
        """Scores of one probe against every gallery template.

        The identification-shaped twin of :meth:`match_many`: the probe's
        frame is computed once and reused across the whole candidate
        list, and each distinct gallery template pays for its frame once
        regardless of how many searches it appears in.  Scores are
        *identical* to calling :meth:`match` per candidate — both paths
        reduce to ``_match_frames`` on the same memoized frames — so the
        scalar loop remains the parity oracle for 1:N search.
        """
        if probe is None:
            raise MatcherError("match_one_to_many requires a probe template")
        n = len(galleries)
        scores = np.empty(n, dtype=np.float64)
        if n == 0:
            return scores
        recorder = get_recorder()
        start = time.perf_counter() if recorder.active else 0.0
        probe_degenerate = len(probe) < MIN_TEMPLATE_MINUTIAE
        frame_p = None if probe_degenerate else self._frame(probe)
        for k, gallery in enumerate(galleries):
            if gallery is None:
                raise MatcherError("match_one_to_many requires gallery templates")
            if probe_degenerate or len(gallery) < MIN_TEMPLATE_MINUTIAE:
                scores[k] = 0.0
                continue
            scores[k] = self._match_frames(frame_p, self._frame(gallery)).score
        if recorder.active:
            recorder.count("matcher.invocations", n)
            recorder.observe("matcher.batch_size", float(n))
            recorder.observe(
                "matcher.batch_seconds", time.perf_counter() - start
            )
        return scores

    def match_detailed(self, probe: Template, gallery: Template) -> MatchResult:
        """Score plus alignment/pairing diagnostics.

        When telemetry is enabled, every invocation bumps the
        ``matcher.invocations`` counter and feeds the per-comparison
        latency into the ``matcher.match_seconds`` histogram; with the
        default :class:`~repro.runtime.telemetry.NullRecorder` the
        overhead is a single attribute check.
        """
        recorder = get_recorder()
        if not recorder.active:
            return self._match_detailed(probe, gallery)
        start = time.perf_counter()
        result = self._match_detailed(probe, gallery)
        recorder.count("matcher.invocations")
        recorder.observe("matcher.match_seconds", time.perf_counter() - start)
        return result

    def _match_detailed(self, probe: Template, gallery: Template) -> MatchResult:
        if probe is None or gallery is None:
            raise MatcherError("match requires two templates")
        if len(probe) < MIN_TEMPLATE_MINUTIAE or len(gallery) < MIN_TEMPLATE_MINUTIAE:
            # Degenerate capture: a real SDK reports failure-to-match with
            # a floor score rather than raising.
            return _empty_result()
        return self._match_frames(self._frame(probe), self._frame(gallery))

    def _match_frames(
        self, frame_p: TemplateFrame, frame_g: TemplateFrame
    ) -> MatchResult:
        """The match kernel, shared by the scalar and batched paths."""
        similarity = similarity_matrix(frame_p.descriptors, frame_g.descriptors)
        candidates = candidate_pairs(similarity)

        transforms = estimate_alignments(
            frame_p.positions, frame_p.angles,
            frame_g.positions, frame_g.angles, candidates,
        )
        if not transforms:
            return _empty_result()

        best: Optional[MatchResult] = None
        for transform in transforms:
            pairing = pair_minutiae(
                frame_p.positions, frame_p.angles,
                frame_g.positions, frame_g.angles, transform,
            )
            breakdown = compute_score(pairing, frame_p.qualities, frame_g.qualities)
            result = MatchResult(
                score=breakdown.score,
                breakdown=breakdown,
                transform=transform,
                pairing=pairing,
            )
            if best is None or result.score > best.score:
                best = result
        return best


__all__ = [
    "BioEngineMatcher",
    "MatchResult",
    "TemplateFrame",
    "template_fingerprint",
]
