"""End-to-end observability acceptance: trace ids, reqlog, /metrics join.

The PR's acceptance criteria, over a real socket: a request through
``ServiceClient`` yields an ``X-Request-ID`` echoed end-to-end, a JSONL
reqlog line whose ``batch_id`` matches a batch recorded in ``/metrics``,
and a ``/metrics`` payload accepted by the strict exposition parser.
"""

import pytest

from repro.service import (
    BatchingConfig,
    GalleryIndex,
    RequestLog,
    ServiceClient,
    ServiceClientError,
    ServiceRunner,
    VerificationServer,
    iter_reqlog,
    parse_exposition,
    sample_value,
)

FINGER = "right_index"
SUBJECTS = (0, 1, 2)


def _settle(client):
    """Force the previous request's reqlog line to be on disk.

    The audit line is written after the response goes out, so the very
    last response can race its own log line; handlers on one keep-alive
    connection are sequential, so any follow-up round trip is a barrier
    for everything before it.
    """
    client.healthz()


@pytest.fixture()
def observed(tmp_path, tiny_collection, matcher):
    """A traced server with a reqlog, enrolled, plus its client and log path."""
    reqlog_path = tmp_path / "reqlog.jsonl"
    server = VerificationServer(
        GalleryIndex(tmp_path / "gallery"),
        matcher=matcher,
        port=0,
        batching=BatchingConfig(max_wait_ms=5.0),
        reqlog=RequestLog(reqlog_path),
    )
    with ServiceRunner(server) as (host, port):
        with ServiceClient(host, port) as client:
            for sid in SUBJECTS:
                client.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, "D0", 0).template,
                    device="D0",
                )
            yield client, reqlog_path


class TestRequestIdEcho:
    def test_client_id_echoed_end_to_end(self, observed, tiny_collection):
        client, _ = observed
        client.verify(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 1).template,
            device="D0",
        )
        assert client.last_request_id
        assert client.last_headers["x-request-id"] == client.last_request_id

    def test_echoed_on_error_responses_too(self, observed):
        client, _ = observed
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert client.last_headers.get("x-request-id")

    def test_unsafe_header_value_is_replaced(self, observed):
        client, _ = observed
        connection = client._connect()
        connection.request(
            "GET", "/healthz", headers={"X-Request-ID": "bad value!{}"}
        )
        response = connection.getresponse()
        response.read()
        echoed = dict(response.getheaders()).get("X-Request-ID")
        assert echoed and echoed != "bad value!{}"


class TestReqlogMetricsJoin:
    def test_reqlog_batch_ids_match_metrics(self, observed, tiny_collection):
        client, reqlog_path = observed
        client.verify(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 1).template,
            device="D0",
        )
        verify_id = client.last_request_id
        client.identify(
            tiny_collection.get(1, FINGER, "D0", 1).template, device="D0"
        )
        identify_id = client.last_request_id

        families = parse_exposition(client.metrics())  # strict parse
        last_batch = sample_value(families, "repro_batch_last_id")
        assert last_batch and last_batch >= 1

        records = {r["request_id"]: r for r in iter_reqlog(reqlog_path)}
        for rid in (verify_id, identify_id):
            record = records[rid]
            assert record["batch_ids"], f"{record['endpoint']} rode no batch"
            assert all(1 <= b <= last_batch for b in record["batch_ids"])
            assert record["status"] == 200
            assert record["device"] == "D0"
            assert record["gallery_size"] == len(SUBJECTS)

    def test_reqlog_has_one_line_per_request(self, observed, tiny_collection):
        client, reqlog_path = observed
        sent = []
        for _ in range(3):
            client.verify(
                "subject-0",
                tiny_collection.get(0, FINGER, "D0", 1).template,
                device="D0",
            )
            sent.append(client.last_request_id)
        _settle(client)
        logged = [r["request_id"] for r in iter_reqlog(reqlog_path)]
        assert len(logged) == len(set(logged))
        for rid in sent:
            assert logged.count(rid) == 1

    def test_phase_timeline_covers_the_lifecycle(
        self, observed, tiny_collection
    ):
        client, reqlog_path = observed
        client.verify(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 1).template,
            device="D0",
        )
        rid = client.last_request_id
        _settle(client)
        record = {
            r["request_id"]: r for r in iter_reqlog(reqlog_path)
        }[rid]
        names = [p["name"] for p in record["phases"]]
        assert names == [
            "parse", "gallery", "queue_wait", "batch_wait", "match", "respond",
        ]
        assert all(p["ms"] >= 0.0 for p in record["phases"])
        assert record["match_ms"] > 0.0

    def test_probe_requests_are_logged_without_batches(self, observed):
        client, reqlog_path = observed
        client.healthz()
        rid = client.last_request_id
        _settle(client)
        record = {
            r["request_id"]: r for r in iter_reqlog(reqlog_path)
        }[rid]
        assert record["endpoint"] == "healthz"
        assert record["batch_ids"] == []


class TestTracingDisabled:
    def test_tracing_off_still_echoes_ids_and_logs(
        self, tmp_path, tiny_collection, matcher
    ):
        reqlog_path = tmp_path / "req.jsonl"
        server = VerificationServer(
            GalleryIndex(tmp_path / "gallery"),
            matcher=matcher,
            port=0,
            batching=BatchingConfig(max_wait_ms=5.0),
            reqlog=RequestLog(reqlog_path),
            tracing=False,
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                client.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
                client.verify(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 1).template,
                    device="D0",
                )
                rid = client.last_request_id
                assert client.last_headers["x-request-id"] == rid
        records = {r["request_id"]: r for r in iter_reqlog(reqlog_path)}
        assert rid in records
        assert "phases" not in records[rid]  # no trace, no timeline

    def test_env_flag_disables_tracing(self, tmp_path, matcher, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TRACING", "0")
        server = VerificationServer(
            GalleryIndex(tmp_path / "gallery"), matcher=matcher, port=0
        )
        assert server.tracing is False

    def test_tracing_defaults_on(self, tmp_path, matcher, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_TRACING", raising=False)
        server = VerificationServer(
            GalleryIndex(tmp_path / "gallery"), matcher=matcher, port=0
        )
        assert server.tracing is True


class TestSlowRequests:
    def test_zero_threshold_flags_everything(
        self, tmp_path, tiny_collection, matcher
    ):
        reqlog_path = tmp_path / "req.jsonl"
        server = VerificationServer(
            GalleryIndex(tmp_path / "gallery"),
            matcher=matcher,
            port=0,
            batching=BatchingConfig(max_wait_ms=5.0),
            reqlog=RequestLog(reqlog_path),
            slow_ms=0.0,
        )
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                client.enroll(
                    "subject-0",
                    tiny_collection.get(0, FINGER, "D0", 0).template,
                    device="D0",
                )
                stats = client.stats()
        assert stats["slow_requests"] >= 1
        records = list(iter_reqlog(reqlog_path))
        assert all(r["slow"] for r in records if r["endpoint"] == "enroll")

    def test_high_threshold_flags_nothing(self, observed, tiny_collection):
        client, reqlog_path = observed
        client.verify(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 1).template,
            device="D0",
        )
        assert client.stats()["slow_requests"] == 0
        _settle(client)
        assert not any(r["slow"] for r in iter_reqlog(reqlog_path))
