"""Supervised process-pool execution: retries, timeouts, self-healing.

At paper scale the study is a ~616,000-invocation campaign; a single
OOM-killed worker, wedged sensor model or crashed process must cost one
batch retry, not the whole run.  This module is the execution core
underneath :func:`~repro.runtime.parallel.parallel_map` and
:func:`~repro.runtime.parallel.parallel_map_batched`:

* **Failure classification.**  Per-task exceptions are split transient /
  permanent by :func:`~repro.runtime.errors.classify_failure`; transient
  failures are retried under a :class:`RetryPolicy` with exponential
  backoff and *deterministic* jitter (hashed from the task key, so tests
  replay bit-identically).
* **Pool supervision.**  A broken pool (worker crash) or a batch running
  past ``batch_timeout`` (hang) kills and rebuilds the pool, requeuing
  only the unfinished batches — completed results are never lost.
  Repeated breakage shrinks the worker count; a breakage at width one
  degrades to in-process serial execution as the last resort.
* **Ordered streaming.**  Futures are collected as they complete
  (index-bookkept), yet results return in input order and ``on_result``
  fires in input order — the contract checkpoint-resume and progress
  reporting rely on.
* **Chaos hooks.**  Every pooled task runs through
  :func:`repro.runtime.faults.perturb`, so a ``REPRO_FAULTS`` plan can
  crash, hang or poison exactly the tasks a chaos test names.

Telemetry (when enabled): ``supervisor.retries``, ``supervisor.requeued``,
``supervisor.timeouts``, ``supervisor.pool_restarts``,
``supervisor.skipped``, the ``supervisor.degraded`` / ``supervisor.workers``
gauges and the ``supervisor.backoff_seconds`` histogram, all rolled up
into the run manifest.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from . import faults
from .config import env_float, env_int
from .errors import ConfigurationError, PermanentError, classify_failure
from .telemetry import get_logger, get_recorder

T = TypeVar("T")
R = TypeVar("R")

_log = get_logger("supervisor")

#: How long a fail-fast abort waits for healthy inflight batches to
#: finish (and reach ``on_result``) when no batch timeout bounds them.
ABORT_SETTLE_SECONDS = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts to failing, hanging or crashing batches.

    Attributes
    ----------
    max_attempts:
        Total executions allowed per batch (first try included) before
        its failure is escalated as permanent.
    backoff_base, backoff_factor, backoff_max:
        Attempt *k* (1-based failure count) waits
        ``min(backoff_base * backoff_factor**(k-1), backoff_max)``
        seconds, scaled by the jitter term, before re-running.
    jitter:
        Fractional spread added on top of the exponential delay.  The
        draw is a deterministic hash of ``(jitter_seed, task key,
        attempt)`` — no two batches thundering-herd the pool, yet every
        replay waits the identical schedule.
    batch_timeout:
        Wall-clock seconds one batch may run before the pool is declared
        hung and rebuilt.  ``None`` (default) disables the watchdog.
    poll_interval:
        Upper bound on how long the collection loop blocks between
        checks of the timeout watchdog.
    shrink_after:
        Pool restarts tolerated at a given width before the worker count
        halves; a restart at width one degrades to serial execution.
    jitter_seed:
        Seed folded into the jitter hash.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    batch_timeout: Optional[float] = None
    poll_interval: float = 0.25
    shrink_after: int = 2
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter:
            raise ConfigurationError("jitter must be >= 0")
        if self.batch_timeout is not None and self.batch_timeout <= 0:
            raise ConfigurationError("batch_timeout must be positive or None")
        if self.shrink_after < 1:
            raise ConfigurationError("shrink_after must be >= 1")

    @classmethod
    def from_environment(cls, **defaults: object) -> "RetryPolicy":
        """A policy honouring the ``REPRO_RETRY_*`` tuning knobs.

        ``REPRO_RETRY_MAX_ATTEMPTS``, ``REPRO_RETRY_BACKOFF`` (the base
        delay) and ``REPRO_BATCH_TIMEOUT`` override the keyword
        defaults, mirroring how ``StudyConfig.from_environment`` treats
        ``REPRO_SUBJECTS`` / ``REPRO_WORKERS``.
        """
        params: dict = dict(defaults)
        max_attempts = env_int("REPRO_RETRY_MAX_ATTEMPTS")
        if max_attempts is not None:
            params["max_attempts"] = max_attempts
        backoff = env_float("REPRO_RETRY_BACKOFF")
        if backoff is not None:
            params["backoff_base"] = backoff
        timeout = env_float("REPRO_BATCH_TIMEOUT")
        if timeout is not None:
            params["batch_timeout"] = timeout if timeout > 0 else None
        return cls(**params)  # type: ignore[arg-type]

    def backoff_for(self, task_key: str, attempt: int) -> float:
        """Deterministic pre-retry delay after failure number ``attempt``."""
        delay = min(
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
            self.backoff_max,
        )
        spread = faults.digest_fraction(self.jitter_seed, task_key, attempt)
        return delay * (1.0 + self.jitter * spread)


class RestartBudget:
    """Counts restarts until a tolerance is exhausted.

    The escalation primitive shared by :class:`BatchSupervisor` (where
    an exhausted budget halves the pool width, then degrades to serial)
    and the serving worker pool in :mod:`repro.service.workers` (where
    shard ownership is static, so exhaustion degrades straight to the
    in-process path).  :meth:`note_restart` returns ``True`` when the
    tolerance is spent; :meth:`reset` rearms it after the caller has
    taken its escalation step.
    """

    __slots__ = ("tolerance", "restarts")

    def __init__(self, tolerance: int) -> None:
        if tolerance < 1:
            raise ConfigurationError("restart tolerance must be >= 1")
        self.tolerance = tolerance
        self.restarts = 0

    def note_restart(self) -> bool:
        """Record one restart; True when the budget is now exhausted."""
        self.restarts += 1
        return self.restarts >= self.tolerance

    def reset(self) -> None:
        """Rearm the budget after the caller's escalation step."""
        self.restarts = 0


def default_task_keys(label: str, count: int) -> List[str]:
    """Stable task keys ``{label}-batch0000...`` for an unlabeled map."""
    return [f"{label}-batch{i:04d}" for i in range(count)]


def _supervised_call(
    func: Callable[[T], R], batch: T, task_key: str
) -> Tuple[R, float]:
    """Worker body: fault hook + timed execution (module-level, picklable)."""
    faults.perturb(task_key)
    start = time.perf_counter()
    return func(batch), time.perf_counter() - start


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, terminating workers that may be hung.

    ``ProcessPoolExecutor`` has no public kill switch; terminating the
    worker processes directly is the only way to reclaim a pool whose
    worker is asleep past the batch timeout.  ``_processes`` has been
    stable across CPython 3.8–3.13; if it ever disappears the fallback
    is a plain (potentially blocking) shutdown.
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, AttributeError):  # pragma: no cover - racing exit
                pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - cancel_futures needs py3.9
        pool.shutdown(wait=False)


class _TaskState:
    """Parent-side bookkeeping for one batch."""

    __slots__ = ("index", "key", "attempts", "ready_at")

    def __init__(self, index: int, key: str) -> None:
        self.index = index
        self.key = key
        self.attempts = 0  # failed executions so far
        self.ready_at = 0.0  # monotonic time before which not to resubmit


class BatchSupervisor:
    """One supervised execution of ``func`` over a batch list.

    Instantiated per call by :func:`supervised_map_batched`; holds the
    mutable run state (queue, inflight futures, ordered-emission
    cursor) so the collection loop stays readable.
    """

    def __init__(
        self,
        func: Callable[[T], R],
        batches: Sequence[T],
        *,
        n_workers: int,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple = (),
        on_result: Optional[Callable[[R], None]] = None,
        policy: Optional[RetryPolicy] = None,
        task_keys: Optional[Sequence[str]] = None,
        fail_fast: bool = True,
        metric: str = "parallel.batch_seconds",
    ) -> None:
        self.func = func
        self.batches = batches
        self.initializer = initializer
        self.initargs = initargs
        self.on_result = on_result
        self.policy = policy if policy is not None else RetryPolicy()
        if task_keys is None:
            task_keys = default_task_keys("task", len(batches))
        if len(task_keys) != len(batches):
            raise ConfigurationError(
                f"task_keys length {len(task_keys)} != batches {len(batches)}"
            )
        self.task_keys = list(task_keys)
        self.fail_fast = fail_fast
        self.metric = metric
        # ``n_workers`` arrives pre-resolved (callers run it through
        # resolve_worker_count); <= 1 means in-process serial execution.
        self.workers = max(0, int(n_workers))
        self.recorder = get_recorder()

        n = len(batches)
        self.results: List[Optional[R]] = [None] * n
        self.finished = [False] * n
        self.skipped = [False] * n
        self._emit_cursor = 0
        self._remaining = n
        self._queue: List[_TaskState] = [
            _TaskState(i, key) for i, key in enumerate(self.task_keys)
        ]
        self._inflight: dict = {}  # future -> (_TaskState, submitted_at)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._restart_budget = RestartBudget(self.policy.shrink_after)
        self.degraded = False

    # ------------------------------------------------------------------
    # Result plumbing
    # ------------------------------------------------------------------
    def _record(self, task: _TaskState, result: R) -> None:
        self.results[task.index] = result
        self.finished[task.index] = True
        self._remaining -= 1
        self._flush_ordered()

    def _record_skip(self, task: _TaskState, exc: BaseException) -> None:
        self.finished[task.index] = True
        self.skipped[task.index] = True
        self._remaining -= 1
        if self.recorder.active:
            self.recorder.count("supervisor.skipped")
        _log.warning(
            "batch skipped after permanent failure",
            extra={"data": {"task": task.key, "error": repr(exc)}},
        )
        self._flush_ordered()

    def _flush_ordered(self) -> None:
        """Fire ``on_result`` for every finished prefix batch, in order.

        A skipped batch (``fail_fast=False``) fires with ``None`` so
        callers keeping their own index bookkeeping stay aligned.
        """
        while self._emit_cursor < len(self.finished) and self.finished[
            self._emit_cursor
        ]:
            if self.on_result is not None:
                self.on_result(self.results[self._emit_cursor])
            self._emit_cursor += 1

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _settle_inflight(self) -> None:
        """Let healthy inflight batches finish before a fail-fast abort.

        Their results still stream through ``on_result`` (checkpoints!),
        so aborting on one bad batch never discards work that was about
        to complete.  Bounded by ``batch_timeout`` when set — a hung
        batch must not turn an abort into a hang — else by
        :data:`ABORT_SETTLE_SECONDS`.
        """
        if not self._inflight:
            return
        grace = self.policy.batch_timeout
        if grace is None:
            grace = ABORT_SETTLE_SECONDS
        wait(list(self._inflight), timeout=grace)

    def _escalate(self, task: _TaskState, exc: BaseException) -> None:
        """A batch is out of options: abort the run or record a skip."""
        if self.fail_fast:
            self._settle_inflight()
            self._drain_completed()
            self._teardown()
            if isinstance(exc, Exception):
                raise exc
            raise PermanentError(
                f"batch {task.key!r} failed with {exc!r}"
            ) from None
        self._record_skip(task, exc)

    def _retry(self, task: _TaskState, cause: str) -> None:
        """Queue one more attempt of a failed batch, with backoff."""
        task.attempts += 1
        backoff = self.policy.backoff_for(task.key, task.attempts)
        task.ready_at = time.monotonic() + backoff
        if self.recorder.active:
            self.recorder.count("supervisor.retries")
            self.recorder.observe("supervisor.backoff_seconds", backoff)
        _log.info(
            "batch retry scheduled",
            extra={
                "data": {
                    "task": task.key,
                    "attempt": task.attempts,
                    "cause": cause,
                    "backoff_s": round(backoff, 4),
                }
            },
        )
        self._queue.append(task)

    def _handle_failure(self, task: _TaskState, exc: BaseException) -> None:
        kind = classify_failure(exc)
        if kind == "permanent" or task.attempts + 1 >= self.policy.max_attempts:
            self._escalate(task, exc)
        else:
            self._retry(task, cause=type(exc).__name__)

    def _drain_completed(self) -> None:
        """Collect every already-finished inflight future (no blocking).

        Called before an error propagates so completed work — results
        the caller may have paid minutes for — is never discarded.
        """
        for future in list(self._inflight):
            if not future.done():
                continue
            task, _ = self._inflight.pop(future)
            try:
                result, seconds = future.result()
            except BaseException:
                self._queue.append(task)
            else:
                if self.recorder.active:
                    self.recorder.observe(self.metric, seconds)
                self._record(task, result)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _teardown(self) -> None:
        if self._pool is not None:
            _stop_pool(self._pool)
            self._pool = None
        self._inflight.clear()

    def _restart_pool(self, reason: str) -> None:
        """Kill the pool, requeue unfinished batches, maybe shrink."""
        self._drain_completed()
        for future, (task, _) in list(self._inflight.items()):
            if self.recorder.active:
                self.recorder.count("supervisor.requeued")
            self._queue.append(task)
        self._inflight.clear()
        if self._pool is not None:
            _stop_pool(self._pool)
            self._pool = None
        exhausted = self._restart_budget.note_restart()
        if self.recorder.active:
            self.recorder.count("supervisor.pool_restarts")
        _log.warning(
            "process pool restarted",
            extra={
                "data": {
                    "reason": reason,
                    "workers": self.workers,
                    "restarts_at_width": self._restart_budget.restarts,
                }
            },
        )
        if exhausted:
            if self.workers > 1:
                self.workers = max(1, self.workers // 2)
                self._restart_budget.reset()
                if self.recorder.active:
                    self.recorder.gauge("supervisor.workers", float(self.workers))
                _log.warning(
                    "pool width shrunk after repeated breakage",
                    extra={"data": {"workers": self.workers}},
                )
            else:
                self.degraded = True
                if self.recorder.active:
                    self.recorder.gauge("supervisor.degraded", 1.0)
                _log.warning(
                    "degrading to in-process serial execution",
                    extra={"data": {"remaining": self._remaining}},
                )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        return self._pool

    def _submit_ready(self, now: float) -> bool:
        """Submit queued batches whose backoff has elapsed; False on break."""
        pool = self._ensure_pool()
        while self._queue and len(self._inflight) < self.workers:
            pick = None
            for k, task in enumerate(self._queue):
                if task.ready_at <= now:
                    pick = k
                    break
            if pick is None:
                break
            task = self._queue.pop(pick)
            try:
                future = pool.submit(
                    _supervised_call,
                    self.func,
                    self.batches[task.index],
                    task.key,
                )
            except (BrokenProcessPool, RuntimeError):
                self._queue.append(task)
                return False
            self._inflight[future] = (task, now)
        return True

    # ------------------------------------------------------------------
    # Serial paths
    # ------------------------------------------------------------------
    def _run_one_serial(self, task: _TaskState) -> None:
        """Execute one batch in-process under the retry policy."""
        while True:
            start = time.perf_counter()
            try:
                result = self.func(self.batches[task.index])
            except Exception as exc:
                if (
                    classify_failure(exc) == "permanent"
                    or task.attempts + 1 >= self.policy.max_attempts
                ):
                    self._escalate(task, exc)
                    return
                task.attempts += 1
                backoff = self.policy.backoff_for(task.key, task.attempts)
                if self.recorder.active:
                    self.recorder.count("supervisor.retries")
                    self.recorder.observe("supervisor.backoff_seconds", backoff)
                time.sleep(backoff)
                continue
            if self.recorder.active:
                self.recorder.observe(self.metric, time.perf_counter() - start)
            self._record(task, result)
            return

    def _run_serial(self) -> List[Optional[R]]:
        """The no-pool path (``n_workers`` <= 1, or degraded remainder)."""
        if self.initializer is not None:
            self.initializer(*self.initargs)
        for task in sorted(self._queue, key=lambda t: t.index):
            self._run_one_serial(task)
        self._queue.clear()
        return self.results

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> List[Optional[R]]:
        """Execute every batch; the public entry point."""
        if self.workers <= 1 or len(self.batches) <= 1:
            return self._run_serial()
        faults.ensure_ledger()
        if self.recorder.active:
            self.recorder.gauge("supervisor.workers", float(self.workers))
        try:
            while self._remaining:
                if self.degraded:
                    # Last resort: finish the remainder in-process (the
                    # initializer reruns here so worker state exists).
                    if self.initializer is not None:
                        self.initializer(*self.initargs)
                    for task in sorted(self._queue, key=lambda t: t.index):
                        self._run_one_serial(task)
                    self._queue.clear()
                    break
                now = time.monotonic()
                if not self._submit_ready(now):
                    self._restart_pool("broken pool on submit")
                    continue
                if not self._inflight:
                    if self._queue:
                        sleep_for = max(
                            0.0,
                            min(t.ready_at for t in self._queue) - now,
                        )
                        time.sleep(min(sleep_for, self.policy.poll_interval))
                        continue
                    break  # inconsistent remainder; nothing left to run
                self._collect(now)
        finally:
            self._teardown()
        return self.results

    def _wait_timeout(self, now: float) -> Optional[float]:
        """How long the next ``wait`` may block without missing an event."""
        candidates = []
        if self.policy.batch_timeout is not None:
            earliest = min(at for _, at in self._inflight.values())
            candidates.append(earliest + self.policy.batch_timeout - now)
            candidates.append(self.policy.poll_interval)
        for task in self._queue:
            # Ready tasks blocked on a free slot are woken by the next
            # completion; only future ready_at times need a timed wake.
            if task.ready_at > now:
                candidates.append(task.ready_at - now)
        if not candidates:
            return None
        return max(0.0, min(candidates))

    def _collect(self, now: float) -> None:
        """Wait for one completion / timeout tick and process it."""
        done, _ = wait(
            list(self._inflight),
            timeout=self._wait_timeout(now),
            return_when=FIRST_COMPLETED,
        )
        broken = False
        for future in done:
            task, _ = self._inflight.pop(future)
            try:
                result, seconds = future.result()
            except BrokenProcessPool:
                broken = True
                self._fail_or_requeue_after_break(task)
            except Exception as exc:
                self._handle_failure(task, exc)
            else:
                if self.recorder.active:
                    self.recorder.observe(self.metric, seconds)
                self._record(task, result)
        if broken:
            self._restart_pool("broken process pool")
            return
        if self.policy.batch_timeout is None:
            return
        now = time.monotonic()
        expired = [
            (future, task)
            for future, (task, at) in self._inflight.items()
            if now - at > self.policy.batch_timeout and not future.done()
        ]
        if not expired:
            return
        # A hung batch cannot be cancelled individually; the pool goes.
        for future, task in expired:
            self._inflight.pop(future, None)
            if self.recorder.active:
                self.recorder.count("supervisor.timeouts")
            if task.attempts + 1 >= self.policy.max_attempts:
                self._escalate(
                    task,
                    PermanentError(
                        f"batch {task.key!r} exceeded the "
                        f"{self.policy.batch_timeout:g}s timeout "
                        f"{task.attempts + 1} times"
                    ),
                )
            else:
                self._retry(task, cause="timeout")
        self._restart_pool("batch timeout")

    def _fail_or_requeue_after_break(self, task: _TaskState) -> None:
        """A batch that was inflight when its pool died."""
        task.attempts += 1
        if task.attempts >= self.policy.max_attempts:
            self._escalate(
                task,
                PermanentError(
                    f"batch {task.key!r} was inflight through "
                    f"{task.attempts} pool failures"
                ),
            )
        else:
            if self.recorder.active:
                self.recorder.count("supervisor.retries")
            task.ready_at = time.monotonic() + self.policy.backoff_for(
                task.key, task.attempts
            )
            self._queue.append(task)


def supervised_map_batched(
    func: Callable[[T], R],
    batches: Sequence[T],
    *,
    n_workers: int = 0,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
    on_result: Optional[Callable[[R], None]] = None,
    policy: Optional[RetryPolicy] = None,
    task_keys: Optional[Sequence[str]] = None,
    fail_fast: bool = True,
    metric: str = "parallel.batch_seconds",
) -> List[Optional[R]]:
    """Map ``func`` over pre-formed batches under supervision.

    The fault-tolerant engine behind
    :func:`~repro.runtime.parallel.parallel_map_batched`; see
    :class:`BatchSupervisor` for the mechanics and :class:`RetryPolicy`
    for the knobs.  Returns per-batch results in input order; with
    ``fail_fast=False`` a permanently failed batch yields ``None`` (and
    a ``supervisor.skipped`` count) instead of aborting the run.
    """
    return BatchSupervisor(
        func,
        batches,
        n_workers=n_workers,
        initializer=initializer,
        initargs=initargs,
        on_result=on_result,
        policy=policy,
        task_keys=task_keys,
        fail_fast=fail_fast,
        metric=metric,
    ).run()


__all__ = [
    "RetryPolicy",
    "RestartBudget",
    "BatchSupervisor",
    "supervised_map_batched",
    "default_task_keys",
]
