"""Shared-memory template store: exact round-trips, in and out of pools."""

import numpy as np
import pytest

from repro.runtime import (
    ConfigurationError,
    SharedTemplateStore,
    SharedTemplateView,
    parallel_map_batched,
)

_VIEW = {}


def _attach_view(handle):
    """Pool initializer: map the shared block once per worker."""
    _VIEW["view"] = SharedTemplateView.attach(handle)


def _fetch_batch(keys):
    """Pool task: pull each impression and return its raw arrays."""
    view = _VIEW["view"]
    out = []
    for key in keys:
        impression = view.get(*key)
        template = impression.template
        out.append(
            (
                key,
                impression.nfiq,
                template.positions_px().tolist(),
                template.angles().tolist(),
            )
        )
    return out


def _all_keys(collection):
    return [
        (imp.subject_id, imp.finger_label, imp.device_id, imp.set_index)
        for imp in collection
    ]


class TestRoundTrip:
    def test_view_serves_identical_templates(self, tiny_collection):
        with SharedTemplateStore.pack(tiny_collection) as store:
            view = SharedTemplateView.attach(store.handle())
            assert len(view) == len(_all_keys(tiny_collection))
            for imp in tiny_collection:
                served = view.get(
                    imp.subject_id,
                    imp.finger_label,
                    imp.device_id,
                    imp.set_index,
                )
                assert served.nfiq == imp.nfiq
                assert (
                    served.template.minutiae == imp.template.minutiae
                )
                assert (
                    served.template.resolution_dpi
                    == imp.template.resolution_dpi
                )
            view.close()

    def test_view_memoizes_reconstruction(self, tiny_collection):
        with SharedTemplateStore.pack(tiny_collection) as store:
            view = SharedTemplateView.attach(store.handle())
            first = view.get(0, "right_index", "D0", 0)
            again = view.get(0, "right_index", "D0", 0)
            assert first is again
            view.close()

    def test_missing_key_raises(self, tiny_collection):
        with SharedTemplateStore.pack(tiny_collection) as store:
            view = SharedTemplateView.attach(store.handle())
            with pytest.raises(ConfigurationError):
                view.get(9999, "right_index", "D0", 0)
            view.close()

    def test_destroy_is_idempotent(self, tiny_collection):
        store = SharedTemplateStore.pack(tiny_collection)
        store.destroy()
        store.destroy()


class TestPoolRoundTrip:
    def test_two_worker_pool_reads_exact_payload(
        self, tiny_collection, monkeypatch
    ):
        """Workers mapping the block must see byte-exact template data.

        ``resolve_worker_count`` caps pools at the CPU count, which on a
        single-core runner would silently degrade this to the in-process
        fallback; pin it to 2 so the test always crosses real process
        boundaries.
        """
        monkeypatch.setattr(
            "repro.runtime.parallel.resolve_worker_count", lambda n: n
        )
        keys = _all_keys(tiny_collection)
        half = len(keys) // 2
        batches = [keys[:half], keys[half:]]
        with SharedTemplateStore.pack(tiny_collection) as store:
            parts = parallel_map_batched(
                _fetch_batch,
                batches,
                n_workers=2,
                initializer=_attach_view,
                initargs=(store.handle(),),
            )
        fetched = {row[0]: row[1:] for part in parts for row in part}
        assert set(fetched) == set(keys)
        for imp in tiny_collection:
            key = (
                imp.subject_id,
                imp.finger_label,
                imp.device_id,
                imp.set_index,
            )
            nfiq, positions, angles = fetched[key]
            assert nfiq == imp.nfiq
            np.testing.assert_array_equal(
                np.asarray(positions), imp.template.positions_px()
            )
            np.testing.assert_array_equal(
                np.asarray(angles), imp.template.angles()
            )
