"""Micro-batching admission queue: coalescing, overload, deadlines."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.runtime.errors import ConfigurationError
from repro.service.batching import (
    BatchingConfig,
    DeadlineExceededError,
    MicroBatcher,
    ServiceOverloadError,
)
from repro.service.stats import ServiceStats


class RecordingMatcher:
    """Scores each pair as its probe marker; remembers dispatch sizes.

    The batcher treats templates as opaque, so plain ints stand in —
    these tests exercise queueing mechanics, not matching (parity with
    the real matcher is covered separately below).  ``score_pairs`` is
    the batched dispatch; ``match`` is the scalar path the unbatched
    control arm uses (recorded as a size-1 dispatch).
    """

    def __init__(self):
        self.batch_sizes = []

    def score_pairs(self, pairs):
        self.batch_sizes.append(len(pairs))
        return np.asarray([float(probe) for probe, _gallery in pairs])

    def match(self, probe, _gallery):
        self.batch_sizes.append(1)
        return float(probe)


class SlowMatcher(RecordingMatcher):
    """Blocks the single worker thread to force queueing behind it."""

    def __init__(self, delay_s):
        super().__init__()
        self.delay_s = delay_s

    def score_pairs(self, pairs):
        time.sleep(self.delay_s)
        return super().score_pairs(pairs)

    def match(self, probe, gallery):
        time.sleep(self.delay_s)
        return super().match(probe, gallery)


async def _with_batcher(matcher, config, body):
    batcher = MicroBatcher(matcher, config=config)
    await batcher.start()
    try:
        return await body(batcher)
    finally:
        await batcher.stop()


class TestConfig:
    def test_defaults(self):
        config = BatchingConfig()
        assert config.max_batch == 32
        assert config.max_wait_ms == 2.0
        assert config.queue_depth == 256
        assert config.timeout_s == 30.0
        assert config.enabled is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_ms": -1.0},
            {"queue_depth": 0},
            {"timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchingConfig(**kwargs)

    def test_environment_overrides_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "8")
        monkeypatch.setenv("REPRO_SERVE_MAX_WAIT_MS", "0.5")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_DEPTH", "16")
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT_S", "4.5")
        monkeypatch.setenv("REPRO_SERVE_BATCHING", "0")
        config = BatchingConfig.from_environment(max_batch=99)
        assert config.max_batch == 8
        assert config.max_wait_ms == 0.5
        assert config.queue_depth == 16
        assert config.timeout_s == 4.5
        assert config.enabled is False

    def test_environment_defaults_pass_through(self, monkeypatch):
        for name in (
            "REPRO_SERVE_MAX_BATCH",
            "REPRO_SERVE_MAX_WAIT_MS",
            "REPRO_SERVE_QUEUE_DEPTH",
            "REPRO_SERVE_TIMEOUT_S",
            "REPRO_SERVE_BATCHING",
        ):
            monkeypatch.delenv(name, raising=False)
        config = BatchingConfig.from_environment(max_batch=7, enabled=False)
        assert config.max_batch == 7
        assert config.enabled is False


class TestCoalescing:
    def test_concurrent_requests_share_batches(self):
        matcher = RecordingMatcher()
        config = BatchingConfig(max_batch=16, max_wait_ms=50.0)

        async def body(batcher):
            return await asyncio.gather(
                *(batcher.score([(float(k), None)]) for k in range(8))
            )

        results = asyncio.run(_with_batcher(matcher, config, body))
        # Each request got its own score back, in its own order...
        for k, scores in enumerate(results):
            np.testing.assert_array_equal(scores, [float(k)])
        # ...but the matcher saw far fewer dispatches than requests.
        assert sum(matcher.batch_sizes) == 8
        assert max(matcher.batch_sizes) >= 2

    def test_max_batch_caps_dispatch_size(self):
        matcher = RecordingMatcher()
        config = BatchingConfig(max_batch=3, max_wait_ms=50.0)

        async def body(batcher):
            pairs = [(float(k), None) for k in range(10)]
            return await batcher.score(pairs)

        scores = asyncio.run(_with_batcher(matcher, config, body))
        np.testing.assert_array_equal(scores, np.arange(10, dtype=float))
        assert max(matcher.batch_sizes) <= 3
        assert sum(matcher.batch_sizes) == 10

    def test_empty_request_short_circuits(self):
        matcher = RecordingMatcher()

        async def body(batcher):
            return await batcher.score([])

        scores = asyncio.run(_with_batcher(matcher, BatchingConfig(), body))
        assert scores.size == 0
        assert matcher.batch_sizes == []

    def test_parity_with_direct_dispatch(self, tiny_collection, matcher):
        pairs = [
            (
                tiny_collection.get(sid, "right_index", "D1", 1).template,
                tiny_collection.get(sid, "right_index", "D0", 0).template,
            )
            for sid in range(6)
        ]

        async def body(batcher):
            return await batcher.score(pairs)

        batched = asyncio.run(
            _with_batcher(matcher, BatchingConfig(max_wait_ms=5.0), body)
        )
        np.testing.assert_array_equal(batched, matcher.score_pairs(pairs))


class TestOverload:
    def test_oversized_request_refused(self):
        matcher = RecordingMatcher()
        config = BatchingConfig(queue_depth=2, max_wait_ms=100.0)

        async def body(batcher):
            with pytest.raises(ServiceOverloadError):
                await batcher.score([(1.0, None), (2.0, None), (3.0, None)])

        asyncio.run(_with_batcher(matcher, config, body))
        assert matcher.batch_sizes == []

    def test_overload_is_recorded(self):
        stats = ServiceStats()
        config = BatchingConfig(queue_depth=1, max_wait_ms=100.0)

        async def body():
            batcher = MicroBatcher(RecordingMatcher(), stats=stats, config=config)
            await batcher.start()
            try:
                with pytest.raises(ServiceOverloadError):
                    await batcher.score([(1.0, None), (2.0, None)])
            finally:
                await batcher.stop()

        asyncio.run(body())
        assert stats.overloads == 1


class TestDeadlines:
    def test_queued_job_expires_behind_slow_batch(self):
        matcher = SlowMatcher(0.4)
        config = BatchingConfig(max_wait_ms=0.0, timeout_s=30.0)

        async def body(batcher):
            first = asyncio.ensure_future(batcher.score([(1.0, None)]))
            await asyncio.sleep(0.05)  # let the slow batch occupy the worker
            with pytest.raises(DeadlineExceededError):
                await batcher.score([(2.0, None)], timeout_s=0.1)
            return await first

        scores = asyncio.run(_with_batcher(matcher, config, body))
        np.testing.assert_array_equal(scores, [1.0])
        assert matcher.batch_sizes == [1]  # the expired job never dispatched

    def test_unbatched_deadline(self):
        matcher = SlowMatcher(0.5)
        config = BatchingConfig(enabled=False)

        async def body(batcher):
            with pytest.raises(DeadlineExceededError):
                await batcher.score([(1.0, None)], timeout_s=0.05)

        asyncio.run(_with_batcher(matcher, config, body))


class TestDisabled:
    def test_disabled_mode_dispatches_per_comparison(self):
        matcher = RecordingMatcher()
        config = BatchingConfig(enabled=False, max_wait_ms=50.0)

        async def body(batcher):
            singles = await asyncio.gather(
                *(batcher.score([(float(k), None)]) for k in range(5))
            )
            fanout = await batcher.score([(7.0, None), (8.0, None)])
            return singles, fanout

        singles, fanout = asyncio.run(_with_batcher(matcher, config, body))
        for k, scores in enumerate(singles):
            np.testing.assert_array_equal(scores, [float(k)])
        np.testing.assert_array_equal(fanout, [7.0, 8.0])
        # Fully unbatched: every comparison is its own scalar dispatch,
        # even within a single multi-pair request.
        assert matcher.batch_sizes == [1] * 7

    def test_matcher_runs_off_the_event_loop(self):
        """The worker executor must not block the loop thread."""
        loop_thread = threading.current_thread()
        seen = []

        class ThreadSpy(RecordingMatcher):
            def score_pairs(self, pairs):
                seen.append(threading.current_thread())
                return super().score_pairs(pairs)

        async def body(batcher):
            await batcher.score([(1.0, None)])

        asyncio.run(_with_batcher(ThreadSpy(), BatchingConfig(), body))
        assert seen and all(t is not loop_thread for t in seen)


class TestStatsIntegration:
    def test_batches_recorded(self):
        stats = ServiceStats()
        config = BatchingConfig(max_batch=16, max_wait_ms=50.0)

        async def body():
            batcher = MicroBatcher(RecordingMatcher(), stats=stats, config=config)
            await batcher.start()
            try:
                await asyncio.gather(
                    *(batcher.score([(float(k), None)]) for k in range(6))
                )
            finally:
                await batcher.stop()

        asyncio.run(body())
        assert stats.batched_jobs == 6
        assert 1 <= stats.batches < 6
        assert stats.max_batch_size() >= 2
