"""Write-ahead log: framing, replay rules, compaction, tailing, chaos.

The durability contract under test: an acked append survives anything
short of media rot; a torn tail (the crash shape) is truncated silently;
mid-log corruption is refused loudly; a follower tailing the same
directory sees every completed record exactly once.
"""

import json
import os
import struct
import time
import zlib

import numpy as np
import pytest

from repro.runtime.errors import ConfigurationError
from repro.runtime.wal import (
    DEFAULT_KEEP_SEGMENTS,
    DEFAULT_SEGMENT_BYTES,
    HEADER,
    WalCorruptionError,
    WalError,
    WalFollower,
    WalRecord,
    WriteAheadLog,
    decode_array,
    encode_array,
)


def _wal(path, **kwargs):
    kwargs.setdefault("sync", "never")  # fast; durability knobs get their own tests
    return WriteAheadLog(path, **kwargs)


def _flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestFraming:
    def test_append_then_replay_round_trip(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        wal.append("enroll", {"identity": "a", "n": 1})
        wal.append("enroll", {"identity": "b", "n": 2})
        wal.append("delete", {"identity": "a"})
        wal.close()

        records = _wal(tmp_path / "wal").replay()
        assert [r.lsn for r in records] == [1, 2, 3]
        assert [r.op for r in records] == ["enroll", "enroll", "delete"]
        assert records[1].data == {"identity": "b", "n": 2}

    def test_lsns_are_monotonic_from_one(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        assert wal.append("op", {}) == 1
        assert wal.append("op", {}) == 2
        assert wal.last_lsn == 2

    def test_array_payloads_replay_bit_identical(self, tmp_path):
        array = np.arange(12, dtype=np.float32).reshape(3, 4) * np.pi
        wal = _wal(tmp_path / "wal")
        wal.append("enroll", {"positions": encode_array(array)})
        wal.close()

        [record] = _wal(tmp_path / "wal").replay()
        decoded = decode_array(record.data["positions"])
        assert decoded.dtype == array.dtype
        assert np.array_equal(decoded, array)

    def test_decode_array_rejects_junk(self):
        with pytest.raises(WalError):
            decode_array({"dtype": "<f4", "shape": [2], "data": "!!notb64!!"})
        with pytest.raises(WalError):
            decode_array({"dtype": "<f4"})

    def test_empty_log_replays_empty(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        assert wal.replay() == []
        assert wal.last_lsn == 0


class TestRotation:
    def test_small_segments_rotate(self, tmp_path):
        wal = _wal(tmp_path / "wal", segment_bytes=64)
        for i in range(8):
            wal.append("op", {"i": i, "pad": "x" * 40})
        wal.close()
        assert len(wal.segments()) > 1
        assert wal.counters["rotations"] >= 1

        # Segment names carry their first LSN; replay stitches them.
        firsts = [int(p.name[:-4]) for p in wal.segments()]
        assert firsts == sorted(firsts) and firsts[0] == 1
        records = _wal(tmp_path / "wal", segment_bytes=64).replay()
        assert [r.lsn for r in records] == list(range(1, 9))

    def test_append_continues_across_reopen(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        wal.append("op", {"i": 0})
        wal.close()
        reborn = _wal(tmp_path / "wal")
        reborn.replay()
        assert reborn.append("op", {"i": 1}) == 2

    def test_bad_sync_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path / "wal", sync="sometimes")
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path / "wal", segment_bytes=0)
        with pytest.raises(ConfigurationError):
            WriteAheadLog(tmp_path / "wal", keep_segments=-1)

    def test_defaults_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WAL_SYNC", "rotate")
        monkeypatch.setenv("REPRO_WAL_SEGMENT_BYTES", "128")
        monkeypatch.setenv("REPRO_WAL_KEEP_SEGMENTS", "1")
        wal = WriteAheadLog(tmp_path / "wal")
        assert wal.sync == "rotate"
        assert wal.segment_bytes == 128
        assert wal.keep_segments == 1


class TestReplayRules:
    def _write_then_damage_tail(self, tmp_path, keep_bytes):
        wal = _wal(tmp_path / "wal")
        for i in range(3):
            wal.append("op", {"i": i})
        wal.close()
        [segment] = wal.segments()
        size = segment.stat().st_size
        with open(segment, "r+b") as handle:
            handle.truncate(size - keep_bytes)
        return segment

    def test_torn_tail_truncated(self, tmp_path):
        # Chop half of the final frame: the classic interrupted append.
        self._write_then_damage_tail(tmp_path, keep_bytes=7)
        reborn = _wal(tmp_path / "wal")
        records = reborn.replay()
        assert [r.lsn for r in records] == [1, 2]
        assert reborn.counters["torn_truncated"] == 1
        # The truncation is physical: a second replay is clean.
        again = _wal(tmp_path / "wal")
        assert [r.lsn for r in again.replay()] == [1, 2]
        assert again.counters["torn_truncated"] == 0

    def test_torn_tail_does_not_burn_the_lsn(self, tmp_path):
        self._write_then_damage_tail(tmp_path, keep_bytes=7)
        reborn = _wal(tmp_path / "wal")
        reborn.replay()
        assert reborn.append("op", {"again": True}) == 3

    def test_crc_failure_at_eof_is_torn(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        for i in range(2):
            wal.append("op", {"i": i})
        wal.close()
        [segment] = wal.segments()
        _flip_byte(segment, segment.stat().st_size - 2)
        records = _wal(tmp_path / "wal").replay()
        assert [r.lsn for r in records] == [1]

    def test_mid_log_corruption_refused(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        for i in range(3):
            wal.append("op", {"i": i})
        wal.close()
        # Flip a payload byte of the FIRST frame: log continues after it.
        [segment] = wal.segments()
        _flip_byte(segment, HEADER.size + 4)
        with pytest.raises(WalCorruptionError, match="mid-log"):
            _wal(tmp_path / "wal").replay()

    def test_corrupt_sealed_segment_refused(self, tmp_path):
        wal = _wal(tmp_path / "wal", segment_bytes=64)
        for i in range(8):
            wal.append("op", {"i": i, "pad": "x" * 40})
        wal.close()
        sealed = wal.segments()[0]
        with open(sealed, "r+b") as handle:
            handle.truncate(sealed.stat().st_size - 3)
        with pytest.raises(WalCorruptionError):
            _wal(tmp_path / "wal", segment_bytes=64).replay()

    def test_lsn_gap_refused(self, tmp_path):
        path = tmp_path / "wal"
        path.mkdir()
        frames = b""
        for lsn in (1, 3):  # skip 2
            payload = json.dumps({"lsn": lsn, "op": "op"}).encode()
            frames += HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        (path / f"{1:016d}.wal").write_bytes(frames)
        with pytest.raises(WalCorruptionError, match="sequence"):
            _wal(path).replay()

    def test_valid_frame_with_garbage_json_refused(self, tmp_path):
        path = tmp_path / "wal"
        path.mkdir()
        payload = b"not json at all"
        frame = HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        (path / f"{1:016d}.wal").write_bytes(frame)
        with pytest.raises(WalCorruptionError):
            _wal(path).replay()


class TestCheckpoint:
    def test_checkpoint_persists_and_clamps(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        for i in range(3):
            wal.append("op", {"i": i})
        wal.checkpoint(99)  # clamps to last_lsn
        assert wal.checkpoint_lsn() == 3
        assert _wal(tmp_path / "wal").checkpoint_lsn() == 3

    def test_compaction_respects_keep_segments(self, tmp_path):
        wal = _wal(tmp_path / "wal", segment_bytes=64, keep_segments=0)
        for i in range(12):
            wal.append("op", {"i": i, "pad": "x" * 40})
        before = len(wal.segments())
        assert before > 2
        removed = wal.checkpoint(wal.last_lsn)
        assert removed == before - 1  # active segment always survives
        assert len(wal.segments()) == 1

        kept = _wal(tmp_path / "wal2", segment_bytes=64, keep_segments=2)
        for i in range(12):
            kept.append("op", {"i": i, "pad": "x" * 40})
        kept.checkpoint(kept.last_lsn)
        assert len(kept.segments()) >= 3  # active + 2 retained

    def test_replay_after_compaction_continues_lsns(self, tmp_path):
        wal = _wal(tmp_path / "wal", segment_bytes=64, keep_segments=0)
        for i in range(12):
            wal.append("op", {"i": i, "pad": "x" * 40})
        last = wal.last_lsn
        wal.checkpoint(last)
        wal.close()

        reborn = _wal(tmp_path / "wal", segment_bytes=64, keep_segments=0)
        records = reborn.replay()
        assert records and records[-1].lsn == last
        assert reborn.append("op", {"next": True}) == last + 1

    def test_stats_shape(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        wal.append("op", {})
        stats = wal.stats()
        assert stats["last_lsn"] == 1
        assert stats["segments"] == 1
        assert stats["size_bytes"] > 0
        assert stats["appends"] == 1
        for key in ("fsyncs", "rotations", "checkpoints", "replayed",
                    "torn_truncated", "segments_removed", "bytes"):
            assert key in stats


class TestFollower:
    def test_tail_sees_records_incrementally(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        follower = WalFollower(tmp_path / "wal")
        assert follower.poll() == []

        wal.append("op", {"i": 0})
        wal.append("op", {"i": 1})
        first = follower.poll()
        assert [r.lsn for r in first] == [1, 2]
        assert follower.poll() == []

        wal.append("op", {"i": 2})
        assert [r.lsn for r in follower.poll()] == [3]
        assert follower.last_lsn == 3

    def test_pending_counts_unconsumed(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        follower = WalFollower(tmp_path / "wal")
        for i in range(4):
            wal.append("op", {"i": i})
        assert follower.pending() == 4
        follower.poll()
        assert follower.pending() == 0

    def test_tail_crosses_rotations(self, tmp_path):
        wal = _wal(tmp_path / "wal", segment_bytes=64)
        follower = WalFollower(tmp_path / "wal")
        for i in range(10):
            wal.append("op", {"i": i, "pad": "x" * 40})
        assert [r.lsn for r in follower.poll()] == list(range(1, 11))

    def test_incomplete_tail_reads_as_not_yet(self, tmp_path):
        wal = _wal(tmp_path / "wal")
        wal.append("op", {"i": 0})
        follower = WalFollower(tmp_path / "wal")
        [segment] = wal.segments()
        # A half-written second frame: poll must return record 1 and wait.
        payload = json.dumps({"lsn": 2, "op": "op"}).encode()
        frame = HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with open(segment, "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        assert [r.lsn for r in follower.poll()] == [1]
        # The rest of the frame lands: now it completes.
        with open(segment, "ab") as handle:
            handle.write(frame[len(frame) // 2:])
        assert [r.lsn for r in follower.poll()] == [2]

    def test_compacted_past_cursor_raises(self, tmp_path):
        wal = _wal(tmp_path / "wal", segment_bytes=64, keep_segments=0)
        follower = WalFollower(tmp_path / "wal")
        wal.append("op", {"i": 0, "pad": "x" * 40})
        follower.poll()  # cursor in segment 1
        for i in range(1, 12):
            wal.append("op", {"i": i, "pad": "x" * 40})
        wal.checkpoint(wal.last_lsn)  # segment 1 compacted away
        with pytest.raises(WalError, match="retention"):
            follower.poll()

    def test_survives_compaction_when_caught_up(self, tmp_path):
        wal = _wal(tmp_path / "wal", segment_bytes=64, keep_segments=0)
        follower = WalFollower(tmp_path / "wal")
        for i in range(12):
            wal.append("op", {"i": i, "pad": "x" * 40})
            follower.poll()  # keep up while segments seal
        last = follower.last_lsn
        wal.checkpoint(wal.last_lsn)
        wal.append("op", {"next": True})
        assert [r.lsn for r in follower.poll()] == [last + 1]


class TestFaultInjection:
    """The REPRO_FAULTS wal targets, driven end to end through append."""

    @pytest.fixture()
    def chaos_env(self, tmp_path, monkeypatch):
        def arm(spec):
            monkeypatch.setenv("REPRO_FAULTS", spec)
            monkeypatch.setenv("REPRO_FAULTS_DIR", str(tmp_path / "ledger"))
        return arm

    def test_torn_write_fault_never_acks(self, tmp_path, chaos_env):
        chaos_env("wal_torn@wal-append-00000002:1")
        wal = _wal(tmp_path / "wal")
        wal.append("op", {"i": 0})
        with pytest.raises(WalError, match="torn"):
            wal.append("op", {"i": 1})
        # The log is poisoned until replayed; further appends refuse.
        with pytest.raises(WalError):
            wal.append("op", {"i": 2})

        reborn = _wal(tmp_path / "wal")
        records = reborn.replay()
        assert [r.lsn for r in records] == [1]
        assert reborn.counters["torn_truncated"] == 1
        assert reborn.append("op", {"i": 1}) == 2

    def test_corrupt_fault_refused_once_mid_log(self, tmp_path, chaos_env):
        chaos_env("wal_corrupt@wal-append-00000001:1")
        wal = _wal(tmp_path / "wal")
        wal.append("op", {"i": 0})  # acked, then silently rotted
        wal.append("op", {"i": 1})  # makes the rot mid-log
        wal.close()
        with pytest.raises(WalCorruptionError):
            _wal(tmp_path / "wal").replay()

    def test_stall_fault_delays_fsync(self, tmp_path, chaos_env):
        chaos_env("wal_stall:1:0.25")
        wal = WriteAheadLog(tmp_path / "wal", sync="always")
        start = time.monotonic()
        wal.append("op", {})
        assert time.monotonic() - start >= 0.25
