"""X3 — §II mitigation: Poh et al.'s device inference p(d|q).

Trains per-device GMMs on set-0 quality features and measures top-1
device identification accuracy on set-1 features.  The benchmark times
the posterior evaluation over the whole test set.
"""

import numpy as np

from repro.api import DEVICE_ORDER, DeviceInferenceModel


def test_ext_device_inference_accuracy(benchmark, study, record_artifact):
    collection = study.collection()
    n = study.config.n_subjects

    features_by_device = {
        device: [
            collection.get(sid, "right_index", device, 0).features
            for sid in range(n)
        ]
        for device in DEVICE_ORDER
    }
    model = DeviceInferenceModel(n_components=2).fit(
        features_by_device, np.random.default_rng(11)
    )
    labeled = [
        (device, collection.get(sid, "right_index", device, 1).features)
        for device in DEVICE_ORDER
        for sid in range(n)
    ]

    accuracy = benchmark(model.accuracy, labeled)

    # Binary ink-vs-optical discrimination (the operationally useful split).
    binary_hits = sum(
        1
        for device, f in labeled
        if (model.predict(f) == "D4") == (device == "D4")
    )
    binary = binary_hits / len(labeled)

    text = "\n".join(
        [
            "X3: device inference from quality measures, p(d|q)",
            f"  5-way top-1 accuracy: {accuracy:.2%}  (chance 20%)",
            f"  ink-vs-optical accuracy: {binary:.2%}  (chance 50%)",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    assert accuracy > 0.30  # well above 5-way chance
    assert binary > 0.75
