"""Study configuration.

:class:`StudyConfig` is the single knob panel for the whole reproduction:
population size, impostor score budgets, master seed, matcher choice and
parallelism.  The paper's exact experiment is ``StudyConfig.paper_scale()``;
the default constructor is a scaled-down configuration suitable for tests
and continuous benchmarking on a laptop.

The environment variable ``REPRO_SUBJECTS`` overrides the population size
of :meth:`StudyConfig.from_environment`, so benchmark invocations can be
scaled to paper size (``REPRO_SUBJECTS=494``) without code changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Optional

from .errors import ConfigurationError

#: Number of participants in the paper's WVU 2012 collection.
PAPER_SUBJECT_COUNT = 494

#: Number of DMI impostor scores the paper randomly retained (Table 3).
PAPER_DMI_BUDGET = 120_855

#: Number of DDMI impostor scores the paper randomly retained (Table 3).
PAPER_DDMI_BUDGET = 483_420

#: Default scaled-down subject count for tests and local benchmarks.
DEFAULT_SUBJECT_COUNT = 80


def env_int(name: str) -> Optional[int]:
    """Integer value of environment variable ``name`` (``None`` if unset).

    A present-but-unparsable value raises :class:`ConfigurationError`
    naming the variable — a typo in a tuning knob must never be silently
    ignored.
    """
    raw = os.environ.get(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{name} must be an integer, got {raw!r}"
        ) from exc


def env_str(name: str) -> Optional[str]:
    """String value of environment variable ``name``.

    Unset and set-but-empty both read as ``None``, so ``FOO= repro
    serve`` behaves like an unset knob rather than smuggling an empty
    value past validation.
    """
    raw = os.environ.get(name)
    return raw if raw else None


def env_float(name: str) -> Optional[float]:
    """Float value of environment variable ``name`` (``None`` if unset)."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{name} must be a number, got {raw!r}"
        ) from exc


@dataclass(frozen=True)
class StudyConfig:
    """Immutable configuration of one interoperability study run.

    Attributes
    ----------
    n_subjects:
        Number of synthetic participants.
    master_seed:
        Root of the deterministic seed tree; identical configs replay
        bit-identically.
    dmi_budget, ddmi_budget:
        Maximum number of same-device / cross-device impostor scores to
        generate.  ``None`` scales the paper's budgets proportionally to
        ``n_subjects``; the paper limited these "to a random subset which
        is still sufficient for statistical confidence".
    fingers_per_subject:
        Distinct fingers captured per subject (the paper analyzes the two
        right "point" — index — fingers).
    sets_per_device:
        Impression sets per live-scan device ("users provided two sets of
        fingerprints").  Ink cards (D4) always contribute one set.
    matcher_name:
        Which matcher engine to use: ``"bioengine"`` (default, the
        Identix substitute) or ``"ridgecount"`` (the diverse matcher).
    n_workers:
        Process-pool width for score generation; ``0`` means sequential.
    cache_dir:
        Directory for the on-disk score cache; ``None`` disables caching.
    artifact_dir:
        Directory for the persistent content-addressed artifact store
        (acquired impressions, rendered images, extracted templates,
        quality features); ``None`` disables it and every run rebuilds
        the dataset from seeds.
    """

    n_subjects: int = DEFAULT_SUBJECT_COUNT
    master_seed: int = 20130624  # DSN 2013 started June 24, 2013
    dmi_budget: Optional[int] = None
    ddmi_budget: Optional[int] = None
    fingers_per_subject: int = 2
    sets_per_device: int = 2
    matcher_name: str = "bioengine"
    n_workers: int = 0
    cache_dir: Optional[str] = None
    artifact_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_subjects < 2:
            raise ConfigurationError(
                f"n_subjects must be >= 2 (impostor scores need two people), "
                f"got {self.n_subjects}"
            )
        if self.fingers_per_subject < 1:
            raise ConfigurationError("fingers_per_subject must be >= 1")
        if self.sets_per_device < 2:
            raise ConfigurationError(
                "sets_per_device must be >= 2: genuine same-device scores "
                "need a gallery and a probe impression"
            )
        if self.matcher_name not in ("bioengine", "ridgecount"):
            raise ConfigurationError(
                f"unknown matcher {self.matcher_name!r}; "
                "expected 'bioengine' or 'ridgecount'"
            )
        if self.n_workers < 0:
            raise ConfigurationError("n_workers must be >= 0")
        for name in ("dmi_budget", "ddmi_budget"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be >= 1 or None")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, **overrides: object) -> "StudyConfig":
        """The configuration matching the paper's Table 3 exactly."""
        params = dict(
            n_subjects=PAPER_SUBJECT_COUNT,
            dmi_budget=PAPER_DMI_BUDGET,
            ddmi_budget=PAPER_DDMI_BUDGET,
        )
        params.update(overrides)  # type: ignore[arg-type]
        return cls(**params)  # type: ignore[arg-type]

    @classmethod
    def from_file(cls, path: "os.PathLike", **overrides: object) -> "StudyConfig":
        """Load a configuration from a JSON file.

        The file holds a flat object whose keys are StudyConfig field
        names; unknown keys are rejected with the offending name so a
        typo never silently falls back to a default.  Keyword overrides
        win over file values.
        """
        import json
        from pathlib import Path

        raw = Path(path).read_text()
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}: invalid JSON ({exc})") from exc
        if not isinstance(data, dict):
            raise ConfigurationError(f"{path}: expected a JSON object at top level")
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ConfigurationError(
                f"{path}: unknown config keys {unknown}; valid keys: {sorted(valid)}"
            )
        data.update(overrides)
        return cls(**data)

    @classmethod
    def from_environment(cls, **defaults: object) -> "StudyConfig":
        """Config honouring ``REPRO_SUBJECTS`` / ``REPRO_WORKERS``.

        Keyword arguments are *defaults*: the environment variables win,
        so a user can rescale any example or benchmark without touching
        code (``REPRO_SUBJECTS=494 python examples/full_study.py``).
        """
        params: dict = dict(defaults)
        subjects = env_int("REPRO_SUBJECTS")
        if subjects is not None:
            params["n_subjects"] = subjects
        workers = env_int("REPRO_WORKERS")
        if workers is not None:
            params["n_workers"] = workers
        return cls(**params)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_paper_scale(self) -> bool:
        """Whether this run uses the paper's 494-participant population."""
        return self.n_subjects == PAPER_SUBJECT_COUNT

    def scaled_dmi_budget(self) -> int:
        """DMI budget, scaling the paper's 120,855 with population size.

        The paper's impostor counts grow quadratically with the number of
        participants, so the proportional budget scales with
        ``n_subjects * (n_subjects - 1)``.
        """
        if self.dmi_budget is not None:
            return self.dmi_budget
        return max(1, round(PAPER_DMI_BUDGET * self._impostor_scale()))

    def scaled_ddmi_budget(self) -> int:
        """DDMI budget, scaling the paper's 483,420 with population size."""
        if self.ddmi_budget is not None:
            return self.ddmi_budget
        return max(1, round(PAPER_DDMI_BUDGET * self._impostor_scale()))

    def _impostor_scale(self) -> float:
        pairs = self.n_subjects * (self.n_subjects - 1)
        paper_pairs = PAPER_SUBJECT_COUNT * (PAPER_SUBJECT_COUNT - 1)
        return pairs / paper_pairs

    def replace(self, **changes: object) -> "StudyConfig":
        """Return a copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    #: Fields that never influence computed results: where caches live
    #: and how wide the process pool is.  Excluded from the fingerprint
    #: so two runs of the same experiment share cache entries no matter
    #: where they store them or how parallel they are (score equality
    #: across worker counts is covered by the parallel-equivalence tests).
    _NON_CONTENT_FIELDS = ("cache_dir", "artifact_dir", "n_workers")

    def fingerprint(self) -> str:
        """Stable hash of the *content-determining* configuration fields.

        Used as the cache/artifact key prefix; storage locations and
        parallelism (:data:`_NON_CONTENT_FIELDS`) are excluded because
        they cannot change a single computed byte.
        """
        payload = dataclasses.asdict(self)
        for name in self._NON_CONTENT_FIELDS:
            payload.pop(name, None)
        return hashlib.blake2b(
            json.dumps(payload, sort_keys=True).encode("utf-8"), digest_size=12
        ).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary."""
        scale = "paper-scale" if self.is_paper_scale else "scaled-down"
        return (
            f"StudyConfig[{scale}]: {self.n_subjects} subjects, "
            f"{self.fingers_per_subject} fingers, seed={self.master_seed}, "
            f"matcher={self.matcher_name}, workers={self.n_workers}"
        )


def resolve_worker_count(requested: int) -> int:
    """Translate a requested worker count into an effective pool size.

    ``0`` means "run in-process".  Any positive request is capped to the
    machine's CPU count to avoid oversubscription on small runners.
    """
    if requested <= 0:
        return 0
    available = os.cpu_count() or 1
    return min(requested, available)


__all__ = [
    "StudyConfig",
    "resolve_worker_count",
    "env_int",
    "env_float",
    "env_str",
    "PAPER_SUBJECT_COUNT",
    "PAPER_DMI_BUDGET",
    "PAPER_DDMI_BUDGET",
    "DEFAULT_SUBJECT_COUNT",
]
