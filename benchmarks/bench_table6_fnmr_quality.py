"""T6 — Table 6: FNMR matrix at fixed FMR of 0.1% for NFIQ < 3 images.

Expected shape (paper): "these FNMR rates are much [better] than those
reported for the entire experiment in Table 5 ... with respect to the
differences in FNMR for intra and inter sensor scenarios, they simply
appear unpredictable" — quality filtering collapses the error rates and
scrambles diagonal dominance.
"""

import numpy as np

from repro.api import (
    fnmr_interoperability_matrix,
    quality_filtered_fnmr_matrix,
    render_fnmr_matrix,
)


def test_table6_quality_filtered_fnmr(benchmark, study, record_artifact):
    study.score_sets()

    matrix = benchmark(quality_filtered_fnmr_matrix, study)
    text = render_fnmr_matrix(
        matrix, "Table 6: FNMR at fixed FMR of 0.1%, NFIQ quality < 3"
    )
    record_artifact(text)
    print("\n" + text)

    assert matrix.shape == (5, 5)
    # Quality gating lowers (or keeps) the error rates at the common
    # operating point.
    unfiltered = fnmr_interoperability_matrix(study, target_fmr=1e-3)
    both = ~np.isnan(matrix) & ~np.isnan(unfiltered)
    assert both.sum() >= 15
    assert np.nanmean(matrix[both]) <= np.nanmean(unfiltered[both]) + 1e-9
