"""X4 — §V further work: "the effect of user habituation on the quality
of the fingerprint samples obtained ... do the quality of the images
obtained improve when we compare, say, the first sample obtained from a
participant with the last one".

The protocol tracks each subject's cumulative presentation counter, so
habituation is measurable at two levels:

* the *mechanism* — pressure-control error shrinks over the session
  (directly from the recorded presentation conditions);
* the *image-quality consequence* — within a device, the second-visit
  impression is weakly better than the first (the raw presentation
  index confounds with the fixed device order, so the comparison must
  be device-controlled).
"""

import numpy as np

from repro.api import (
    control_by_presentation,
    first_vs_last,
    render_habituation,
)


def test_ext_habituation_effect(benchmark, study, record_artifact):
    collection = study.collection()

    def analyze():
        return (
            control_by_presentation(collection),
            first_vs_last(collection),
        )

    control, revisit = benchmark(analyze)

    text = render_habituation(collection)
    record_artifact(text)
    print("\n" + text)

    indices = sorted(control)
    early = np.mean([control[i] for i in indices[:4]])
    late = np.mean([control[i] for i in indices[-4:]])
    # The mechanism must show: control error shrinks with practice.
    assert late < early
    # The image-quality consequence is weak but must not be a decline.
    assert revisit.mean_delta > -0.02
