"""Parallel execution must be bit-identical to sequential."""

import numpy as np
import pytest

from repro import InteroperabilityStudy, StudyConfig
from repro.datasets import build_collection


class TestCollectionEquivalence:
    def test_parallel_collection_identical(self):
        base = StudyConfig(n_subjects=8, master_seed=321)
        sequential = build_collection(base)
        parallel = build_collection(base.replace(n_workers=2))
        assert len(sequential) == len(parallel)
        for imp in sequential:
            other = parallel.get(
                imp.subject_id, imp.finger_label, imp.device_id, imp.set_index
            )
            assert other.template.minutiae == imp.template.minutiae
            assert other.nfiq == imp.nfiq


class TestScoreEquivalence:
    def test_parallel_scores_identical(self):
        seq = InteroperabilityStudy(
            StudyConfig(n_subjects=8, master_seed=55, n_workers=0)
        ).score_sets()
        par = InteroperabilityStudy(
            StudyConfig(n_subjects=8, master_seed=55, n_workers=2)
        ).score_sets()
        for scenario in seq:
            np.testing.assert_array_equal(
                seq[scenario].scores, par[scenario].scores
            )
            np.testing.assert_array_equal(
                seq[scenario].subject_gallery, par[scenario].subject_gallery
            )
