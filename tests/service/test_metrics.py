"""Prometheus exposition: renderer output, strict parser, live scrape."""

import math

import pytest

from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder
from repro.service.metrics import (
    EXPOSITION_CONTENT_TYPE,
    ExpositionParseError,
    parse_exposition,
    render_exposition,
    sample_value,
)
from repro.service.stats import ServiceStats


@pytest.fixture(autouse=True)
def restore_recorder():
    previous = get_recorder()
    yield
    set_recorder(previous)


def _busy_stats():
    stats = ServiceStats()
    stats.record_request("enroll", 0.010, 201, device="D0")
    stats.record_request("verify", 0.020, 200, device="D0")
    stats.record_request("verify", 0.300, 200, device="D1")
    stats.record_request("healthz", 0.0001, 200)
    stats.record_decision(True)
    stats.record_decision(False)
    stats.record_queue_wait(0.004)
    stats.record_batch(4, requests=3, batch_id=7)
    stats.record_slow()
    return stats


class TestRenderer:
    def test_round_trips_through_strict_parser(self):
        families = parse_exposition(render_exposition(_busy_stats()))
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_request_latency_seconds"]["type"] == "histogram"

    def test_counter_values(self):
        families = parse_exposition(render_exposition(_busy_stats()))
        assert sample_value(
            families, "repro_requests_total", {"endpoint": "verify"}
        ) == 2
        assert sample_value(
            families, "repro_responses_total", {"status": "200"}
        ) == 3
        assert sample_value(
            families, "repro_decisions_total", {"decision": "accepted"}
        ) == 1
        assert sample_value(families, "repro_slow_requests_total") == 1
        assert sample_value(families, "repro_batch_last_id") == 7

    def test_latency_histogram_is_labeled_by_device(self):
        families = parse_exposition(render_exposition(_busy_stats()))
        d0 = sample_value(
            families,
            "repro_request_latency_seconds_count",
            {"endpoint": "verify", "device": "D0"},
        )
        d1 = sample_value(
            families,
            "repro_request_latency_seconds_count",
            {"endpoint": "verify", "device": "D1"},
        )
        assert d0 == 1 and d1 == 1

    def test_probe_traffic_counted_but_not_timed(self):
        families = parse_exposition(render_exposition(_busy_stats()))
        assert sample_value(
            families, "repro_requests_total", {"endpoint": "healthz"}
        ) == 1
        assert sample_value(
            families,
            "repro_request_latency_seconds_count",
            {"endpoint": "healthz"},
        ) is None

    def test_histogram_buckets_are_cumulative_and_end_in_inf(self):
        stats = ServiceStats()
        for seconds in (0.0005, 0.003, 0.003, 2.0, 100.0):
            stats.record_request("verify", seconds, 200)
        families = parse_exposition(render_exposition(stats))
        buckets = [
            (labels["le"], value)
            for name, labels, value
            in families["repro_request_latency_seconds"]["samples"]
            if name.endswith("_bucket")
        ]
        values = [v for _, v in buckets]
        assert values == sorted(values)
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 5  # the 100s outlier only lands in +Inf

    def test_gallery_and_queue_gauges(self):
        text = render_exposition(
            _busy_stats(), gallery_devices={"D0": 3, "D1": 2}, queue_depth=4
        )
        families = parse_exposition(text)
        assert sample_value(
            families, "repro_gallery_enrolled", {"device": "D0"}
        ) == 3
        assert sample_value(families, "repro_queue_depth") == 4

    def test_telemetry_passthrough_when_enabled(self):
        enable_telemetry()
        stats = _busy_stats()  # mirrors into the recorder
        families = parse_exposition(render_exposition(stats))
        assert sample_value(
            families, "repro_telemetry_service_requests_total"
        ) == 4

    def test_no_telemetry_families_when_disabled(self):
        families = parse_exposition(render_exposition(_busy_stats()))
        assert not any(name.startswith("repro_telemetry_") for name in families)

    def test_content_type_constant(self):
        assert EXPOSITION_CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE


class TestStrictParser:
    def test_sample_before_type_rejected(self):
        with pytest.raises(ExpositionParseError, match="before its # TYPE"):
            parse_exposition("repro_x_total 1\n# TYPE repro_x_total counter\n")

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ExpositionParseError):
            parse_exposition("# TYPE 9bad counter\n9bad 1\n")

    def test_duplicate_series_rejected(self):
        text = (
            "# TYPE repro_x_total counter\n"
            'repro_x_total{a="1"} 1\n'
            'repro_x_total{a="1"} 2\n'
        )
        with pytest.raises(ExpositionParseError, match="duplicate series"):
            parse_exposition(text)

    def test_malformed_labels_rejected(self):
        with pytest.raises(ExpositionParseError):
            parse_exposition(
                "# TYPE repro_x_total counter\nrepro_x_total{a=unquoted} 1\n"
            )

    def test_non_cumulative_histogram_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionParseError, match="not cumulative"):
            parse_exposition(text)

    def test_missing_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 1\n'
            "repro_h_sum 1\n"
            "repro_h_count 1\n"
        )
        with pytest.raises(ExpositionParseError, match=r"\+Inf"):
            parse_exposition(text)

    def test_inf_bucket_disagreeing_with_count_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ExpositionParseError, match="!= count"):
            parse_exposition(text)

    def test_unparsable_value_rejected(self):
        with pytest.raises(ExpositionParseError, match="unparsable value"):
            parse_exposition("# TYPE repro_x gauge\nrepro_x banana\n")

    def test_inf_and_escapes_parse(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf",path="a\\"b"} 1\n'
            "repro_h_sum 0.5\n"
            "repro_h_count 1\n"
        )
        families = parse_exposition(text)
        name, labels, value = families["repro_h"]["samples"][0]
        assert labels["path"] == 'a"b'
        assert math.isinf(float(labels["le"].replace("+Inf", "inf")))
        assert value == 1
