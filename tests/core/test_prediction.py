"""Beta-Binomial FNM prediction."""

import numpy as np
import pytest

from repro.core.prediction import FnmrPredictor, _beta_cdf, _beta_interval
from repro.runtime.errors import ConfigurationError

scipy_stats = pytest.importorskip("scipy.stats")


class TestBetaMath:
    @pytest.mark.parametrize("a,b", [(0.5, 0.5), (2.0, 8.0), (0.5, 400.5), (30, 3)])
    def test_cdf_matches_scipy(self, a, b):
        for x in (0.01, 0.1, 0.5, 0.9, 0.99):
            assert _beta_cdf(a, b, x) == pytest.approx(
                scipy_stats.beta.cdf(x, a, b), abs=1e-9
            )

    @pytest.mark.parametrize("a,b", [(0.5, 100.5), (3.5, 500.5), (10, 90)])
    def test_interval_matches_scipy(self, a, b):
        low, high = _beta_interval(a, b, 0.95)
        assert low == pytest.approx(scipy_stats.beta.ppf(0.025, a, b), abs=1e-5)
        assert high == pytest.approx(scipy_stats.beta.ppf(0.975, a, b), abs=1e-5)


class TestPredictor:
    def test_no_evidence_gives_prior(self):
        predictor = FnmrPredictor()
        p = predictor.predict("D0", "D1")
        assert p.trials == 0
        assert p.probability == pytest.approx(0.5)  # Jeffreys prior mean
        assert p.high - p.low > 0.8  # honest: nearly no information

    def test_evidence_tightens_posterior(self):
        predictor = FnmrPredictor()
        predictor.observe("D0", "D1", failures=2, trials=1000)
        p = predictor.predict("D0", "D1")
        assert p.probability == pytest.approx(2.5 / 1001, rel=0.01)
        assert p.high < 0.01

    def test_evidence_accumulates(self):
        predictor = FnmrPredictor()
        predictor.observe("D0", "D1", 1, 100)
        predictor.observe("D0", "D1", 1, 100)
        p = predictor.predict("D0", "D1")
        assert p.failures == 2 and p.trials == 200

    def test_zero_failures_nonzero_probability(self):
        # The point of the Bayesian treatment: an observed zero is not a
        # promised zero.
        predictor = FnmrPredictor()
        predictor.observe("D2", "D2", 0, 500)
        p = predictor.predict("D2", "D2")
        assert 0 < p.probability < 0.01
        assert p.low == pytest.approx(0.0, abs=1e-4)

    def test_invalid_evidence(self):
        predictor = FnmrPredictor()
        with pytest.raises(ConfigurationError):
            predictor.observe("D0", "D0", 5, 2)
        with pytest.raises(ConfigurationError):
            predictor.observe("D0", "D0", -1, 2)

    def test_invalid_prior(self):
        with pytest.raises(ConfigurationError):
            FnmrPredictor(prior_a=0.0)

    def test_invalid_level(self):
        predictor = FnmrPredictor()
        with pytest.raises(ConfigurationError):
            predictor.predict("D0", "D0", level=1.5)


class TestOnStudy:
    def test_fit_from_study(self, tiny_study):
        predictor = FnmrPredictor().fit_from_study(tiny_study, target_fmr=1e-2)
        matrix = predictor.prediction_matrix()
        assert matrix.shape == (5, 5)
        assert np.count_nonzero(~np.isnan(matrix)) == 25
        assert np.all((matrix[~np.isnan(matrix)] >= 0))

    def test_render_contains_all_cells(self, tiny_study):
        predictor = FnmrPredictor().fit_from_study(tiny_study, target_fmr=1e-2)
        text = predictor.render()
        assert text.count("D4") >= 9  # D4 row + column entries
        assert "credible" in text

    def test_answers_the_papers_question(self, tiny_study):
        """'What is the probability that I will have a False Non-Match
        pertaining to a user enrolled using the Device X and verified
        using the Device Y?'"""
        predictor = FnmrPredictor().fit_from_study(tiny_study, target_fmr=1e-2)
        prediction = predictor.predict("D0", "D4")
        assert 0.0 <= prediction.low <= prediction.probability <= prediction.high <= 1.0
        assert prediction.trials == tiny_study.config.n_subjects
