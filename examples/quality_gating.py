#!/usr/bin/env python3
"""NFIQ quality control: does the NIST reacquisition rule pay off?

The paper's collection deliberately did *not* control image quality
("fingerprints were collected without controlling the quality"), and
Section IV.D shows the consequence: low-quality images drive the low
genuine scores, especially across devices.  NIST SP 800-76 recommends
re-capturing up to three times when NFIQ > 3.

This example runs the same population through both policies and compares
NFIQ distributions and cross-device genuine scores.

Run:
    python examples/quality_gating.py
"""

from collections import Counter

import numpy as np

from repro.api import (
    InteroperabilityStudy,
    low_score_quality_surface,
    ProtocolSettings,
    StudyConfig,
)


def nfiq_distribution(study: InteroperabilityStudy) -> Counter:
    counts: Counter = Counter()
    for impression in study.collection():
        counts[impression.nfiq] += 1
    return counts


def main() -> None:
    config = StudyConfig.from_environment(n_subjects=30, n_workers=4)

    plain = InteroperabilityStudy(config, protocol=ProtocolSettings())
    gated = InteroperabilityStudy(
        config, protocol=ProtocolSettings(quality_gating=True)
    )

    print("NFIQ level distribution (1 = best, 5 = worst)")
    dist_plain = nfiq_distribution(plain)
    dist_gated = nfiq_distribution(gated)
    print(f"{'level':<8}{'no gating':>12}{'SP 800-76 gating':>18}")
    for level in (1, 2, 3, 4, 5):
        print(f"{level:<8}{dist_plain.get(level, 0):>12}{dist_gated.get(level, 0):>18}")
    print()

    plain_sets = plain.score_sets()
    gated_sets = gated.score_sets()
    for label, sets in (("no gating", plain_sets), ("gating", gated_sets)):
        ddmg = sets["DDMG"].scores
        print(
            f"DDMG ({label:<10}): mean {ddmg.mean():5.2f}   "
            f"P(score < 7) = {np.mean(ddmg < 7):.3f}   "
            f"P(score < 10) = {np.mean(ddmg < 10):.3f}"
        )
    print()

    print("Figure 5(b) analogue under each policy — low cross-device")
    print("genuine scores by (gallery, probe) NFIQ pair:")
    for label, study in (("no gating", plain), ("gating", gated)):
        surface = low_score_quality_surface(study, cross_device=True)
        print(f"\n--- {label} (total low scores: {surface.total}) ---")
        print(surface.render(row_title="gallery NFIQ", col_title="probe NFIQ"))

    print()
    print(
        "Gating shifts the NFIQ distribution toward 1-2 and thins the"
        " low-score tail — the operational recommendation the paper's"
        " Figure 5 supports."
    )


if __name__ == "__main__":
    main()
