"""Every example script runs to completion at a tiny scale.

Examples are the library's front door; a broken example is a broken
release.  Each runs in-process with ``REPRO_SUBJECTS`` pinned low.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SUBJECTS", "6")
    monkeypatch.setenv("REPRO_WORKERS", "0")


def _run(name: str, argv=None, capsys=None) -> str:
    script = EXAMPLES_DIR / name
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_examples_are_discovered():
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 3


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys=capsys)
    assert "Table 3" in out
    assert "penalty" in out


def test_full_study(capsys):
    out = _run("full_study.py", capsys=capsys)
    for artifact in ("Figure 1", "Table 1", "Table 3", "Figure 2",
                     "Figure 3", "Figure 4", "Table 4", "Table 5",
                     "Table 6", "Figure 5"):
        assert artifact in out, f"missing {artifact}"


def test_cross_sensor_enrollment(capsys):
    out = _run("cross_sensor_enrollment.py", capsys=capsys)
    assert "FNMR" in out
    assert "Guardian" in out


def test_quality_gating(capsys):
    out = _run("quality_gating.py", capsys=capsys)
    assert "NFIQ level distribution" in out


def test_device_forensics(capsys):
    out = _run("device_forensics.py", capsys=capsys)
    assert "Top-1 accuracy" in out


def test_render_fingerprints(tmp_path, capsys):
    out = _run("render_fingerprints.py", argv=[str(tmp_path)], capsys=capsys)
    assert "whorl" in out
    assert (tmp_path / "whorl.pgm").exists()


def test_interop_aware_verification(capsys):
    out = _run("interop_aware_verification.py", capsys=capsys)
    assert "baseline" in out and "aware" in out


def test_fnm_prediction(capsys):
    out = _run("fnm_prediction.py", capsys=capsys)
    assert "credible interval" in out


def test_image_pipeline(tmp_path, capsys):
    out = _run("image_pipeline.py", argv=[str(tmp_path)], capsys=capsys)
    assert "precision" in out
    assert (tmp_path / "finger_a.pgm").exists()


def test_identification_at_the_border(capsys):
    out = _run("identification_at_the_border.py", capsys=capsys)
    assert "rank-1" in out and "FNIR" in out
