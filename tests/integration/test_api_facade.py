"""The ``repro.api`` facade: entry points, re-exports, deprecation shims."""

import warnings

import numpy as np
import pytest

import repro
import repro.api as api
from repro.api import (
    StudyConfig,
    compare_devices,
    load_scores,
    run_study,
)


@pytest.fixture(scope="module")
def facade_result(tmp_path_factory):
    cfg = StudyConfig(
        n_subjects=4,
        master_seed=13,
        cache_dir=str(tmp_path_factory.mktemp("api-cache")),
    )
    return cfg, run_study(cfg)


class TestRunStudy:
    def test_returns_all_scenarios(self, facade_result):
        _, result = facade_result
        assert sorted(result.score_sets) == ["DDMG", "DDMI", "DMG", "DMI"]
        for scores in result.score_sets.values():
            assert len(scores) > 0

    def test_analysis_methods_delegate(self, facade_result):
        _, result = facade_result
        matrix = result.fnmr_matrix()
        assert matrix.shape == (5, 5)
        assert result.demographics()
        assert result.kendall_matrix()

    def test_matches_study_engine_exactly(self, facade_result):
        cfg, result = facade_result
        from repro.api import InteroperabilityStudy

        direct = InteroperabilityStudy(cfg).score_sets()
        for scenario, scores in direct.items():
            np.testing.assert_array_equal(
                scores.scores, result.score_sets[scenario].scores
            )


class TestLoadScores:
    def test_round_trips_cached_scores(self, facade_result):
        cfg, result = facade_result
        cached = load_scores(cfg, "DMG")
        np.testing.assert_array_equal(
            cached.scores, result.score_sets["DMG"].scores
        )
        everything = load_scores(cfg)
        assert sorted(everything) == sorted(result.score_sets)

    def test_returns_none_on_miss(self, tmp_path):
        cfg = StudyConfig(
            n_subjects=3, master_seed=99, cache_dir=str(tmp_path)
        )
        assert load_scores(cfg, "DMG") is None
        assert load_scores(cfg) == {}


class TestCompareDevices:
    def test_cross_device_cell(self, facade_result):
        _, result = facade_result
        comparison = compare_devices(result, "D0", "D1")
        assert comparison.cross_device
        assert comparison.mean_genuine_score > comparison.mean_impostor_score
        assert 0.0 <= comparison.fnmr <= 1.0
        np.testing.assert_array_equal(
            comparison.genuine.scores,
            result.genuine_scores("D0", "D1").scores,
        )

    def test_same_device_cell(self, facade_result):
        _, result = facade_result
        assert not compare_devices(result, "D2", "D2").cross_device


class TestScoreSetFilters:
    def test_for_subjects_composes_with_select(self, facade_result):
        _, result = facade_result
        scores = result.score_sets["DDMI"]
        subset = scores.for_subjects([0, 1])
        assert len(subset) > 0
        assert set(subset.subject_gallery) <= {0, 1}
        assert set(subset.subject_probe) <= {0, 1}
        chained = subset.for_pair("D0", "D1")
        mask = (scores.device_gallery == "D0") & (scores.device_probe == "D1")
        mask &= np.isin(scores.subject_gallery, [0, 1]) & np.isin(
            scores.subject_probe, [0, 1]
        )
        np.testing.assert_array_equal(
            chained.scores, scores.select(mask).scores
        )


class TestImportSurface:
    def test_api_exports_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_legacy_top_level_import_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            getattr(repro, "InteroperabilityStudy")

    def test_facade_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.run_study is api.run_study
            assert repro.StudyResult is api.StudyResult

    def test_legacy_names_resolve_to_api_objects(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in ("InteroperabilityStudy", "StudyConfig", "ScoreSet"):
                assert getattr(repro, name) is getattr(api, name)
