"""The acquisition pipeline: master finger → sensed template.

This is the reproduction's replacement for physically pressing a finger
on a scanner.  One :class:`Sensor` wraps a
:class:`~repro.sensors.registry.DeviceProfile` and turns a subject's
master finger into an :class:`Impression` through the stages a real
capture goes through:

1. presentation conditions (pressure, moisture, habituation);
2. contact — only the part of the pad touching the platen is imaged;
3. rigid placement on the platen (removed later by matcher alignment);
4. the device's fixed *signature warp* — the systematic distortion of
   its sensing-element arrangement (the study's causal mechanism);
5. a per-impression stochastic *elastic warp* (skin under pressure);
6. crop to the device's capture window;
7. minutia detection dropout, spurious detections, measurement jitter;
8. conversion to pixel coordinates and quality assessment.

Every stochastic step draws from an injected generator, so an impression
is a pure function of ``(subject, finger, device, presentation, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..matcher.types import KIND_BIFURCATION, KIND_ENDING, Template, template_from_arrays
from ..quality.features import QualityFeatures
from ..quality.nfiq import nfiq_level
from ..synthesis.master import TYPE_ENDING, MasterFinger
from ..synthesis.population import Subject
from .distortion import (
    SmoothWarpField,
    device_signature_field,
    sample_placement,
)
from .noise import (
    PresentationConditions,
    contact_radii_mm,
    detection_probability,
    minutia_quality_values,
    quality_conditions_factor,
    sample_conditions,
    spurious_count,
)
from .registry import DeviceProfile


@dataclass(frozen=True)
class Impression:
    """One sensed fingerprint sample.

    Attributes
    ----------
    subject_id, finger_label:
        Whose finger this is.
    device_id:
        Capturing device (``"D0"`` … ``"D4"``).
    set_index:
        Which impression set of the collection protocol (0 or 1).
    presentation_index:
        The subject's cumulative presentation counter across all devices
        (habituation input).
    template:
        The extracted minutiae template.
    features:
        NFIQ-style quality evidence.
    nfiq:
        NFIQ level 1 (best) … 5 (worst).
    conditions:
        The sampled presentation conditions (exposed for analyses).
    """

    subject_id: int
    finger_label: str
    device_id: str
    set_index: int
    presentation_index: int
    template: Template
    features: QualityFeatures
    nfiq: int
    conditions: PresentationConditions


class Sensor:
    """A parameterized capture device.

    Subclasses adjust family-specific behaviour via the protected hooks
    (:meth:`_contact_scale`, :meth:`_extra_angle_noise_rad`).
    """

    def __init__(self, profile: DeviceProfile) -> None:
        self._profile = profile
        self._signature = device_signature_field(
            profile.device_id, profile.signature_magnitude_mm
        )

    @property
    def profile(self) -> DeviceProfile:
        """The device's physical and behavioural parameters."""
        return self._profile

    @property
    def device_id(self) -> str:
        """Registry identifier (``"D0"`` … ``"D4"``)."""
        return self._profile.device_id

    @property
    def signature_field(self) -> SmoothWarpField:
        """The fixed systematic warp of this device (for calibration work)."""
        return self._signature

    # ------------------------------------------------------------------
    # Family hooks
    # ------------------------------------------------------------------
    def _contact_scale(self, set_index: int) -> float:
        """Multiplier on the contact ellipse (rolled ink covers more pad)."""
        return 1.0

    def _elastic_scale(self, set_index: int) -> float:
        """Multiplier on the stochastic elastic warp (rolling adds more)."""
        return 1.0

    def _extra_angle_noise_rad(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Additional per-minutia direction noise beyond the profile jitter."""
        return np.zeros(n, dtype=np.float64)

    def _noise_floor(self) -> float:
        """Family noise floor added to the image noise feature.

        Ink transfer plus flat-bed scanning leaves texture no optical
        path produces; quality assessors see it regardless of skin state.
        """
        return 0.0

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire(
        self,
        subject: Subject,
        finger_label: str,
        rng: np.random.Generator,
        set_index: int = 0,
        presentation_index: int = 0,
        signature_override: Optional[SmoothWarpField] = None,
    ) -> Impression:
        """Capture one impression of ``subject``'s ``finger_label``.

        Parameters
        ----------
        subject:
            The participant.
        finger_label:
            Which finger (must exist on the subject).
        rng:
            Impression-specific generator from the study's seed tree.
        set_index, presentation_index:
            Protocol bookkeeping; ``presentation_index`` drives
            habituation.
        signature_override:
            Replace the device signature field — used by the ablation
            that removes systematic device differences.
        """
        profile = self._profile
        master = subject.finger(finger_label)
        signature = signature_override if signature_override is not None else self._signature

        conditions = sample_conditions(subject.traits, rng, presentation_index)
        clarity = quality_conditions_factor(
            conditions.moisture, conditions.pressure
        ) * profile.contrast

        # --- contact: which master minutiae touch the platen ------------
        radius_x, radius_y = contact_radii_mm(
            master.pad_half_width, master.pad_half_height, conditions.pressure
        )
        scale = self._contact_scale(set_index)
        radius_x *= scale
        radius_y *= scale
        positions = master.positions()
        in_contact = (
            (positions[:, 0] / radius_x) ** 2 + (positions[:, 1] / radius_y) ** 2
        ) <= 1.0

        # --- placement ---------------------------------------------------
        placement = sample_placement(
            rng,
            translation_sigma_mm=profile.placement_sigma_mm
            * (0.55 + 0.9 * conditions.sloppiness),
            rotation_sigma_rad=np.deg2rad(profile.rotation_sigma_deg)
            * (0.55 + 0.9 * conditions.sloppiness),
        )
        platen = placement.apply(positions)
        angles = placement.apply_angles(np.array([m.angle for m in master.minutiae]))

        # --- nonrigid warps ----------------------------------------------
        elastic = SmoothWarpField(
            seed=int(rng.integers(0, 2**63 - 1)),
            magnitude_mm=profile.elastic_magnitude_mm
            * self._elastic_scale(set_index)
            * (0.7 + 0.6 * (1.1 - conditions.pressure)),
            scale_mm=5.0,
        )
        warped = elastic.apply(signature.apply(platen))
        local_rot = signature.local_rotation(platen) + elastic.local_rotation(platen)
        angles = np.mod(angles + local_rot, 2.0 * np.pi)

        # --- crop to the capture window ------------------------------------
        window_w, window_h = profile.window_mm
        in_window = (
            (np.abs(warped[:, 0]) <= window_w / 2.0)
            & (np.abs(warped[:, 1]) <= window_h / 2.0)
        )

        # --- detection dropout ---------------------------------------------
        robustness = np.array([m.robustness for m in master.minutiae])
        p_detect = detection_probability(
            robustness, clarity, profile.detection_reliability
        )
        detected = rng.random(len(master.minutiae)) < p_detect
        keep = in_contact & in_window & detected

        kept_positions = warped[keep]
        kept_angles = angles[keep]
        kept_robustness = robustness[keep]
        kept_kinds = np.array(
            [
                KIND_ENDING if m.kind == TYPE_ENDING else KIND_BIFURCATION
                for m, k in zip(master.minutiae, keep)
                if k
            ],
            dtype=np.int64,
        )

        # --- spurious minutiae ----------------------------------------------
        n_spurious = spurious_count(rng, clarity, profile.spurious_rate)
        if n_spurious > 0:
            sx = rng.uniform(-window_w / 2.0, window_w / 2.0, size=n_spurious)
            sy = rng.uniform(-window_h / 2.0, window_h / 2.0, size=n_spurious)
            s_ang = rng.uniform(0.0, 2.0 * np.pi, size=n_spurious)
            s_kind = rng.choice([KIND_ENDING, KIND_BIFURCATION], size=n_spurious)
            kept_positions = np.vstack([kept_positions, np.column_stack([sx, sy])])
            kept_angles = np.concatenate([kept_angles, s_ang])
            kept_kinds = np.concatenate([kept_kinds, s_kind])
            kept_robustness = np.concatenate(
                [kept_robustness, np.full(n_spurious, 0.25)]
            )

        # --- measurement jitter ------------------------------------------------
        n_kept = len(kept_positions)
        if n_kept > 0:
            kept_positions = kept_positions + rng.normal(
                0.0, profile.position_jitter_mm, size=kept_positions.shape
            )
            angle_noise = rng.normal(
                0.0, np.deg2rad(profile.angle_jitter_deg), size=n_kept
            ) + self._extra_angle_noise_rad(rng, n_kept)
            kept_angles = np.mod(kept_angles + angle_noise, 2.0 * np.pi)

        qualities = minutia_quality_values(rng, kept_robustness, clarity)

        # --- pixel conversion ----------------------------------------------------
        px_per_mm = profile.resolution_dpi / 25.4
        offset = np.array([window_w / 2.0, window_h / 2.0])
        pixel_positions = (kept_positions + offset) * px_per_mm if n_kept else np.zeros((0, 2))
        template = template_from_arrays(
            positions_px=pixel_positions,
            angles=kept_angles,
            kinds=kept_kinds,
            qualities=qualities,
            width_px=profile.image_width_px,
            height_px=profile.image_height_px,
            resolution_dpi=profile.resolution_dpi,
        )

        features = self._quality_features(
            master, conditions, clarity, kept_positions, qualities,
            radius_x, radius_y, window_w, window_h, n_spurious,
        )
        return Impression(
            subject_id=subject.subject_id,
            finger_label=finger_label,
            device_id=profile.device_id,
            set_index=set_index,
            presentation_index=presentation_index,
            template=template,
            features=features,
            nfiq=nfiq_level(features),
            conditions=conditions,
        )

    def _quality_features(
        self,
        master: MasterFinger,
        conditions: PresentationConditions,
        clarity: float,
        kept_positions: np.ndarray,
        qualities: np.ndarray,
        radius_x: float,
        radius_y: float,
        window_w: float,
        window_h: float,
        n_spurious: int,
    ) -> QualityFeatures:
        """Assemble the NFIQ evidence for this impression."""
        # Contact area relative to the full pad, clipped by the window.
        effective_rx = min(radius_x, window_w / 2.0)
        effective_ry = min(radius_y, window_h / 2.0)
        pad_area = np.pi * master.pad_half_width * master.pad_half_height
        contact_area = np.pi * effective_rx * effective_ry
        area_fraction = float(np.clip(contact_area / pad_area, 0.0, 1.0))

        if len(kept_positions) > 0:
            coherence = float(
                np.mean(
                    master.fld.coherence(kept_positions[:, 0], kept_positions[:, 1])
                )
            )
        else:
            coherence = 0.0
        coherence = float(np.clip(coherence * (0.6 + 0.4 * clarity), 0.0, 1.0))

        dry = max(0.0, (conditions.moisture - 0.55) / 0.45)
        wet = max(0.0, (0.35 - conditions.moisture) / 0.35)
        artifact = float(np.clip(max(dry, wet), 0.0, 1.0))

        total = max(1, len(kept_positions))
        noise = float(
            np.clip(
                self._noise_floor()
                + (1.0 - clarity) * 0.7
                + (n_spurious / total) * 0.6,
                0.0,
                1.0,
            )
        )

        mean_quality = float(qualities.mean() / 100.0) if len(qualities) else 0.0
        return QualityFeatures(
            minutiae_count=int(len(kept_positions)),
            contact_area_fraction=area_fraction,
            mean_coherence=coherence,
            dryness_artifact=artifact,
            noise_level=noise,
            mean_minutia_quality=mean_quality,
        )


__all__ = ["Sensor", "Impression"]
