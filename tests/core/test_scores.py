"""Score-set machinery: Table 2/3 counting rules and ScoreSet algebra."""

import numpy as np
import pytest

from repro.core.scores import (
    ScoreSet,
    enumerate_ddmg_jobs,
    enumerate_dmg_jobs,
    expected_counts,
    sample_ddmi_jobs,
    sample_dmi_jobs,
)
from repro.runtime import SeedTree, StudyConfig
from repro.runtime.errors import ConfigurationError


class TestTable3Counts:
    """The exact published counts at paper scale."""

    def test_dmg_1976(self):
        assert len(enumerate_dmg_jobs(494)) == 1976

    def test_ddmg_9880(self):
        assert len(enumerate_ddmg_jobs(494)) == 9880

    def test_expected_counts_paper_scale(self):
        counts = expected_counts(StudyConfig.paper_scale())
        assert counts == {
            "DMG": 1976,
            "DDMG": 9880,
            "DMI": 120_855,
            "DDMI": 483_420,
        }

    def test_dmg_excludes_d4(self):
        jobs = enumerate_dmg_jobs(5)
        devices = {job[1] for job in jobs}
        assert devices == {"D0", "D1", "D2", "D3"}

    def test_ddmg_covers_all_ordered_pairs(self):
        jobs = enumerate_ddmg_jobs(1)
        pairs = {(job[1], job[4]) for job in jobs}
        assert len(pairs) == 20
        assert all(g != p for g, p in pairs)

    def test_dmg_one_per_subject_per_device(self):
        jobs = enumerate_dmg_jobs(7)
        assert len(jobs) == len(set(jobs))
        assert len(jobs) == 7 * 4


class TestImpostorSampling:
    def test_exact_budget(self):
        jobs = sample_dmi_jobs(20, 333, SeedTree(1))
        assert len(jobs) == 333

    def test_unique_jobs(self):
        jobs = sample_dmi_jobs(20, 500, SeedTree(1))
        assert len(set(jobs)) == len(jobs)

    def test_no_self_comparisons(self):
        jobs = sample_dmi_jobs(10, 200, SeedTree(2))
        assert all(job[0] != job[3] for job in jobs)

    def test_dmi_same_device(self):
        jobs = sample_dmi_jobs(10, 200, SeedTree(3))
        assert all(job[1] == job[4] for job in jobs)

    def test_ddmi_different_devices(self):
        jobs = sample_ddmi_jobs(10, 200, SeedTree(3))
        assert all(job[1] != job[4] for job in jobs)

    def test_deterministic(self):
        a = sample_dmi_jobs(15, 100, SeedTree(7))
        b = sample_dmi_jobs(15, 100, SeedTree(7))
        assert a == b

    def test_seed_sensitivity(self):
        a = sample_dmi_jobs(15, 100, SeedTree(7))
        b = sample_dmi_jobs(15, 100, SeedTree(8))
        assert a != b

    def test_covers_all_devices(self):
        jobs = sample_dmi_jobs(20, 1000, SeedTree(9))
        assert {job[1] for job in jobs} == {"D0", "D1", "D2", "D3", "D4"}

    def test_too_few_subjects(self):
        with pytest.raises(ConfigurationError):
            sample_dmi_jobs(1, 10, SeedTree(1))


def _score_set(n=6):
    return ScoreSet(
        scenario="DMG",
        matcher_name="bioengine",
        scores=np.arange(n, dtype=np.float64),
        subject_gallery=np.arange(n),
        subject_probe=np.arange(n),
        device_gallery=np.array(["D0", "D0", "D1", "D1", "D2", "D2"][:n]),
        device_probe=np.array(["D0", "D0", "D1", "D1", "D2", "D2"][:n]),
        nfiq_gallery=np.array([1, 2, 3, 4, 5, 1][:n]),
        nfiq_probe=np.array([1, 1, 1, 5, 5, 2][:n]),
    )


class TestScoreSet:
    def test_length(self):
        assert len(_score_set()) == 6

    def test_parallel_array_validation(self):
        with pytest.raises(ConfigurationError):
            ScoreSet(
                scenario="DMG",
                matcher_name="m",
                scores=np.zeros(3),
                subject_gallery=np.zeros(2),
                subject_probe=np.zeros(3),
                device_gallery=np.zeros(3, dtype="<U2"),
                device_probe=np.zeros(3, dtype="<U2"),
                nfiq_gallery=np.zeros(3),
                nfiq_probe=np.zeros(3),
            )

    def test_for_pair(self):
        cell = _score_set().for_pair("D1", "D1")
        assert len(cell) == 2
        np.testing.assert_array_equal(cell.scores, [2.0, 3.0])

    def test_with_max_nfiq_requires_both_sides(self):
        filtered = _score_set().with_max_nfiq(2)
        # rows where both gallery and probe <= 2: rows 0, 1, 5.
        assert len(filtered) == 3

    def test_select_preserves_provenance(self):
        selected = _score_set().select(np.array([True, False] * 3))
        assert len(selected) == 3
        assert selected.device_gallery[1] == "D1"

    def test_is_genuine(self):
        assert _score_set().is_genuine

    def test_concatenate(self):
        merged = ScoreSet.concatenate([_score_set(), _score_set()])
        assert len(merged) == 12

    def test_concatenate_rejects_mixed_scenarios(self):
        other = ScoreSet(
            scenario="DMI",
            matcher_name="bioengine",
            scores=np.zeros(1),
            subject_gallery=np.zeros(1),
            subject_probe=np.zeros(1),
            device_gallery=np.array(["D0"]),
            device_probe=np.array(["D0"]),
            nfiq_gallery=np.zeros(1),
            nfiq_probe=np.zeros(1),
        )
        with pytest.raises(ConfigurationError):
            ScoreSet.concatenate([_score_set(), other])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ScoreSet.concatenate([])

    def test_assemble_reorders_parts_by_position(self):
        full = _score_set()
        # Shards arrive out of order (as parallel chunks do); assemble
        # restores global score order from the position arrays.
        tail = full.select(np.array([3, 4, 5]))
        head = full.select(np.array([0, 1, 2]))
        rebuilt = ScoreSet.assemble([tail, head], [[3, 4, 5], [0, 1, 2]])
        np.testing.assert_array_equal(rebuilt.scores, full.scores)
        np.testing.assert_array_equal(
            rebuilt.device_gallery, full.device_gallery
        )

    def test_assemble_tolerates_gaps(self):
        # A salvage-mode run (fail_fast=False) drops a chunk; positions
        # are then non-contiguous but relative order must survive.
        full = _score_set()
        parts = [full.select(np.array([0, 1])), full.select(np.array([4, 5]))]
        rebuilt = ScoreSet.assemble(parts, [[0, 1], [4, 5]])
        np.testing.assert_array_equal(
            rebuilt.scores, full.scores[[0, 1, 4, 5]]
        )

    def test_assemble_validates_lengths(self):
        full = _score_set()
        with pytest.raises(ConfigurationError):
            ScoreSet.assemble([full], [])
        with pytest.raises(ConfigurationError):
            ScoreSet.assemble([full], [[0, 1]])
