"""Tolerance-box pairing."""

import numpy as np
import pytest

from repro.matcher.alignment import RigidTransform
from repro.matcher.pairing import (
    ANGLE_TOL_RAD,
    POSITION_TOL_MM,
    pair_minutiae,
)


@pytest.fixture()
def cloud():
    rng = np.random.default_rng(0)
    points = rng.uniform(-10, 10, size=(18, 2))
    angles = rng.uniform(0, 2 * np.pi, size=18)
    return points, angles


class TestPairing:
    def test_identical_clouds_pair_fully(self, cloud):
        points, angles = cloud
        result = pair_minutiae(
            points, angles, points, angles, RigidTransform.identity()
        )
        assert result.n_matched == len(points)
        assert np.all(result.residuals_mm < 1e-9)

    def test_jittered_clouds_pair_within_tolerance(self, cloud):
        points, angles = cloud
        rng = np.random.default_rng(1)
        jittered = points + rng.normal(0, 0.15, points.shape)
        result = pair_minutiae(
            points, angles, jittered, angles, RigidTransform.identity()
        )
        assert result.n_matched >= len(points) - 2

    def test_angle_tolerance_enforced(self, cloud):
        points, angles = cloud
        flipped = np.mod(angles + np.pi, 2 * np.pi)  # opposite directions
        result = pair_minutiae(
            points, angles, points, flipped, RigidTransform.identity()
        )
        assert result.n_matched == 0

    def test_position_tolerance_enforced(self, cloud):
        points, angles = cloud
        shifted = points + np.array([POSITION_TOL_MM * 3, 0.0])
        result = pair_minutiae(
            points, angles, shifted, angles, RigidTransform.identity()
        )
        assert result.n_matched == 0

    def test_transform_applied_before_pairing(self, cloud):
        points, angles = cloud
        theta = 0.5
        c, s = np.cos(theta), np.sin(theta)
        moved = points @ np.array([[c, -s], [s, c]]).T + np.array([2.0, 3.0])
        moved_angles = np.mod(angles + theta, 2 * np.pi)
        result = pair_minutiae(
            points, angles, moved, moved_angles,
            RigidTransform(theta=theta, tx=2.0, ty=3.0),
        )
        assert result.n_matched == len(points)

    def test_one_to_one(self):
        # Two A-minutiae near a single B-minutia: only one may pair.
        a_points = np.array([[0.0, 0.0], [0.3, 0.0]])
        a_angles = np.array([0.0, 0.0])
        b_points = np.array([[0.1, 0.0]])
        b_angles = np.array([0.0])
        result = pair_minutiae(
            a_points, a_angles, b_points, b_angles, RigidTransform.identity()
        )
        assert result.n_matched == 1

    def test_greedy_picks_closest(self):
        a_points = np.array([[0.0, 0.0], [0.5, 0.0]])
        a_angles = np.array([0.0, 0.0])
        b_points = np.array([[0.45, 0.0]])
        b_angles = np.array([0.0])
        result = pair_minutiae(
            a_points, a_angles, b_points, b_angles, RigidTransform.identity()
        )
        assert result.pairs[0, 0] == 1  # the nearer A minutia wins

    def test_empty_inputs(self):
        result = pair_minutiae(
            np.zeros((0, 2)), np.zeros(0), np.zeros((0, 2)), np.zeros(0),
            RigidTransform.identity(),
        )
        assert result.n_matched == 0
        assert result.n_overlap_a == 0


class TestOverlap:
    def test_full_overlap(self, cloud):
        points, angles = cloud
        result = pair_minutiae(
            points, angles, points, angles, RigidTransform.identity()
        )
        assert result.n_overlap_a == len(points)
        assert result.n_overlap_b == len(points)

    def test_partial_overlap_counts(self):
        # A spans x in [0, 10], B spans x in [5, 15]: overlap is [5, 10].
        a_points = np.column_stack([np.linspace(0, 10, 11), np.zeros(11)])
        b_points = np.column_stack([np.linspace(5, 15, 11), np.zeros(11)])
        angles = np.zeros(11)
        result = pair_minutiae(
            a_points, angles, b_points, angles, RigidTransform.identity()
        )
        assert 5 <= result.n_overlap_a <= 8
        assert 5 <= result.n_overlap_b <= 8

    def test_disjoint_regions(self):
        a_points = np.column_stack([np.linspace(0, 5, 6), np.zeros(6)])
        b_points = np.column_stack([np.linspace(20, 25, 6), np.zeros(6)])
        angles = np.zeros(6)
        result = pair_minutiae(
            a_points, angles, b_points, angles, RigidTransform.identity()
        )
        assert result.n_overlap_a == 0 and result.n_overlap_b == 0
