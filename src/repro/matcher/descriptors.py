"""Rotation/translation-invariant local minutia descriptors.

Commercial minutiae matchers (the Identix BioEngine family included)
anchor global alignment on *local structures*: each minutia is described
by the geometry of its nearest neighbours expressed in the minutia's own
frame, which makes the description invariant to placement.  We use the
classical neighbourhood descriptor (Jiang & Yau style):

for minutia *i* and each of its K nearest neighbours *j*:

* ``distance``  — |p_j - p_i| in mm;
* ``azimuth``   — direction of (p_j - p_i) relative to *i*'s direction;
* ``relative``  — direction difference of the two minutiae.

Descriptor similarity tolerantly matches neighbour entries one-to-one;
the similarity matrix between two templates then feeds the alignment
stage with its candidate correspondences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .types import Template

#: Neighbours per descriptor.
NEIGHBOURS = 4

#: Entry-matching tolerances.
DISTANCE_TOL_MM = 0.85
AZIMUTH_TOL_RAD = np.deg2rad(22.0)
RELATIVE_TOL_RAD = np.deg2rad(25.0)


def wrap_angle(values: np.ndarray) -> np.ndarray:
    """Wrap angle differences into (-pi, pi]."""
    return np.mod(np.asarray(values) + np.pi, 2.0 * np.pi) - np.pi


@dataclass(frozen=True)
class DescriptorSet:
    """Per-minutia neighbourhood descriptors for one template.

    Attributes
    ----------
    entries:
        ``(n, K, 3)`` array of (distance, azimuth, relative) rows;
        minutiae with fewer than K neighbours pad with ``inf`` distance,
        which never matches.
    n:
        Number of minutiae described.
    """

    entries: np.ndarray
    n: int
    #: ``(3, n, K)`` contiguous per-channel view of ``entries`` and the
    #: per-minutia count of real (non-padding) neighbour entries; both are
    #: derivable from ``entries`` and exist so :func:`similarity_matrix`
    #: does not recompute them for every comparison the set appears in.
    channels: Optional[np.ndarray] = None
    finite_counts: Optional[np.ndarray] = None


def _descriptor_set(entries: np.ndarray, n: int) -> DescriptorSet:
    return DescriptorSet(
        entries=entries,
        n=n,
        channels=np.ascontiguousarray(entries.transpose(2, 0, 1)),
        finite_counts=np.sum(np.isfinite(entries[:, :, 0]), axis=1),
    )


def build_descriptors(template: Template) -> DescriptorSet:
    """Compute the descriptor set of ``template`` (positions in mm)."""
    n = len(template)
    if n == 0:
        return _descriptor_set(np.zeros((0, NEIGHBOURS, 3)), 0)
    positions = template.positions_mm()
    angles = template.angles()

    diff = positions[None, :, :] - positions[:, None, :]
    dist = np.sqrt(np.sum(diff**2, axis=2))
    np.fill_diagonal(dist, np.inf)

    k = min(NEIGHBOURS, max(n - 1, 0))
    entries = np.full((n, NEIGHBOURS, 3), np.inf, dtype=np.float64)
    if k > 0:
        neighbour_idx = np.argsort(dist, axis=1)[:, :k]
        rows = np.arange(n)[:, None]
        selected = diff[rows, neighbour_idx]  # (n, k, 2)
        azimuth = np.arctan2(selected[..., 1], selected[..., 0]) - angles[:, None]
        relative = angles[neighbour_idx] - angles[:, None]
        entries[:, :k, 0] = dist[rows, neighbour_idx]
        entries[:, :k, 1] = wrap_angle(azimuth)
        entries[:, :k, 2] = wrap_angle(relative)
    return _descriptor_set(entries, n)


def similarity_matrix(a: DescriptorSet, b: DescriptorSet) -> np.ndarray:
    """Descriptor similarity in [0, 1] for every minutia pair (a_i, b_j).

    Two neighbour entries are *compatible* when distance, azimuth and
    relative direction all fall within tolerance; each entry may be used
    once (greedy by compatibility count is unnecessary at K=4 — a
    one-pass greedy over the K x K compatibility table is exact enough
    and fully vectorizable across the pair grid).
    """
    if a.n == 0 or b.n == 0:
        return np.zeros((a.n, b.n), dtype=np.float64)

    cha = a.channels if a.channels is not None else np.ascontiguousarray(a.entries.transpose(2, 0, 1))
    chb = b.channels if b.channels is not None else np.ascontiguousarray(b.entries.transpose(2, 0, 1))

    # Pairwise entry compatibility tensor: (na, nb, K, K), built with
    # in-place ufuncs to keep the temporary count down — this runs once
    # per comparison and is the kernel's largest allocation.
    scratch = cha[0][:, None, :, None] - chb[0][None, :, None, :]
    np.abs(scratch, out=scratch)
    compatible = scratch <= DISTANCE_TOL_MM

    for channel, tolerance in ((1, AZIMUTH_TOL_RAD), (2, RELATIVE_TOL_RAD)):
        np.subtract(
            cha[channel][:, None, :, None],
            chb[channel][None, :, None, :],
            out=scratch,
        )
        # Angle entries are already wrapped into (-pi, pi], so their raw
        # difference lies in (-2pi, 2pi) and |wrap(difference)| <= tol is
        # exactly |difference| <= tol or |difference| >= 2pi - tol —
        # no modulo needed.
        np.abs(scratch, out=scratch)
        within = scratch <= tolerance
        within |= scratch >= (2.0 * np.pi - tolerance)
        compatible &= within

    # Greedy one-to-one entry matching per (i, j): count row/column-unique
    # compatibilities.  With K=4 a simple double-sided cap is exact in the
    # overwhelming majority of cases and errs by at most one entry.
    row_hits = compatible.any(axis=3).sum(axis=2)  # entries of a_i matched
    col_hits = compatible.any(axis=2).sum(axis=2)  # entries of b_j matched
    matched = np.minimum(row_hits, col_hits).astype(np.float64)

    fca = a.finite_counts if a.finite_counts is not None else np.sum(np.isfinite(a.entries[:, :, 0]), axis=1)
    fcb = b.finite_counts if b.finite_counts is not None else np.sum(np.isfinite(b.entries[:, :, 0]), axis=1)
    k_effective = np.minimum(fca[:, None], fcb[None, :])
    with np.errstate(invalid="ignore", divide="ignore"):
        sim = np.where(k_effective > 0, matched / np.maximum(k_effective, 1), 0.0)
    return np.clip(sim, 0.0, 1.0)


__all__ = [
    "DescriptorSet",
    "build_descriptors",
    "similarity_matrix",
    "wrap_angle",
    "NEIGHBOURS",
    "DISTANCE_TOL_MM",
    "AZIMUTH_TOL_RAD",
    "RELATIVE_TOL_RAD",
]
