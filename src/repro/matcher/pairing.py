"""Minutia correspondence after alignment.

Once the probe is registered onto the gallery, minutiae pair up inside
*tolerance boxes*: a candidate pair must agree in position (within a
radius that absorbs jitter and mild elastic distortion) and direction.
Greedy nearest-first assignment resolves conflicts one-to-one, which is
what production minutiae matchers do (optimal assignment changes scores
negligibly at these densities and costs an order of magnitude more).

The pairing stage also determines the *overlap region* — the area both
impressions actually captured — so the score can normalize by how many
minutiae could possibly have matched, not by template size.  Without
this, partial-overlap captures (small platen D3, off-centre placements)
would be punished twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .alignment import RigidTransform
from .descriptors import wrap_angle

#: Position tolerance (mm) — about 1.6 ridge periods.
POSITION_TOL_MM = 0.80

#: Direction tolerance for a valid pair.
ANGLE_TOL_RAD = np.deg2rad(25.0)

#: Padding added around the point-cloud intersection when estimating overlap.
OVERLAP_PAD_MM = 1.0


@dataclass(frozen=True)
class PairingResult:
    """Correspondence outcome between an aligned template pair.

    Attributes
    ----------
    pairs:
        ``(m, 2)`` integer array of (index_in_A, index_in_B) matches.
    residuals_mm:
        Positional residual of each pair after alignment.
    angle_residuals_rad:
        Absolute direction residual of each pair.
    n_overlap_a, n_overlap_b:
        How many minutiae of each template lie in the common overlap
        region (the denominator of the score).
    """

    pairs: np.ndarray
    residuals_mm: np.ndarray
    angle_residuals_rad: np.ndarray
    n_overlap_a: int
    n_overlap_b: int

    @property
    def n_matched(self) -> int:
        """Number of matched minutia pairs."""
        return int(self.pairs.shape[0])


def pair_minutiae(
    positions_a: np.ndarray,
    angles_a: np.ndarray,
    positions_b: np.ndarray,
    angles_b: np.ndarray,
    transform: RigidTransform,
    position_tol_mm: float = POSITION_TOL_MM,
    angle_tol_rad: float = ANGLE_TOL_RAD,
) -> PairingResult:
    """Match template A (transformed) against template B.

    Parameters are mm-space positions/directions; ``transform`` maps A
    into B's frame.  The tolerances default to the engine's calibrated
    values; the tolerance-ablation benchmark sweeps them.
    """
    if len(positions_a) == 0 or len(positions_b) == 0:
        return PairingResult(
            pairs=np.zeros((0, 2), dtype=np.int64),
            residuals_mm=np.zeros(0),
            angle_residuals_rad=np.zeros(0),
            n_overlap_a=0,
            n_overlap_b=0,
        )

    moved_a = transform.apply(positions_a)
    moved_angles_a = transform.apply_angles(angles_a)

    dist = moved_a[:, 0][:, None] - positions_b[:, 0][None, :]
    dist *= dist
    dy = moved_a[:, 1][:, None] - positions_b[:, 1][None, :]
    dy *= dy
    dist += dy
    np.sqrt(dist, out=dist)
    # The position test rejects nearly every candidate cell, so direction
    # residuals are computed only where position already agrees — the same
    # element-wise arithmetic, therefore identical feasibility decisions.
    close_i, close_j = np.nonzero(dist <= position_tol_mm)

    pairs: List[Tuple[int, int]] = []
    residuals: List[float] = []
    angle_residuals: List[float] = []
    if close_i.size:
        angle_diff = np.abs(
            wrap_angle(moved_angles_a[close_i] - angles_b[close_j])
        )
        within_angle = angle_diff <= angle_tol_rad
        feas_i = close_i[within_angle]
        feas_j = close_j[within_angle]
        feas_dist = dist[feas_i, feas_j]
        feas_angle = angle_diff[within_angle]
        # Greedy nearest-first over the feasible entries only; sorting the
        # (usually sparse) feasible set is equivalent to sorting the full
        # cost matrix and stopping at the first infinite entry.
        order = np.argsort(feas_dist + 0.3 * feas_angle)
        used_a = np.zeros(len(positions_a), dtype=bool)
        used_b = np.zeros(len(positions_b), dtype=bool)
        for idx in order:
            i = int(feas_i[idx])
            j = int(feas_j[idx])
            if used_a[i] or used_b[j]:
                continue
            used_a[i] = True
            used_b[j] = True
            pairs.append((i, j))
            residuals.append(float(dist[i, j]))
            angle_residuals.append(float(feas_angle[idx]))

    n_overlap_a, n_overlap_b = _overlap_counts(moved_a, positions_b)
    return PairingResult(
        pairs=np.array(pairs, dtype=np.int64).reshape(-1, 2),
        residuals_mm=np.array(residuals, dtype=np.float64),
        angle_residuals_rad=np.array(angle_residuals, dtype=np.float64),
        n_overlap_a=n_overlap_a,
        n_overlap_b=n_overlap_b,
    )


def _overlap_counts(moved_a: np.ndarray, positions_b: np.ndarray) -> Tuple[int, int]:
    """Minutiae of each template inside the common bounding-box overlap."""
    a_min, a_max = moved_a.min(axis=0), moved_a.max(axis=0)
    b_min, b_max = positions_b.min(axis=0), positions_b.max(axis=0)
    lo = np.maximum(a_min, b_min) - OVERLAP_PAD_MM
    hi = np.minimum(a_max, b_max) + OVERLAP_PAD_MM
    if np.any(hi <= lo):
        return 0, 0
    in_a = np.all((moved_a >= lo) & (moved_a <= hi), axis=1)
    in_b = np.all((positions_b >= lo) & (positions_b <= hi), axis=1)
    return int(np.count_nonzero(in_a)), int(np.count_nonzero(in_b))


__all__ = [
    "PairingResult",
    "pair_minutiae",
    "POSITION_TOL_MM",
    "ANGLE_TOL_RAD",
    "OVERLAP_PAD_MM",
]
