"""Proportion intervals and paired matcher comparison.

Supporting statistics for the extension experiments:

* :func:`wilson_interval` — the Wilson score interval for a binomial
  proportion; the right interval for small error counts (FNMR cells hold
  a handful of failures), where the normal approximation collapses;
* :func:`mcnemar_test` — paired comparison of two matchers (or two
  system configurations) on the *same* comparisons: did engine B fix
  more failures than it introduced?  This is the statistically sound way
  to claim "diverse matchers improve detection" (paper §V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .kendall import erfc_two_sided


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Parameters
    ----------
    successes, trials:
        The observed counts.
    confidence:
        Two-sided confidence level in (0, 1).
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    if trials == 0:
        return 0.0, 1.0
    z = _normal_quantile(1.0 - (1.0 - confidence) / 2.0)
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
        / denom
    )
    low = max(0.0, centre - half)
    high = min(1.0, centre + half)
    # Boundary exactness: with 0 successes the analytic lower bound is 0
    # and floating error must not push it above the point estimate
    # (symmetrically for all successes).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return low, high


def _normal_quantile(q: float) -> float:
    """Standard normal quantile via bisection on erfc (no scipy)."""
    if not 0.0 < q < 1.0:
        raise ValueError("quantile argument must be in (0, 1)")
    lo, hi = -10.0, 10.0
    for __ in range(80):
        mid = (lo + hi) / 2.0
        cdf = 1.0 - 0.5 * math.erfc(mid / math.sqrt(2.0))
        if cdf < q:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class McNemarResult:
    """Outcome of a paired McNemar test.

    Attributes
    ----------
    b:
        Comparisons system A got right and system B got wrong.
    c:
        Comparisons system B got right and system A got wrong.
    statistic:
        The continuity-corrected chi-square statistic.
    p_value:
        Two-sided p-value (chi-square with 1 dof ≡ |Z| normal tail).
    """

    b: int
    c: int
    statistic: float
    p_value: float

    @property
    def favors_b(self) -> bool:
        """Whether system B fixed more cases than it broke."""
        return self.c > self.b


def mcnemar_test(
    correct_a: Sequence[bool], correct_b: Sequence[bool]
) -> McNemarResult:
    """Paired McNemar test over per-comparison correctness indicators.

    Parameters
    ----------
    correct_a, correct_b:
        Equal-length boolean sequences: whether each system decided the
        k-th comparison correctly.
    """
    a = np.asarray(correct_a, dtype=bool)
    b_arr = np.asarray(correct_b, dtype=bool)
    if a.shape != b_arr.shape or a.ndim != 1:
        raise ValueError("mcnemar_test needs two equal-length 1-D sequences")
    if a.size == 0:
        raise ValueError("mcnemar_test needs at least one comparison")
    b = int(np.count_nonzero(a & ~b_arr))
    c = int(np.count_nonzero(~a & b_arr))
    if b + c == 0:
        return McNemarResult(b=b, c=c, statistic=0.0, p_value=1.0)
    statistic = (abs(b - c) - 1.0) ** 2 / (b + c)
    # chi2(1 dof) tail == two-sided normal tail of sqrt(statistic).
    p_value = erfc_two_sided(math.sqrt(statistic))
    return McNemarResult(b=b, c=c, statistic=statistic, p_value=p_value)


def render_det(
    fmr_values: Sequence[float],
    fnmr_values: Sequence[float],
    title: str = "DET",
    width: int = 56,
) -> str:
    """Text rendering of a detection-error-tradeoff series.

    Rows are requested FMR operating points; bars show FNMR on a log
    scale so the decades the paper cares about (10^-2 … 10^-4) read
    directly.
    """
    fmr = np.asarray(fmr_values, dtype=np.float64)
    fnmr = np.asarray(fnmr_values, dtype=np.float64)
    if fmr.shape != fnmr.shape:
        raise ValueError("fmr and fnmr series must align")
    lines = [title, f"  {'FMR':>10}{'FNMR':>10}"]
    floor = 1e-5
    for x, y in zip(fmr, fnmr):
        log_span = math.log10(1.0 / floor)
        filled = int(round(width * (math.log10(max(y, floor) / floor)) / log_span))
        lines.append(f"  {x:>10.1e}{y:>10.4f} |{'#' * filled}")
    return "\n".join(lines)


__all__ = ["wilson_interval", "McNemarResult", "mcnemar_test", "render_det"]
