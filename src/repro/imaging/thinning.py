"""Binary image skeletonization (Zhang–Suen).

Minutiae live on the one-pixel-wide ridge skeleton; the classical
Zhang–Suen (1984) parallel thinning algorithm produces it.  The
implementation is fully vectorized: each sub-iteration evaluates the
deletion conditions for every pixel simultaneously over the eight
neighbourhood planes of :func:`neighbourhood_planes`, so a typical
rendered impression (~300x350 px) thins in a few tens of milliseconds.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def neighbourhood_planes(z: np.ndarray) -> Tuple[np.ndarray, ...]:
    """The 8-neighbourhood planes P2..P9 in Zhang–Suen's ordering.

    P2 is the pixel above, then clockwise: P3 upper-right, P4 right,
    P5 lower-right, P6 below, P7 lower-left, P8 left, P9 upper-left.
    (Row 0 is the top of the image.)

    Implemented as eight views into one zero-padded copy: a single
    (H+2, W+2) allocation replaces the twelve full-size copies the
    equivalent ``np.roll`` chain would make, and out-of-frame pixels
    read as background instead of wrapping to the opposite edge —
    which is what every consumer (thinning, crossing number, erosion)
    actually wants at the border.
    """
    height, width = z.shape
    padded = np.zeros((height + 2, width + 2), dtype=z.dtype)
    padded[1:-1, 1:-1] = z
    p2 = padded[:-2, 1:-1]
    p3 = padded[:-2, 2:]
    p4 = padded[1:-1, 2:]
    p5 = padded[2:, 2:]
    p6 = padded[2:, 1:-1]
    p7 = padded[2:, :-2]
    p8 = padded[1:-1, :-2]
    p9 = padded[:-2, :-2]
    return p2, p3, p4, p5, p6, p7, p8, p9


def _sub_iteration(z: np.ndarray, first: bool) -> Tuple[np.ndarray, int]:
    p2, p3, p4, p5, p6, p7, p8, p9 = neighbourhood_planes(z)
    neighbours_sum = (
        p2.astype(np.int8) + p3 + p4 + p5 + p6 + p7 + p8 + p9
    )
    sequence = (p2, p3, p4, p5, p6, p7, p8, p9, p2)
    transitions = sum(
        ((sequence[k] == 0) & (sequence[k + 1] == 1)).astype(np.int8)
        for k in range(8)
    )
    if first:
        cond = (
            (z == 1)
            & (neighbours_sum >= 2)
            & (neighbours_sum <= 6)
            & (transitions == 1)
            & ((p2 & p4 & p6) == 0)
            & ((p4 & p6 & p8) == 0)
        )
    else:
        cond = (
            (z == 1)
            & (neighbours_sum >= 2)
            & (neighbours_sum <= 6)
            & (transitions == 1)
            & ((p2 & p4 & p8) == 0)
            & ((p2 & p6 & p8) == 0)
        )
    out = z.copy()
    out[cond] = 0
    return out, int(np.count_nonzero(cond))


def skeletonize(binary: np.ndarray, max_iterations: int = 200) -> np.ndarray:
    """Thin a binary ridge image to a one-pixel-wide skeleton.

    Parameters
    ----------
    binary:
        2-D boolean (or 0/1) array; True = ridge.
    max_iterations:
        Safety cap; real ridge images converge in ~ridge-width/2 rounds.

    Returns
    -------
    numpy.ndarray
        uint8 skeleton (1 = skeleton pixel).
    """
    if binary.ndim != 2:
        raise ValueError("skeletonize expects a 2-D array")
    z = (np.asarray(binary) > 0).astype(np.uint8)
    # Clear the border: a skeleton pixel needs its full 8-neighbourhood,
    # so frame pixels can never survive thinning anyway.
    z[0, :] = z[-1, :] = 0
    z[:, 0] = z[:, -1] = 0
    for __ in range(max_iterations):
        z, removed_a = _sub_iteration(z, first=True)
        z, removed_b = _sub_iteration(z, first=False)
        if removed_a + removed_b == 0:
            break
    return z


def crossing_number(skeleton: np.ndarray) -> np.ndarray:
    """Rutovitz crossing number at every skeleton pixel.

    CN = 1 marks ridge endings, CN >= 3 marks bifurcations, CN = 2 is a
    ridge continuation.  Non-skeleton pixels get 0.
    """
    z = (np.asarray(skeleton) > 0).astype(np.int8)
    p2, p3, p4, p5, p6, p7, p8, p9 = neighbourhood_planes(z)
    sequence = (p2, p3, p4, p5, p6, p7, p8, p9, p2)
    cn = sum(np.abs(sequence[k] - sequence[k + 1]) for k in range(8)) // 2
    return np.where(z == 1, cn, 0)


__all__ = ["skeletonize", "crossing_number", "neighbourhood_planes"]
