"""RequestLog: JSONL append, size rotation, env config, slow threshold."""

import json
import threading

import pytest

from repro.service.reqlog import (
    DEFAULT_MAX_BYTES,
    RequestLog,
    iter_reqlog,
    slow_threshold_ms,
)


class TestWriting:
    def test_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "req.jsonl"
        with RequestLog(path) as log:
            log.write({"request_id": "a", "status": 200})
            log.write({"request_id": "b", "status": 404})
        records = list(iter_reqlog(path))
        assert [r["request_id"] for r in records] == ["a", "b"]
        assert log.lines_written == 2

    def test_lines_are_valid_standalone_json(self, tmp_path):
        path = tmp_path / "req.jsonl"
        with RequestLog(path) as log:
            log.write({"nested": {"phases": [{"name": "parse", "ms": 1.0}]}})
        for line in path.read_text().splitlines():
            assert json.loads(line)["nested"]["phases"][0]["name"] == "parse"

    def test_parent_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "logs" / "req.jsonl"
        with RequestLog(path) as log:
            log.write({"ok": True})
        assert path.exists()

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "req.jsonl"
        log = RequestLog(path)

        def hammer(tag):
            for i in range(50):
                log.write({"tag": tag, "i": i})

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        records = list(iter_reqlog(path))
        assert len(records) == 200  # every line parsed cleanly


class TestRotation:
    def test_rotates_past_max_bytes(self, tmp_path):
        path = tmp_path / "req.jsonl"
        log = RequestLog(path, max_bytes=2048)
        for i in range(200):
            log.write({"request_id": f"req-{i:04d}", "pad": "x" * 40})
        log.close()
        assert log.rotations >= 1
        assert path.with_name("req.jsonl.1").exists()
        # The live file stays under the cap.
        assert path.stat().st_size <= 2048

    def test_generations_shift_and_oldest_drops(self, tmp_path):
        path = tmp_path / "req.jsonl"
        log = RequestLog(path, max_bytes=1100, backups=2)
        for i in range(400):
            log.write({"i": i, "pad": "y" * 40})
        log.close()
        assert path.with_name("req.jsonl.1").exists()
        assert path.with_name("req.jsonl.2").exists()
        assert not path.with_name("req.jsonl.3").exists()

    def test_latest_records_stay_in_live_file(self, tmp_path):
        path = tmp_path / "req.jsonl"
        log = RequestLog(path, max_bytes=1100)
        for i in range(100):
            log.write({"i": i, "pad": "z" * 40})
        log.close()
        live = list(iter_reqlog(path))
        assert live and live[-1]["i"] == 99


class TestConfig:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_REQLOG", raising=False)
        assert RequestLog.from_environment() is None

    def test_env_path_and_size(self, tmp_path, monkeypatch):
        target = tmp_path / "audit.jsonl"
        monkeypatch.setenv("REPRO_SERVE_REQLOG", str(target))
        monkeypatch.setenv("REPRO_SERVE_REQLOG_BYTES", "4096")
        log = RequestLog.from_environment()
        assert log is not None
        assert log.path == target
        assert log._max_bytes == 4096
        log.close()

    def test_default_max_bytes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_REQLOG", str(tmp_path / "a.jsonl"))
        monkeypatch.delenv("REPRO_SERVE_REQLOG_BYTES", raising=False)
        log = RequestLog.from_environment()
        assert log._max_bytes == DEFAULT_MAX_BYTES
        log.close()

    def test_slow_threshold_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_SLOW_MS", raising=False)
        assert slow_threshold_ms() is None
        monkeypatch.setenv("REPRO_SERVE_SLOW_MS", "250")
        assert slow_threshold_ms() == 250.0
        monkeypatch.setenv("REPRO_SERVE_SLOW_MS", "-1")
        assert slow_threshold_ms() is None


class TestIteration:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_reqlog(tmp_path / "absent.jsonl")) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "req.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert [r["a"] for r in iter_reqlog(path)] == [1, 2]
