"""Master finger synthesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesis.master import (
    RIDGE_PERIOD_MM,
    TYPE_BIFURCATION,
    TYPE_ENDING,
    MasterFinger,
    MasterMinutia,
    synthesize_master_finger,
)


@pytest.fixture(scope="module")
def finger():
    return synthesize_master_finger(np.random.default_rng(11))


class TestMasterMinutia:
    def test_valid(self):
        m = MasterMinutia(0, 0, 1.0, TYPE_ENDING, 0.9)
        assert m.kind == TYPE_ENDING

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            MasterMinutia(0, 0, 1.0, "island", 0.9)

    def test_bad_robustness(self):
        with pytest.raises(ValueError):
            MasterMinutia(0, 0, 1.0, TYPE_ENDING, 0.0)
        with pytest.raises(ValueError):
            MasterMinutia(0, 0, 1.0, TYPE_ENDING, 1.5)


class TestSynthesis:
    def test_minutiae_count_physiological(self, finger):
        assert 22 <= finger.n_minutiae <= 75

    def test_minimum_separation_property(self, finger):
        positions = finger.positions()
        diff = positions[:, None, :] - positions[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        np.fill_diagonal(dist, np.inf)
        assert dist.min() >= 2.1 * RIDGE_PERIOD_MM - 1e-9

    def test_minutiae_inside_pad(self, finger):
        for m in finger.minutiae:
            assert finger.contains(m.x, m.y)

    def test_angles_follow_ridge_flow(self, finger):
        for m in finger.minutiae:
            orientation = float(
                finger.fld.angle_at(np.float64(m.x), np.float64(m.y))
            )
            diff = (m.angle - orientation) % np.pi
            assert min(diff, np.pi - diff) < 1e-6

    def test_both_types_present(self, finger):
        kinds = {m.kind for m in finger.minutiae}
        assert kinds == {TYPE_ENDING, TYPE_BIFURCATION}

    def test_robustness_in_range(self, finger):
        for m in finger.minutiae:
            assert 0.15 <= m.robustness <= 1.0

    def test_deterministic(self):
        a = synthesize_master_finger(np.random.default_rng(5))
        b = synthesize_master_finger(np.random.default_rng(5))
        assert a.minutiae == b.minutiae
        assert a.pattern == b.pattern

    def test_different_seeds_differ(self):
        a = synthesize_master_finger(np.random.default_rng(5))
        b = synthesize_master_finger(np.random.default_rng(6))
        assert a.minutiae != b.minutiae

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_never_degenerate(self, seed):
        finger = synthesize_master_finger(np.random.default_rng(seed))
        assert finger.n_minutiae >= 8
        assert finger.pad_half_width > 0 and finger.pad_half_height > 0

    def test_edge_minutiae_less_robust_on_average(self):
        # Pool across fingers: edge penalty should be visible statistically.
        rng = np.random.default_rng(12)
        central, edge = [], []
        for __ in range(12):
            f = synthesize_master_finger(rng)
            for m in f.minutiae:
                radial = (m.x / f.pad_half_width) ** 2 + (m.y / f.pad_half_height) ** 2
                (central if radial < 0.4 else edge).append(m.robustness)
        assert np.mean(central) > np.mean(edge)
