"""Failure injection: the library must fail loudly and precisely.

A dependable-systems reproduction should practice what it studies — no
silent partial results, errors that carry the failing key.
"""

import numpy as np
import pytest

from repro import InteroperabilityStudy, StudyConfig
from repro.core.scores import run_jobs
from repro.runtime.errors import AcquisitionError, ConfigurationError
from repro.sensors.protocol import Collection


class TestMissingDataFails:
    def test_run_jobs_names_the_missing_key(self, tiny_collection, matcher):
        jobs = [(9999, "D0", 0, 9999, "D0", 1)]  # subject never acquired
        with pytest.raises(AcquisitionError, match="9999"):
            run_jobs(jobs, tiny_collection, matcher, "right_index", "DMG")

    def test_empty_collection_fails_immediately(self, matcher):
        jobs = [(0, "D0", 0, 0, "D0", 1)]
        with pytest.raises(AcquisitionError):
            run_jobs(jobs, Collection(), matcher, "right_index", "DMG")

    def test_unknown_finger_fails(self, tiny_collection, matcher):
        jobs = [(0, "D0", 0, 0, "D0", 1)]
        with pytest.raises(AcquisitionError, match="left_pinky"):
            run_jobs(jobs, tiny_collection, matcher, "left_pinky", "DMG")


class TestConfigFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text('{"n_subjects": 12, "master_seed": 77}')
        config = StudyConfig.from_file(path)
        assert config.n_subjects == 12
        assert config.master_seed == 77

    def test_overrides_beat_file(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text('{"n_subjects": 12}')
        assert StudyConfig.from_file(path, n_subjects=5).n_subjects == 5

    def test_unknown_key_named(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text('{"n_subjcts": 12}')  # typo
        with pytest.raises(ConfigurationError, match="n_subjcts"):
            StudyConfig.from_file(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            StudyConfig.from_file(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="object"):
            StudyConfig.from_file(path)

    def test_file_values_still_validated(self, tmp_path):
        path = tmp_path / "study.json"
        path.write_text('{"n_subjects": 1}')
        with pytest.raises(ConfigurationError):
            StudyConfig.from_file(path)


class TestStudyErrorPropagation:
    def test_bad_device_in_genuine_scores(self, tiny_study):
        with pytest.raises(Exception):
            tiny_study.genuine_scores("D9", "D0")

    def test_nan_scores_never_emitted(self, tiny_study):
        for score_set in tiny_study.score_sets().values():
            assert np.all(np.isfinite(score_set.scores))
            assert np.all(score_set.scores >= 0)
