"""Image-domain substrate: rendering and minutiae extraction.

Closes the loop the template pipeline shortcut: render a finger as a
real ridge image (minutiae planted as phase spirals), then recover a
template from the image with a classical extractor (binarize →
Zhang–Suen skeleton → crossing number → artifact filtering).
"""

from .extraction import (
    ExtractionSettings,
    binarize,
    extract_template,
    recovery_metrics,
)
from .pipeline import ImagePipeline, template_from_bundle, template_to_arrays
from .render import (
    RenderedImpression,
    RenderSettings,
    render_finger,
    render_sensed_impression,
    to_uint8,
)
from .thinning import crossing_number, neighbourhood_planes, skeletonize

__all__ = [
    "RenderSettings",
    "RenderedImpression",
    "render_finger",
    "render_sensed_impression",
    "to_uint8",
    "skeletonize",
    "crossing_number",
    "neighbourhood_planes",
    "ExtractionSettings",
    "binarize",
    "extract_template",
    "recovery_metrics",
    "ImagePipeline",
    "template_to_arrays",
    "template_from_bundle",
]
