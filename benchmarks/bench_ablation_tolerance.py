"""Ablation 5 — pairing tolerance sweep.

The tolerance box (0.8 mm, 25 degrees) is the matcher's central
calibration: too tight and elastic skin distortion breaks genuine pairs,
too loose and impostor minutiae start pairing by chance.  The sweep
shows the engine sits on the plateau where genuine scores are stable and
the impostor ceiling stays below the paper's 7-landmark.
"""

import numpy as np

from repro.api import (
    build_descriptors,
    candidate_pairs,
    compute_score,
    estimate_alignments,
    pair_minutiae,
    similarity_matrix,
)

TOLERANCES_MM = (0.4, 0.6, 0.8, 1.1, 1.5)
N_PAIRS = 25


def _match(probe, gallery, tol_mm):
    desc_p = build_descriptors(probe)
    desc_g = build_descriptors(gallery)
    candidates = candidate_pairs(similarity_matrix(desc_p, desc_g))
    transforms = estimate_alignments(
        probe.positions_mm(), probe.angles(),
        gallery.positions_mm(), gallery.angles(), candidates,
    )
    best = 0.0
    for transform in transforms:
        pairing = pair_minutiae(
            probe.positions_mm(), probe.angles(),
            gallery.positions_mm(), gallery.angles(), transform,
            position_tol_mm=tol_mm,
        )
        best = max(
            best,
            compute_score(pairing, probe.qualities(), gallery.qualities()).score,
        )
    return best


def test_ablation_pairing_tolerance(benchmark, study, record_artifact):
    collection = study.collection()
    n = min(N_PAIRS, study.config.n_subjects)
    genuine = [
        (
            collection.get(sid, "right_index", "D0", 1).template,
            collection.get(sid, "right_index", "D0", 0).template,
        )
        for sid in range(n)
    ]
    impostor = [
        (
            collection.get((sid + 1) % n, "right_index", "D0", 1).template,
            collection.get(sid, "right_index", "D0", 0).template,
        )
        for sid in range(n)
    ]

    def sweep():
        rows = {}
        for tol in TOLERANCES_MM:
            g = np.array([_match(p, q, tol) for p, q in genuine])
            i = np.array([_match(p, q, tol) for p, q in impostor])
            rows[tol] = (g.mean(), i.max())
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation: pairing tolerance (same-device D0 comparisons)",
        f"  {'tol (mm)':<10}{'genuine mean':>14}{'impostor max':>14}",
    ]
    for tol, (genuine_mean, impostor_max) in rows.items():
        marker = "  <- engine default" if abs(tol - 0.8) < 1e-9 else ""
        lines.append(f"  {tol:<10}{genuine_mean:>14.2f}{impostor_max:>14.2f}{marker}")
    text = "\n".join(lines)
    record_artifact(text)
    print("\n" + text)

    # Tighter boxes lose genuine evidence...
    assert rows[0.4][0] < rows[0.8][0]
    # ...looser boxes inflate the impostor ceiling.
    assert rows[1.5][1] >= rows[0.8][1]
    # The default keeps the ceiling under the paper's landmark.
    assert rows[0.8][1] < 8.5
