"""Skeletonization and crossing-number analysis."""

import numpy as np
import pytest

from repro.imaging.thinning import crossing_number, skeletonize


def _thick_line(height=30, width=60, row=15, thickness=5):
    img = np.zeros((height, width), dtype=bool)
    img[row - thickness // 2 : row + thickness // 2 + 1, 5:-5] = True
    return img


class TestSkeletonize:
    def test_line_thins_to_one_pixel(self):
        skeleton = skeletonize(_thick_line())
        columns = skeleton[:, 10:-10]
        # Every interior column keeps exactly one skeleton pixel.
        assert np.all(columns.sum(axis=0) == 1)

    def test_skeleton_is_subset_of_input(self):
        original = _thick_line()
        skeleton = skeletonize(original)
        assert np.all(original[skeleton == 1])

    def test_empty_image(self):
        skeleton = skeletonize(np.zeros((20, 20), dtype=bool))
        assert skeleton.sum() == 0

    def test_idempotent(self):
        skeleton = skeletonize(_thick_line())
        again = skeletonize(skeleton)
        np.testing.assert_array_equal(skeleton, again)

    def test_preserves_connectivity(self):
        skeleton = skeletonize(_thick_line())
        # The line must not break into pieces: count endpoints (CN == 1).
        cn = crossing_number(skeleton)
        assert np.count_nonzero(cn == 1) == 2  # exactly the two tips

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            skeletonize(np.zeros(10))

    def test_border_cleared(self):
        img = np.ones((12, 12), dtype=bool)
        skeleton = skeletonize(img)
        assert skeleton[0, :].sum() == 0 and skeleton[:, 0].sum() == 0


class TestCrossingNumber:
    def test_line_tips_are_endings(self):
        skeleton = np.zeros((9, 9), dtype=np.uint8)
        skeleton[4, 2:7] = 1
        cn = crossing_number(skeleton)
        assert cn[4, 2] == 1 and cn[4, 6] == 1      # tips
        assert np.all(cn[4, 3:6] == 2)              # interior

    def test_y_junction_is_bifurcation(self):
        skeleton = np.zeros((11, 11), dtype=np.uint8)
        skeleton[5, 1:6] = 1            # stem
        for k in range(1, 5):
            skeleton[5 - k, 5 + k] = 1  # upper branch
            skeleton[5 + k, 5 + k] = 1  # lower branch
        cn = crossing_number(skeleton)
        assert cn[5, 5] >= 3

    def test_isolated_pixel(self):
        skeleton = np.zeros((5, 5), dtype=np.uint8)
        skeleton[2, 2] = 1
        assert crossing_number(skeleton)[2, 2] == 0

    def test_background_is_zero(self):
        skeleton = np.zeros((5, 5), dtype=np.uint8)
        skeleton[2, 1:4] = 1
        cn = crossing_number(skeleton)
        assert np.all(cn[skeleton == 0] == 0)
