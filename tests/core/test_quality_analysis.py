"""Table 6 / Figure 5 analysis module."""

import numpy as np
import pytest

from repro.core.quality_analysis import (
    LOW_SCORE_THRESHOLD,
    good_quality_low_score_fraction,
    low_score_quality_surface,
    quality_filtered_fnmr_matrix,
    surface_mass_by_worst_quality,
)
from repro.stats.histogram import FrequencySurface


class TestSurface:
    def test_shape(self, tiny_study):
        surface = low_score_quality_surface(tiny_study, cross_device=False)
        assert surface.counts.shape == (5, 5)

    def test_total_matches_low_score_count(self, tiny_study):
        surface = low_score_quality_surface(tiny_study, cross_device=True)
        ddmg = tiny_study.score_sets()["DDMG"]
        assert surface.total == int(np.sum(ddmg.scores < LOW_SCORE_THRESHOLD))

    def test_cross_device_has_more_low_scores(self, tiny_study):
        same = low_score_quality_surface(tiny_study, cross_device=False)
        cross = low_score_quality_surface(tiny_study, cross_device=True)
        # DDMG has 5x the scores of DMG; normalize per comparison.
        sets = tiny_study.score_sets()
        same_rate = same.total / len(sets["DMG"])
        cross_rate = cross.total / len(sets["DDMG"])
        assert cross_rate >= same_rate

    def test_threshold_parameter(self, tiny_study):
        strict = low_score_quality_surface(tiny_study, True, score_below=5.0)
        loose = low_score_quality_surface(tiny_study, True, score_below=15.0)
        assert strict.total <= loose.total


class TestHelpers:
    def _surface(self, counts):
        return FrequencySurface(
            row_labels=(1, 2, 3, 4, 5), col_labels=(1, 2, 3, 4, 5),
            counts=np.array(counts),
        )

    def test_good_quality_fraction(self):
        counts = np.zeros((5, 5), dtype=int)
        counts[0, 0] = 2  # both NFIQ 1
        counts[4, 4] = 8  # both NFIQ 5
        surface = self._surface(counts)
        assert good_quality_low_score_fraction(surface, max_level=2) == 0.2

    def test_good_quality_fraction_empty(self):
        surface = self._surface(np.zeros((5, 5), dtype=int))
        assert good_quality_low_score_fraction(surface) == 0.0

    def test_mass_by_worst_quality(self):
        counts = np.zeros((5, 5), dtype=int)
        counts[0, 2] = 3  # worst = 3
        counts[2, 0] = 4  # worst = 3
        counts[4, 0] = 1  # worst = 5
        mass = surface_mass_by_worst_quality(self._surface(counts))
        assert mass[3] == 7
        assert mass[5] == 1
        assert mass[1] == 0

    def test_paper_reading_low_score_rate_rises_with_poor_quality(self, tiny_study):
        ddmg = tiny_study.score_sets()["DDMG"]
        worst = np.maximum(ddmg.nfiq_gallery, ddmg.nfiq_probe)
        good = ddmg.scores[worst <= 2]
        poor = ddmg.scores[worst >= 3]
        if len(good) >= 10 and len(poor) >= 10:
            assert np.mean(poor < LOW_SCORE_THRESHOLD) >= np.mean(
                good < LOW_SCORE_THRESHOLD
            )


class TestTable6:
    def test_matrix_shape(self, tiny_study):
        matrix = quality_filtered_fnmr_matrix(tiny_study)
        assert matrix.shape == (5, 5)
