"""Per-subject traits and demographics.

The paper reports its participant demographics in Figure 1 (53 % aged
20–29; 57.2 % Caucasian).  Beyond demographics, each synthetic subject
carries *interaction traits* that persist across all their acquisitions
and induce the within-subject correlations the study measures:

* skin dryness/moisture — dominates image quality;
* typical finger pressure and its variability — drives elastic
  distortion magnitude and area of contact;
* habituation rate — how much presentation quality improves from a
  subject's first impressions to their last (a §V further-work item).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

#: Age bands as shown in Figure 1, with sampling probabilities chosen to
#: match the paper's stated anchor (53 % in 20-29) and a university
#: collection profile for the remainder.
AGE_GROUPS: Tuple[Tuple[str, float], ...] = (
    ("<20", 0.09),
    ("20-29", 0.53),
    ("30-39", 0.15),
    ("40-49", 0.10),
    ("50-59", 0.08),
    ("60+", 0.05),
)

#: Ethnicity groups anchored at the paper's 57.2 % Caucasian figure.
ETHNICITY_GROUPS: Tuple[Tuple[str, float], ...] = (
    ("Caucasian", 0.572),
    ("Asian", 0.178),
    ("African-American", 0.118),
    ("Hispanic", 0.082),
    ("Other", 0.050),
)


@dataclass(frozen=True)
class Demographics:
    """A subject's demographic record (Figure 1 attributes)."""

    age_group: str
    ethnicity: str


@dataclass(frozen=True)
class SubjectTraits:
    """Stable interaction traits of one participant.

    Attributes
    ----------
    skin_dryness:
        0 = well-moisturized, 1 = very dry skin (poor ridge contrast).
    pressure_mean:
        Typical normalized contact pressure in [0.3, 1.0]; low pressure
        shrinks the contact area.
    pressure_spread:
        Within-subject variability of pressure between impressions.
    placement_sloppiness:
        Scales translation/rotation offsets when placing the finger.
    habituation_rate:
        Per-presentation improvement of placement/pressure control; the
        collection protocol applies it as impressions accumulate.
    """

    skin_dryness: float
    pressure_mean: float
    pressure_spread: float
    placement_sloppiness: float
    habituation_rate: float

    def __post_init__(self) -> None:
        for name in ("skin_dryness", "pressure_mean", "pressure_spread",
                     "placement_sloppiness", "habituation_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.5:
                raise ValueError(f"{name} out of range: {value}")


def _sample_categorical(
    rng: np.random.Generator, groups: Tuple[Tuple[str, float], ...]
) -> str:
    labels = [label for label, __ in groups]
    probs = np.array([p for __, p in groups], dtype=np.float64)
    probs = probs / probs.sum()
    return labels[int(rng.choice(len(labels), p=probs))]


def sample_demographics(rng: np.random.Generator) -> Demographics:
    """Draw a demographic record matching the Figure 1 distribution."""
    return Demographics(
        age_group=_sample_categorical(rng, AGE_GROUPS),
        ethnicity=_sample_categorical(rng, ETHNICITY_GROUPS),
    )


def sample_traits(rng: np.random.Generator, demographics: Demographics) -> SubjectTraits:
    """Draw interaction traits, weakly conditioned on age.

    Older skin tends to be drier and less elastic — a documented effect
    in fingerprint quality studies — so the dryness prior shifts with the
    age band.  The effect is mild; identity comes from the master finger,
    not demographics.
    """
    age_dryness_shift = {
        "<20": -0.05, "20-29": 0.0, "30-39": 0.04,
        "40-49": 0.08, "50-59": 0.14, "60+": 0.20,
    }[demographics.age_group]
    dryness = float(np.clip(rng.beta(2.2, 4.0) + age_dryness_shift, 0.0, 1.0))
    pressure_mean = float(np.clip(rng.normal(0.66, 0.12), 0.30, 1.0))
    pressure_spread = float(np.clip(rng.gamma(2.0, 0.035), 0.01, 0.30))
    sloppiness = float(np.clip(rng.beta(2.0, 3.5), 0.05, 1.0))
    habituation = float(np.clip(rng.beta(2.0, 5.0), 0.0, 0.8))
    return SubjectTraits(
        skin_dryness=dryness,
        pressure_mean=pressure_mean,
        pressure_spread=pressure_spread,
        placement_sloppiness=sloppiness,
        habituation_rate=habituation,
    )


def demographic_histogram(records: Tuple[Demographics, ...]) -> Dict[str, Dict[str, int]]:
    """Tabulate age/ethnicity counts, the data behind Figure 1."""
    ages: Dict[str, int] = {label: 0 for label, __ in AGE_GROUPS}
    ethnicities: Dict[str, int] = {label: 0 for label, __ in ETHNICITY_GROUPS}
    for record in records:
        ages[record.age_group] += 1
        ethnicities[record.ethnicity] += 1
    return {"age": ages, "ethnicity": ethnicities}


__all__ = [
    "Demographics",
    "SubjectTraits",
    "AGE_GROUPS",
    "ETHNICITY_GROUPS",
    "sample_demographics",
    "sample_traits",
    "demographic_histogram",
]
