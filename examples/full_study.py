#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

This is the paper-reproduction driver.  At the default scale it finishes
in about a minute; for the full 494-participant experiment run

    REPRO_SUBJECTS=494 REPRO_WORKERS=8 python examples/full_study.py

(expect tens of minutes: the paper's Table 3 implies ~616,000 matcher
invocations).  Score sets are cached under ``.repro_cache``; re-running
the same configuration only recomputes the analyses.
"""

from repro.api import (
    DEVICE_ORDER,
    InteroperabilityStudy,
    kendall_matrix,
    low_score_quality_surface,
    ProgressReporter,
    quality_filtered_fnmr_matrix,
    render_figure1,
    render_figure4,
    render_figure5,
    render_fnmr_matrix,
    render_score_histograms,
    render_table1,
    render_table3,
    render_table4,
    StudyConfig,
    TABLE5_FMR,
)


def main() -> None:
    config = StudyConfig.from_environment(
        n_subjects=48, n_workers=4, cache_dir=".repro_cache"
    )
    print(config.describe())
    # Per-stage progress (collection, then each score scenario) on stderr.
    study = InteroperabilityStudy(
        config,
        progress_factory=lambda total, label: ProgressReporter(
            total=total, label=label
        ),
    )
    sets = study.score_sets()
    rule = "=" * 72

    print(rule)
    print(render_figure1(study.demographics()))

    print(rule)
    print(render_table1())

    print(rule)
    from repro.api import render_collection_summary, summarize_collection

    print(render_collection_summary(summarize_collection(study.collection())))

    print(rule)
    print(render_table3(sets, config.n_subjects))

    print(rule)
    print(
        render_score_histograms(
            sets["DMG"].for_pair("D0", "D0"),
            sets["DMI"].for_pair("D0", "D0"),
            "Figure 2: DMG vs DMI, Cross Match Guardian R2",
        )
    )

    print(rule)
    print(
        render_score_histograms(
            sets["DDMG"].for_pair("D0", "D1"),
            sets["DDMI"].for_pair("D0", "D1"),
            "Figure 3: DDMG vs DDMI, Guardian R2 gallery vs digID Mini probe",
        )
    )

    print(rule)
    per_probe = {
        probe: study.genuine_scores("D3", probe).scores for probe in DEVICE_ORDER
    }
    print(render_figure4(per_probe, gallery_device="D3"))

    print(rule)
    print(render_table4(kendall_matrix(study)))

    print(rule)
    print(
        render_fnmr_matrix(
            study.fnmr_matrix(TABLE5_FMR),
            "Table 5: FNMR at fixed FMR of 0.01%",
        )
    )

    print(rule)
    print(
        render_fnmr_matrix(
            quality_filtered_fnmr_matrix(study),
            "Table 6: FNMR at fixed FMR of 0.1% for images with NFIQ < 3",
        )
    )

    print(rule)
    print(
        render_figure5(
            low_score_quality_surface(study, cross_device=False),
            low_score_quality_surface(study, cross_device=True),
        )
    )

    print(rule)
    from repro.api import render_habituation

    print(render_habituation(study.collection()))


if __name__ == "__main__":
    main()
