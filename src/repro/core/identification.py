"""Closed- and open-set identification (1:N search).

The paper frames its data in identification vocabulary — the gallery is
"the database of fingerprint images in which we search" — and its
US-VISIT motivation is an identification system.  This module provides
the 1:N machinery over any gallery of templates:

* :func:`rank_candidates` — score a probe against the whole gallery;
* :class:`TwoStageIdentifier` — descriptor prefilter + exact rescoring,
  the sub-linear search path for million-identity galleries (the
  exhaustive :func:`rank_candidates` remains its recall oracle);
* :class:`CmcCurve` — cumulative match characteristic: P(true identity
  within rank k), the standard closed-set identification measure;
* :func:`open_set_rates` — FPIR/FNIR at a score threshold for open-set
  identification (probes may be unenrolled).

The cross-device identification experiment (gallery enrolled on one
device, probes from another) shows interoperability costs *rank-1
accuracy*, not just verification FNMR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..matcher.types import Template
from ..runtime.errors import ConfigurationError
from .prefilter import PrefilterIndex, descriptor_vector

#: Default prefilter survivor count for two-stage identification.  At
#: paper-scale galleries the true mate essentially always lands in the
#: first few descriptor neighbours; 32 leaves a wide recall margin while
#: keeping the exact stage constant-time in the gallery size.
DEFAULT_CANDIDATE_K = 32

#: The valid values of the ``REPRO_IDENTIFY_MODE`` knob.
IDENTIFY_MODES = ("exact", "two_stage")


@dataclass(frozen=True)
class Candidate:
    """One gallery candidate in a ranked identification result.

    ``prefilter_rank`` is the candidate's 1-based position in the coarse
    descriptor stage when the two-stage path produced it; ``None`` for
    exhaustive search, where no prefilter ran.
    """

    identity: str
    score: float
    prefilter_rank: Optional[int] = None


def rank_candidates(
    matcher,
    probe: Template,
    gallery: Dict[str, Template],
    max_candidates: Optional[int] = None,
) -> List[Candidate]:
    """Score ``probe`` against every gallery template, best first.

    Rides the matcher's batched 1:N path
    (:meth:`~repro.matcher.engine.BioEngineMatcher.match_one_to_many`)
    when the engine exposes one — the probe's frame is computed once for
    the whole candidate list — and falls back to the scalar per-candidate
    loop for matchers that only implement ``match``.  Both paths produce
    identical rankings (:func:`rank_candidates_scalar` is the parity
    oracle).  Ties are broken by identity, ascending, so all-tied scores
    still yield a deterministic order; an empty gallery returns an empty
    candidate list.
    """
    if not gallery:
        return []
    identities = list(gallery)
    batched = getattr(matcher, "match_one_to_many", None)
    if batched is not None:
        scores = batched(probe, [gallery[identity] for identity in identities])
        scored = [
            Candidate(identity=identity, score=float(score))
            for identity, score in zip(identities, scores)
        ]
    else:
        scored = [
            Candidate(identity=identity, score=matcher.match(probe, gallery[identity]))
            for identity in identities
        ]
    scored.sort(key=lambda c: (-c.score, c.identity))
    return scored[:max_candidates] if max_candidates else scored


def rank_candidates_scalar(
    matcher,
    probe: Template,
    gallery: Dict[str, Template],
    max_candidates: Optional[int] = None,
) -> List[Candidate]:
    """Reference 1:N ranking via one scalar ``match`` call per candidate.

    The parity oracle for :func:`rank_candidates`: the batched path must
    reproduce this ordering (and these scores) exactly.  Kept as a public
    function so the parity tests — and any matcher author validating a
    new batched kernel — can compare against it directly.
    """
    if not gallery:
        return []
    scored = [
        Candidate(identity=identity, score=matcher.match(probe, template))
        for identity, template in gallery.items()
    ]
    scored.sort(key=lambda c: (-c.score, c.identity))
    return scored[:max_candidates] if max_candidates else scored


@dataclass(frozen=True)
class SearchReport:
    """Provenance of one identification search (the ``search`` block).

    Attributes
    ----------
    mode:
        ``"exact"`` (exhaustive) or ``"two_stage"`` (prefiltered).
    gallery_size:
        Enrolled candidates the search logically covered.
    candidates_scored:
        How many of them the exact matcher actually scored — equals
        ``gallery_size`` for exact mode, at most ``candidate_k`` for
        two-stage.
    candidate_k:
        The prefilter survivor budget (``None`` in exact mode).
    prefilter_seconds:
        Wall time of the coarse stage (0.0 in exact mode).
    """

    mode: str
    gallery_size: int
    candidates_scored: int
    candidate_k: Optional[int] = None
    prefilter_seconds: float = 0.0

    def to_dict(self) -> dict:
        """The JSON-ready ``search`` block of an ``/identify`` response."""
        return {
            "mode": self.mode,
            "gallery_size": self.gallery_size,
            "candidates_scored": self.candidates_scored,
            "candidate_k": self.candidate_k,
            "prefilter_seconds": round(self.prefilter_seconds, 6),
        }


class TwoStageIdentifier:
    """Two-stage 1:N search over a fixed gallery dictionary.

    Builds a :class:`~repro.core.prefilter.PrefilterIndex` over the
    gallery once; each :meth:`identify` then runs a vectorized
    descriptor top-K pass and hands only the K survivors to the exact
    matcher.  Against the same gallery, the exact stage's scores are
    bit-identical to :func:`rank_candidates` — the two paths call the
    same matcher entry point on the same templates — so two-stage top-1
    differs from exhaustive top-1 only when the prefilter drops the true
    best candidate (the recall the benchmark measures).

    The online serving layer keeps its own incrementally-maintained
    per-device indexes (:class:`repro.service.gallery.GalleryIndex`);
    this class is the batch/benchmark harness over a plain dict.
    """

    def __init__(
        self,
        matcher,
        gallery: Dict[str, Template],
        candidate_k: int = DEFAULT_CANDIDATE_K,
    ) -> None:
        if candidate_k < 1:
            raise ConfigurationError(
                f"candidate_k must be >= 1, got {candidate_k}"
            )
        self._matcher = matcher
        self._gallery = dict(gallery)
        self._candidate_k = candidate_k
        self._index = PrefilterIndex.from_items(
            {key: descriptor_vector(t) for key, t in self._gallery.items()}
        )

    @property
    def candidate_k(self) -> int:
        return self._candidate_k

    def __len__(self) -> int:
        return len(self._gallery)

    def identify(
        self,
        probe: Template,
        max_candidates: Optional[int] = None,
        candidate_k: Optional[int] = None,
    ) -> Tuple[List[Candidate], SearchReport]:
        """Ranked candidates plus the search's provenance report."""
        k = candidate_k if candidate_k is not None else self._candidate_k
        if k < 1:
            raise ConfigurationError(f"candidate_k must be >= 1, got {k}")
        started = time.perf_counter()
        survivors = self._index.top_k(descriptor_vector(probe), k)
        prefilter_seconds = time.perf_counter() - started
        ranks = {c.key: c.rank for c in survivors}
        shortlist = {c.key: self._gallery[c.key] for c in survivors}
        scored = rank_candidates(self._matcher, probe, shortlist)
        candidates = [
            Candidate(
                identity=c.identity,
                score=c.score,
                prefilter_rank=ranks[c.identity],
            )
            for c in scored
        ]
        if max_candidates:
            candidates = candidates[:max_candidates]
        report = SearchReport(
            mode="two_stage",
            gallery_size=len(self._gallery),
            candidates_scored=len(shortlist),
            candidate_k=k,
            prefilter_seconds=prefilter_seconds,
        )
        return candidates, report


def identification_rank(candidates: Sequence[Candidate], true_identity: str) -> int:
    """1-based rank of the true identity (0 if absent from the list)."""
    for rank, candidate in enumerate(candidates, start=1):
        if candidate.identity == true_identity:
            return rank
    return 0


@dataclass(frozen=True)
class CmcCurve:
    """Cumulative match characteristic.

    Attributes
    ----------
    hit_rates:
        ``hit_rates[k-1]`` = fraction of probes whose true identity
        appeared within rank k.
    n_probes:
        Number of identification attempts behind the curve.
    """

    hit_rates: np.ndarray
    n_probes: int

    @property
    def rank1(self) -> float:
        """Rank-1 identification rate (the headline number)."""
        return float(self.hit_rates[0]) if len(self.hit_rates) else 0.0

    def rate_at(self, rank: int) -> float:
        """Hit rate at the given 1-based rank (saturates at the tail).

        A curve with no ranks (zero probes) reports 0.0 everywhere
        rather than indexing into an empty array.
        """
        if rank < 1:
            raise ConfigurationError("rank must be >= 1")
        if not len(self.hit_rates):
            return 0.0
        index = min(rank, len(self.hit_rates)) - 1
        return float(self.hit_rates[index])

    def render(self, max_rank: int = 10, width: int = 40) -> str:
        """ASCII CMC curve."""
        lines = [f"CMC over {self.n_probes} probes"]
        for rank in range(1, min(max_rank, len(self.hit_rates)) + 1):
            rate = self.rate_at(rank)
            bar = "#" * int(round(rate * width))
            lines.append(f"  rank {rank:>3}: {rate:6.3f} |{bar}")
        return "\n".join(lines)


def cmc_curve(ranks: Sequence[int], max_rank: int) -> CmcCurve:
    """Build a CMC from per-probe true-identity ranks (0 = missed).

    Zero probes produce an all-zero curve over ``max_rank`` ranks (the
    online service can be asked for a CMC before any identification has
    run) instead of tripping numpy's empty-mean warning; probes whose
    identity was absent from the gallery arrive as rank 0 and simply
    never hit.
    """
    if max_rank < 1:
        raise ConfigurationError("max_rank must be >= 1")
    rank_array = np.asarray(ranks, dtype=np.int64)
    if rank_array.size == 0:
        return CmcCurve(
            hit_rates=np.zeros(max_rank, dtype=np.float64), n_probes=0
        )
    hits = np.zeros(max_rank, dtype=np.float64)
    for k in range(1, max_rank + 1):
        hits[k - 1] = np.mean((rank_array >= 1) & (rank_array <= k))
    return CmcCurve(hit_rates=hits, n_probes=int(rank_array.size))


def run_identification(
    matcher,
    probes: Sequence[Tuple[str, Template]],
    gallery: Dict[str, Template],
    max_rank: int = 10,
) -> CmcCurve:
    """Identify every (true_identity, template) probe against the gallery."""
    ranks = []
    for true_identity, probe in probes:
        candidates = rank_candidates(matcher, probe, gallery)
        ranks.append(identification_rank(candidates, true_identity))
    return cmc_curve(ranks, max_rank=max_rank)


def open_set_rates(
    matcher,
    enrolled_probes: Sequence[Tuple[str, Template]],
    unenrolled_probes: Sequence[Template],
    gallery: Dict[str, Template],
    threshold: float,
) -> Tuple[float, float]:
    """Open-set identification error rates at ``threshold``.

    Returns
    -------
    (fnir, fpir):
        * FNIR — false-negative identification rate: enrolled probes
          whose true identity was not returned at rank 1 above the
          threshold;
        * FPIR — false-positive identification rate: unenrolled probes
          whose best candidate cleared the threshold.

    Edge cases are well-defined rather than warning-dependent: an empty
    gallery can never identify anyone, so every "enrolled" probe is a
    miss (FNIR 1.0) and no unenrolled probe can raise a false alarm
    (FPIR 0.0); a probe whose identity is absent from the gallery counts
    as a miss whatever it scores.
    """
    if not enrolled_probes and not unenrolled_probes:
        raise ConfigurationError("open_set_rates needs at least one probe")
    if not gallery:
        return (1.0 if enrolled_probes else 0.0), 0.0
    misses = 0
    for true_identity, probe in enrolled_probes:
        best = rank_candidates(matcher, probe, gallery, max_candidates=1)[0]
        if best.identity != true_identity or best.score < threshold:
            misses += 1
    false_alarms = 0
    for probe in unenrolled_probes:
        best = rank_candidates(matcher, probe, gallery, max_candidates=1)[0]
        if best.score >= threshold:
            false_alarms += 1
    fnir = misses / len(enrolled_probes) if enrolled_probes else 0.0
    fpir = false_alarms / len(unenrolled_probes) if unenrolled_probes else 0.0
    return fnir, fpir


def cross_device_cmc(
    study,
    gallery_device: str,
    probe_device: str,
    max_rank: int = 10,
    n_subjects: Optional[int] = None,
) -> CmcCurve:
    """CMC for identification across a device pair, on a study population.

    Gallery: every subject's set-0 impression on ``gallery_device``;
    probes: set-1 impressions on ``probe_device``.
    """
    collection = study.collection()
    matcher = study.matcher()
    n = n_subjects if n_subjects is not None else study.config.n_subjects
    gallery = {
        f"subject-{sid}": collection.get(sid, study.finger, gallery_device, 0).template
        for sid in range(n)
    }
    probes = [
        (f"subject-{sid}", collection.get(sid, study.finger, probe_device, 1).template)
        for sid in range(n)
    ]
    return run_identification(matcher, probes, gallery, max_rank=max_rank)


__all__ = [
    "Candidate",
    "DEFAULT_CANDIDATE_K",
    "IDENTIFY_MODES",
    "SearchReport",
    "TwoStageIdentifier",
    "rank_candidates",
    "rank_candidates_scalar",
    "identification_rank",
    "CmcCurve",
    "cmc_curve",
    "run_identification",
    "open_set_rates",
    "cross_device_cmc",
]
