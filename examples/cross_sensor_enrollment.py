#!/usr/bin/env python3
"""The US-VISIT scenario: enroll on one sensor, verify on another.

The paper motivates interoperability with the US-VISIT border program:
travellers enroll on one 500-dpi optical sensor, but verification may
happen years later on different hardware.  This example walks that
scenario end to end:

1. enroll everyone on the Cross Match Guardian R2 (D0);
2. verify each subject on every device, including ink cards;
3. report the verification failure rate at a fixed global threshold;
4. apply Ross & Nadgir's thin-plate-spline inter-sensor compensation
   (learned on a disjoint training cohort) and report the improvement.

Run:
    python examples/cross_sensor_enrollment.py
"""

import numpy as np

from repro.api import (
    apply_tps_to_template,
    control_points_from_matches,
    DEVICE_ORDER,
    DEVICE_PROFILES,
    fit_tps,
    InteroperabilityStudy,
    StudyConfig,
    threshold_at_fmr,
)

ENROLL_DEVICE = "D0"
TRAIN_FRACTION = 0.4  # cohort used to learn the calibration splines


def main() -> None:
    config = StudyConfig.from_environment(n_subjects=40, n_workers=4)
    study = InteroperabilityStudy(config)
    collection = study.collection()
    matcher = study.matcher()
    n = config.n_subjects
    n_train = int(n * TRAIN_FRACTION)
    test_ids = range(n_train, n)

    # Operating threshold: conservative — just above the impostor
    # ceiling (the paper observes no impostor scores above ~7).
    impostors = study.impostor_scores(ENROLL_DEVICE, ENROLL_DEVICE)
    threshold = max(float(impostors.scores.max()) + 0.5, 7.5)
    print(f"Enrollment device: {DEVICE_PROFILES[ENROLL_DEVICE].model}")
    print(f"Decision threshold (above the impostor ceiling): {threshold:.2f}")
    print()

    print(f"{'verify on':<42}{'mean raw':>9}{'mean+TPS':>9}{'FNMR raw':>10}{'FNMR +TPS':>11}")
    for device in DEVICE_ORDER:
        raw_scores = []
        calibrated_scores = []

        # Learn the device -> D0 compensation spline on the train cohort.
        spline = None
        if device != ENROLL_DEVICE:
            train_probes = [
                collection.get(sid, "right_index", device, 1).template
                for sid in range(n_train)
            ]
            train_galleries = [
                collection.get(sid, "right_index", ENROLL_DEVICE, 0).template
                for sid in range(n_train)
            ]
            try:
                src, dst = control_points_from_matches(
                    matcher, train_probes, train_galleries, max_pairs=300
                )
                spline = fit_tps(src, dst, regularization=0.5)
            except Exception as exc:  # pragma: no cover - diagnostic path
                print(f"  ({device}: calibration failed: {exc})")

        for sid in test_ids:
            gallery = collection.get(sid, "right_index", ENROLL_DEVICE, 0).template
            probe = collection.get(sid, "right_index", device, 1).template
            raw_scores.append(matcher.match(probe, gallery))
            if spline is not None:
                calibrated_scores.append(
                    matcher.match(apply_tps_to_template(probe, spline), gallery)
                )
            else:
                calibrated_scores.append(raw_scores[-1])

        raw_arr = np.array(raw_scores)
        cal_arr = np.array(calibrated_scores)
        raw_fnmr = float(np.mean(raw_arr < threshold))
        cal_fnmr = float(np.mean(cal_arr < threshold))
        name = DEVICE_PROFILES[device].model
        marker = " (native)" if device == ENROLL_DEVICE else ""
        print(
            f"{name + marker:<42}{raw_arr.mean():>9.2f}{cal_arr.mean():>9.2f}"
            f"{raw_fnmr:>10.3f}{cal_fnmr:>11.3f}"
        )

    print()
    print(
        "Cross-device verification fails more often than native"
        " verification; inter-sensor compensation recovers part of the"
        " gap — exactly the Ross & Nadgir result the paper discusses."
    )


if __name__ == "__main__":
    main()
