"""Ink-based ten-print card model (device D4).

The paper's fifth source is classical ink: rolled impressions on a
ten-print card, later scanned at 500 dpi on a flat-bed scanner.  Ink
impressions differ from optical live-scan in three ways the model
captures:

* **rolling covers more of the pad** (nail-to-nail) — the contact
  ellipse is enlarged;
* **rolling smears geometry** — the finger is rotated under pressure
  while inked, so the signature and elastic magnitudes in the D4 profile
  are the largest in the registry, and ridge directions pick up extra
  noise from ink bleed;
* **two generations of degradation** — ink transfer and then scanning;
  the profile's low detection reliability and contrast reflect it.

A real ten-print card carries *two* impressions of each finger: the
rolled print in its individual box and the finger's appearance in the
slap (plain) row.  The paper counts only "one set" for D4 — so D4 is
excluded from the DMG score set (Table 3's 1,976 = 494 x 4 live-scans) —
yet Table 5 still reports a D4xD4 FNMR cell, which can only come from
rolled-vs-slap comparisons within the card.  This model therefore emits
set 0 as the rolled impression and set 1 as the slap impression; the
score engine uses set 1 only where the paper's D4xD4 cells require it.
"""

from __future__ import annotations

import numpy as np

from .base import Sensor
from .registry import DeviceProfile, get_profile


class InkCardSensor(Sensor):
    """Rolled-ink ten-print card acquisition, flat-bed scanned."""

    #: Rolled impressions reach beyond the flat contact patch.
    ROLL_CONTACT_GAIN = 1.18

    #: Extra direction noise from ink bleed (radians std).
    INK_BLEED_ANGLE_STD = np.deg2rad(3.5)

    def __init__(self, profile: DeviceProfile) -> None:
        if profile.family != "ink":
            raise ValueError(
                f"InkCardSensor requires an ink profile, got {profile.family!r}"
            )
        super().__init__(profile)

    @classmethod
    def from_id(cls, device_id: str = "D4") -> "InkCardSensor":
        """Construct the ink sensor registered as ``device_id``."""
        return cls(get_profile(device_id))

    def _contact_scale(self, set_index: int) -> float:
        # Set 0 is the rolled impression (nail-to-nail), set 1 the slap.
        return self.ROLL_CONTACT_GAIN if set_index == 0 else 0.97

    def _elastic_scale(self, set_index: int) -> float:
        # Rolling the finger under pressure adds elastic distortion that a
        # plain slap does not suffer.
        return 1.0 if set_index == 0 else 0.55

    def _extra_angle_noise_rad(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.normal(0.0, self.INK_BLEED_ANGLE_STD, size=n)

    def _noise_floor(self) -> float:
        # Ink blobbing/fading texture survives even perfect skin state.
        return 0.16


__all__ = ["InkCardSensor"]
