"""Ridge orientation-field models.

Fingerprint ridge flow is modeled with the zero-pole (Sherlock–Monro)
model refined by Vizcaya & Gerhardt: the orientation at a point is a
superposition of contributions from *core* (loop) singularities and
*delta* singularities,

    theta(z) = theta0 + 1/2 * [ sum_cores arg(z - c_i) - sum_deltas arg(z - d_j) ]

This is the same family of models SFinGe uses to lay down master
fingerprints.  Coordinates are in millimetres in "finger space": origin
at the finger-pad centre, x to the right, y toward the fingertip.

The orientation field serves two roles in this reproduction:

* master-template synthesis — minutiae direction must follow ridge flow
  for the matcher's local descriptors to behave like they do on real
  fingers;
* quality assessment — orientation coherence is one of the NFIQ-style
  features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Singularity:
    """A core or delta singular point of the orientation field.

    Attributes
    ----------
    x, y:
        Position in finger-space millimetres.
    kind:
        ``"core"`` (contributes +1/2 winding) or ``"delta"`` (-1/2).
    """

    x: float
    y: float
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("core", "delta"):
            raise ValueError(f"singularity kind must be core/delta, got {self.kind!r}")

    @property
    def position(self) -> np.ndarray:
        """Position as a 2-vector."""
        return np.array([self.x, self.y], dtype=np.float64)


@dataclass(frozen=True)
class OrientationField:
    """A zero-pole orientation field plus a global base orientation.

    Attributes
    ----------
    singularities:
        Core and delta points.
    base_angle:
        Constant orientation offset ``theta0`` (radians).  For an arch
        (no singularities) an additional smooth bend term produces the
        characteristic arching flow.
    arch_bend:
        Curvature of the singularity-free arch component; 0 disables it.
    """

    singularities: Tuple[Singularity, ...] = ()
    base_angle: float = 0.0
    arch_bend: float = 0.0

    def angle_at(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Ridge orientation (mod pi) at the given finger-space points.

        Accepts scalars or arrays (broadcast together); returns values in
        ``[0, pi)``.  Orientation is a *direction of a line*, not a
        vector, hence the mod-pi range.
        """
        xa = np.asarray(x, dtype=np.float64)
        ya = np.asarray(y, dtype=np.float64)
        theta = np.full(np.broadcast(xa, ya).shape, self.base_angle, dtype=np.float64)
        for s in self.singularities:
            contribution = 0.5 * np.arctan2(ya - s.y, xa - s.x)
            if s.kind == "core":
                theta = theta + contribution
            else:
                theta = theta - contribution
        if self.arch_bend != 0.0:
            # A smooth, singularity-free arching term: ridges bend upward
            # toward the centre line, like a plain arch.
            theta = theta + self.arch_bend * np.tanh(xa / 6.0) * np.exp(-(ya / 9.0) ** 2)
        return np.mod(theta, np.pi)

    def coherence(
        self, x: np.ndarray, y: np.ndarray, probe_radius: float = 0.8
    ) -> np.ndarray:
        """Local orientation coherence in [0, 1] at the given points.

        Coherence is the length of the mean doubled-angle phasor over a
        small probe neighbourhood; it drops near singularities (where
        ridge flow turns sharply) and is ~1 in smooth regions.  The
        NFIQ-style quality features use it as a clarity proxy.
        """
        xa = np.atleast_1d(np.asarray(x, dtype=np.float64))
        ya = np.atleast_1d(np.asarray(y, dtype=np.float64))
        offsets = probe_radius * np.array(
            [[0.0, 0.0], [1, 0], [-1, 0], [0, 1], [0, -1],
             [0.7, 0.7], [-0.7, 0.7], [0.7, -0.7], [-0.7, -0.7]]
        )
        phasors = np.zeros(xa.shape, dtype=np.complex128)
        for dx, dy in offsets:
            ang = self.angle_at(xa + dx, ya + dy)
            phasors += np.exp(2j * ang)
        coherence = np.abs(phasors) / offsets.shape[0]
        return coherence if coherence.shape else float(coherence)

    def ridge_direction_at(
        self, x: float, y: float, rng: np.random.Generator
    ) -> float:
        """A minutia direction consistent with ridge flow at (x, y).

        Minutiae point *along* the ridge, in one of the two directions of
        the orientation line; the choice is random (both occur on real
        fingers, depending on which ridge end terminates).  Returns an
        angle in ``[0, 2*pi)``.
        """
        orientation = float(self.angle_at(np.float64(x), np.float64(y)))
        if rng.random() < 0.5:
            orientation += np.pi
        return float(np.mod(orientation, 2.0 * np.pi))

    def distance_to_nearest_singularity(self, x: float, y: float) -> float:
        """Euclidean distance (mm) to the closest singular point, or inf."""
        if not self.singularities:
            return float("inf")
        return min(
            float(np.hypot(x - s.x, y - s.y)) for s in self.singularities
        )


def sample_field_grid(
    fld: OrientationField,
    half_width: float = 10.0,
    half_height: float = 12.5,
    step: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate an orientation field on a regular grid.

    Returns ``(xs, ys, angles)`` where ``angles[i, j]`` is the orientation
    at ``(xs[j], ys[i])`` — convenient for rendering and for the ridge
    tracer in :mod:`repro.synthesis.ridges`.
    """
    xs = np.arange(-half_width, half_width + step / 2.0, step)
    ys = np.arange(-half_height, half_height + step / 2.0, step)
    gx, gy = np.meshgrid(xs, ys)
    return xs, ys, fld.angle_at(gx, gy)


__all__ = ["Singularity", "OrientationField", "sample_field_grid"]
