"""Self-contained statistics substrate.

Implements every statistical procedure the paper uses — Kendall's rank
correlation, FMR/FNMR operating points, histograms — plus bootstrap
intervals for stating the precision of reproduced numbers.  The test
suite cross-validates :func:`kendall_tau` against scipy where available.
"""

from .bootstrap import BootstrapInterval, bootstrap_ci, bootstrap_fnmr_at_fmr
from .comparison import McNemarResult, mcnemar_test, render_det, wilson_interval
from .descriptive import Summary, overlap_coefficient, proportion, summarize
from .histogram import (
    FrequencySurface,
    Histogram,
    frequency_surface,
    render_histogram,
    render_overlaid,
    score_histogram,
)
from .kendall import KendallResult, erfc_two_sided, kendall_tau
from .roc import (
    RocCurve,
    det_points,
    equal_error_rate,
    fmr_at_threshold,
    fnmr_at_fmr,
    fnmr_at_threshold,
    roc_curve,
    threshold_at_fmr,
)

__all__ = [
    "BootstrapInterval",
    "wilson_interval",
    "McNemarResult",
    "mcnemar_test",
    "render_det",
    "bootstrap_ci",
    "bootstrap_fnmr_at_fmr",
    "Summary",
    "summarize",
    "proportion",
    "overlap_coefficient",
    "Histogram",
    "score_histogram",
    "render_histogram",
    "render_overlaid",
    "FrequencySurface",
    "frequency_surface",
    "KendallResult",
    "kendall_tau",
    "erfc_two_sided",
    "RocCurve",
    "roc_curve",
    "equal_error_rate",
    "det_points",
    "fmr_at_threshold",
    "fnmr_at_threshold",
    "fnmr_at_fmr",
    "threshold_at_fmr",
]
