"""T4 — Table 4: p-values from Kendall's rank correlation test.

Expected shape (paper): the diagonal correlates each scenario with
itself (p ~ 1e-242 at n = 494); cross-device cells are mostly strongly
correlated, but a cluster of device pairs decorrelates; the matrix is
asymmetric ("interesting and surprising" per the paper — structural in
our construction).
"""

import numpy as np

from repro.api import (
    asymmetry_count,
    kendall_matrix,
    LIVESCAN_DEVICES,
    pvalue_matrix,
    render_table4,
)


def test_table4_kendall_matrix(benchmark, study, record_artifact):
    study.score_sets()  # materialize outside the timed region

    results = benchmark(kendall_matrix, study)
    text = render_table4(results)
    text += f"\n\nasymmetric significance pairs: {asymmetry_count(results)}"
    record_artifact(text)
    print("\n" + text)

    matrix = pvalue_matrix(results)
    assert matrix.shape == (4, 5)
    # Diagonal: self-correlation, p vanishes.
    for i, device in enumerate(LIVESCAN_DEVICES):
        assert results[(device, device)].tau == 1.0
        assert matrix[i, i] < 1e-10
    # Off-diagonal correlations are genuinely weaker than the diagonal.
    for (row, col), result in results.items():
        if row != col:
            assert result.tau < 1.0
