"""Artifact-backed render → extract pipeline.

Rendering a ridge image and re-extracting its minutiae are the two most
expensive per-impression stages of the image-domain loop, and both are
pure functions of (finger identity, settings).  :class:`ImagePipeline`
caches them in the ``images`` and ``templates`` tiers of an
:class:`~repro.runtime.artifacts.ArtifactStore`, keyed by
:func:`~repro.runtime.artifacts.canonical_digest` of a caller-supplied
identity (any JSON-able value that pins down the finger — e.g.
``{"seed": 7, "subject": 12, "finger": "right_index"}``) together with
the stage's settings.

With a disabled store every call just computes, so callers never branch
on whether persistence is configured.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..matcher.types import Template, template_from_arrays
from ..runtime.artifacts import ArtifactStore, canonical_digest
from .extraction import ExtractionSettings, extract_template
from .render import RenderedImpression, RenderSettings, render_finger


def template_to_arrays(template: Template) -> dict:
    """Lossless array encoding of a template (inverse of the loader)."""
    return {
        "positions_px": template.positions_px(),
        "angles": template.angles(),
        "kinds": template.kinds(),
        "qualities": template.qualities(),
        "shape": np.array(
            [template.width_px, template.height_px, template.resolution_dpi],
            dtype=np.int64,
        ),
    }


def template_from_bundle(arrays: dict) -> Template:
    """Decode :func:`template_to_arrays` output.

    Raises ``KeyError``/``ValueError`` on malformed bundles; callers
    treat those as cache misses.
    """
    width_px, height_px, dpi = (int(v) for v in arrays["shape"])
    return template_from_arrays(
        positions_px=arrays["positions_px"],
        angles=arrays["angles"],
        kinds=arrays["kinds"].astype(np.int64),
        qualities=arrays["qualities"].astype(np.int64),
        width_px=width_px,
        height_px=height_px,
        resolution_dpi=dpi,
    )


class ImagePipeline:
    """Load-or-build wrapper over rendering and extraction.

    Parameters
    ----------
    artifacts:
        The backing store; ``None`` (or a disabled store) makes every
        call compute fresh.
    """

    def __init__(self, artifacts: Optional[ArtifactStore] = None) -> None:
        self._artifacts = artifacts if artifacts is not None else ArtifactStore()

    @property
    def artifacts(self) -> ArtifactStore:
        """The backing artifact store."""
        return self._artifacts

    def render(
        self,
        finger,
        identity: object,
        settings: RenderSettings = RenderSettings(),
        max_minutiae: Optional[int] = None,
    ) -> RenderedImpression:
        """Render ``finger`` (or load the cached render) for ``identity``."""
        digest = canonical_digest(
            {
                "stage": "render",
                "identity": identity,
                "settings": settings,
                "max_minutiae": max_minutiae,
            }
        )
        cached = self._artifacts.load("images", digest)
        if cached is not None:
            try:
                return RenderedImpression(
                    image=cached["image"],
                    minutiae_px=cached["minutiae_px"],
                    mask=cached["mask"].astype(bool),
                    pixels_per_mm=float(cached["pixels_per_mm"][0]),
                )
            except (KeyError, ValueError, IndexError):
                self._artifacts.invalidate("images", digest)
        rendered = render_finger(finger, settings, max_minutiae=max_minutiae)
        self._artifacts.store(
            "images",
            digest,
            {
                "image": rendered.image,
                "minutiae_px": rendered.minutiae_px,
                "mask": rendered.mask,
                "pixels_per_mm": np.array([rendered.pixels_per_mm]),
            },
            meta={"identity": _meta_safe(identity)},
        )
        return rendered

    def extract(
        self,
        image: np.ndarray,
        pixels_per_mm: float,
        identity: object,
        mask: Optional[np.ndarray] = None,
        settings: ExtractionSettings = ExtractionSettings(),
        resolution_dpi: int = 500,
    ) -> Template:
        """Extract a template from ``image`` (or load the cached one)."""
        digest = canonical_digest(
            {
                "stage": "extract",
                "identity": identity,
                "pixels_per_mm": pixels_per_mm,
                "settings": settings,
                "resolution_dpi": resolution_dpi,
            }
        )
        cached = self._artifacts.load("templates", digest)
        if cached is not None:
            try:
                return template_from_bundle(cached)
            except (KeyError, ValueError):
                self._artifacts.invalidate("templates", digest)
        template = extract_template(
            image,
            pixels_per_mm,
            mask=mask,
            settings=settings,
            resolution_dpi=resolution_dpi,
        )
        self._artifacts.store(
            "templates",
            digest,
            template_to_arrays(template),
            meta={"identity": _meta_safe(identity)},
        )
        return template


def _meta_safe(identity: object) -> object:
    """Identity as storable metadata (stringified when not plain JSON)."""
    if isinstance(identity, (str, int, float, bool, type(None), list, dict)):
        return identity
    return repr(identity)


__all__ = [
    "ImagePipeline",
    "template_to_arrays",
    "template_from_bundle",
]
