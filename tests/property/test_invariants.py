"""Cross-cutting property-based invariants (hypothesis).

Each class pins an invariant that holds for *any* input in its domain —
the kind of guarantee unit examples cannot give.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.rng import SeedTree, derive_seed
from repro.sensors.distortion import RigidPlacement, SmoothWarpField
from repro.stats.comparison import wilson_interval
from repro.stats.roc import fmr_at_threshold, fnmr_at_threshold


class TestSeedTreeProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_path_determinism(self, master, path):
        assert derive_seed(master, *path) == derive_seed(master, *path)

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=3),
        st.lists(st.integers(min_value=51, max_value=100), min_size=1, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_distinct_paths_distinct_seeds(self, master, path_a, path_b):
        # Paths drawn from disjoint label ranges can never be equal.
        assert derive_seed(master, *path_a) != derive_seed(master, *path_b)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_child_composition(self, master):
        tree = SeedTree(master)
        assert tree.child("a").child(2).seed() == tree.seed("a", 2)


class TestRigidPlacementProperties:
    @given(
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-5, max_value=5),
        st.floats(min_value=-np.pi, max_value=np.pi),
    )
    @settings(max_examples=50, deadline=None)
    def test_isometry(self, dx, dy, rotation):
        placement = RigidPlacement(dx, dy, rotation)
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [-2.0, 7.0]])
        moved = placement.apply(pts)
        for i in range(3):
            for j in range(i + 1, 3):
                original = np.linalg.norm(pts[i] - pts[j])
                transformed = np.linalg.norm(moved[i] - moved[j])
                assert transformed == pytest.approx(original, abs=1e-9)


class TestWarpFieldProperties:
    @given(st.integers(min_value=0, max_value=2**31),
           st.floats(min_value=0.05, max_value=1.5))
    @settings(max_examples=20, deadline=None)
    def test_magnitude_scaling_is_linear(self, seed, magnitude):
        base = SmoothWarpField(seed=seed, magnitude_mm=1.0)
        scaled = SmoothWarpField(seed=seed, magnitude_mm=magnitude)
        pts = np.array([[2.0, -3.0], [-5.0, 5.0]])
        np.testing.assert_allclose(
            scaled.displacement(pts), magnitude * base.displacement(pts),
            rtol=1e-9, atol=1e-12,
        )

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_apply_is_identity_plus_displacement(self, seed):
        field = SmoothWarpField(seed=seed, magnitude_mm=0.5)
        pts = np.array([[1.0, 1.0], [-4.0, 2.0]])
        np.testing.assert_allclose(
            field.apply(pts), pts + field.displacement(pts)
        )


class TestErrorRateProperties:
    @given(
        st.lists(st.floats(min_value=0, max_value=30), min_size=2, max_size=60),
        st.floats(min_value=-1, max_value=31),
    )
    @settings(max_examples=60, deadline=None)
    def test_fmr_fnmr_partition(self, scores, threshold):
        # On the same score set, matches + non-matches cover everything.
        fmr = fmr_at_threshold(scores, threshold)
        fnmr = fnmr_at_threshold(scores, threshold)
        assert fmr + fnmr == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=0, max_value=30), min_size=2, max_size=60),
        st.floats(min_value=0, max_value=15),
        st.floats(min_value=15.001, max_value=31),
    )
    @settings(max_examples=60, deadline=None)
    def test_fmr_monotone_in_threshold(self, scores, low, high):
        assert fmr_at_threshold(scores, low) >= fmr_at_threshold(scores, high)


class TestWilsonProperties:
    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_interval_brackets_point_estimate(self, successes, trials):
        successes = min(successes, trials)
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_higher_confidence_wider(self, trials):
        successes = trials // 2
        low95, high95 = wilson_interval(successes, trials, confidence=0.95)
        low99, high99 = wilson_interval(successes, trials, confidence=0.99)
        assert (high99 - low99) >= (high95 - low95) - 1e-12


class TestScoreSetProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_select_partitions(self, mask_bits):
        from repro.core.scores import ScoreSet

        n = len(mask_bits)
        score_set = ScoreSet(
            scenario="DMG",
            matcher_name="m",
            scores=np.arange(n, dtype=np.float64),
            subject_gallery=np.arange(n),
            subject_probe=np.arange(n),
            device_gallery=np.full(n, "D0"),
            device_probe=np.full(n, "D0"),
            nfiq_gallery=np.ones(n, dtype=np.int64),
            nfiq_probe=np.ones(n, dtype=np.int64),
        )
        mask = np.array(mask_bits)
        selected = score_set.select(mask)
        complement = score_set.select(~mask)
        assert len(selected) + len(complement) == n
        merged = np.sort(np.concatenate([selected.scores, complement.scores]))
        np.testing.assert_array_equal(merged, score_set.scores)
