"""Persistent, device-aware gallery of enrolled templates.

The online counterpart of the batch study's
:class:`~repro.pipeline.database.FingerprintCollection`: instead of a
synthesized population fixed at construction, :class:`GalleryIndex`
accepts enrollments one at a time, gates them on template-evidence NFIQ
quality, and persists every accepted record so the gallery survives a
server restart.

Storage rides :class:`~repro.runtime.cache.NpzDirectory` — one shard
directory per capture device, one ``.npz`` bundle per identity — so the
gallery inherits the cache layer's atomic writes and
corruption-as-miss semantics: a record torn by a crash mid-write is
dropped (and logged) at reload rather than poisoning the index.  The
per-device sharding mirrors the paper's central finding: which device
enrolled a finger is *the* covariate interoperability cares about, so
the serving layer keeps it a first-class axis (verify and identify
requests address a device shard, and cross-device searches are an
explicit choice).

Each record also carries its fixed-length **prefilter descriptor**
(:func:`repro.core.prefilter.descriptor_vector`), and every device
shard maintains a contiguous descriptor matrix — a
:class:`~repro.core.prefilter.PrefilterIndex` updated incrementally on
enroll/delete and persisted under ``root/__index__/<device>.npz`` as
one more corruption-as-miss tier: a torn or stale matrix is rebuilt
from the records (never trusted), so the index can accelerate
``/identify`` without ever being able to corrupt it.

Durability rides a :class:`~repro.runtime.wal.WriteAheadLog` under
``root/__wal__``: every enroll/delete is logged (and, per
``REPRO_WAL_SYNC``, fsynced) *before* it is applied, and the server
only acks after both — log → apply → ack.  At startup the retained log
is replayed against the shards, idempotently reconciling whatever a
crash interrupted; once replay lands, the log is checkpointed and
compacted.  The same log is what a read-only follower
(``GalleryIndex(root, readonly=True)`` + ``apply_wal_record``) tails to
mirror the primary live.

The descriptor matrices are *derived* state, so they are flushed
lazily: enroll/delete dirty-flag the device and the matrix is written
atomically at WAL checkpoints and on :meth:`GalleryIndex.close` —
O(gallery) matrix rewrites leave the per-write path, and a crash at
worst leaves a stale matrix that the rebuild-on-mismatch reload check
already repairs.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.prefilter import (
    DESCRIPTOR_DIM,
    DESCRIPTOR_VERSION,
    PrefilterCandidate,
    PrefilterIndex,
    descriptor_vector,
    merge_shard_candidates,
)
from ..matcher.types import Template, template_from_arrays
from ..quality.nfiq import assess_template
from ..runtime.cache import NpzDirectory
from ..runtime.errors import ConfigurationError, PermanentError, ReproError
from ..runtime.telemetry import get_logger, get_recorder
from ..runtime.wal import (
    WalRecord,
    WriteAheadLog,
    decode_array,
    encode_array,
)

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")

#: Shard directory holding the persisted per-device descriptor
#: matrices; reserved — no device or identity may use the name.
_INDEX_DIRNAME = "__index__"

#: Directory holding the write-ahead log's segments (reserved too; the
#: underscore names already fail the device/identity grammar).
_WAL_DIRNAME = "__wal__"

#: Default NFIQ acceptance ceiling: levels 1–4 enroll, level 5 (the
#: "hopeless sample" bucket) is rejected.  NIST SP 800-76 gates at
#: NFIQ > 3; pass ``max_nfiq_level=3`` for that stricter policy.
DEFAULT_MAX_NFIQ_LEVEL = 4

_log = get_logger("service.gallery")


class GalleryError(ReproError):
    """The gallery index could not complete an operation."""


class EnrollmentRejected(PermanentError):
    """An enrollment failed the NFIQ quality gate.

    Permanent by design: re-submitting the same template will produce
    the same level, so the caller must re-capture, not retry.
    """

    def __init__(self, identity: str, level: int, max_level: int) -> None:
        super().__init__(
            f"enrollment of {identity!r} rejected: NFIQ level {level} "
            f"exceeds the acceptance ceiling {max_level}"
        )
        self.identity = identity
        self.level = level
        self.max_level = max_level


class UnknownIdentityError(PermanentError):
    """A lookup referenced an identity/device pair that is not enrolled."""

    def __init__(self, identity: str, device: str) -> None:
        super().__init__(f"identity {identity!r} is not enrolled on device {device!r}")
        self.identity = identity
        self.device = device


class GalleryReadOnlyError(PermanentError):
    """A write reached a read-only (follower) gallery."""

    def __init__(self, operation: str) -> None:
        super().__init__(
            f"gallery is read-only (follower replica); {operation} must "
            "go to the primary"
        )
        self.operation = operation


@dataclass(frozen=True)
class GalleryRecord:
    """One enrolled template plus its enrollment-time metadata.

    ``descriptor`` is the record's prefilter vector — persisted with the
    template so reloads never pay the descriptor build, excluded from
    equality because numpy arrays don't compare to a bool.
    """

    identity: str
    device: str
    template: Template
    nfiq_level: int
    nfiq_utility: float
    enrolled_at: float
    descriptor: np.ndarray = field(compare=False, repr=False, default=None)
    #: WAL sequence number that durably logged this enrollment (0 for
    #: records predating the log or loaded straight from the shards).
    lsn: int = field(compare=False, default=0)


def _check_name(value: str, what: str) -> str:
    if not isinstance(value, str) or not _NAME_RE.match(value):
        raise ConfigurationError(
            f"{what} must match [A-Za-z0-9._-]+, got {value!r}"
        )
    if value == _INDEX_DIRNAME:
        raise ConfigurationError(
            f"{what} {value!r} is reserved for the descriptor index"
        )
    return value


def wal_enroll_payload(
    identity: str,
    device: str,
    template: Template,
    nfiq_level: int,
    nfiq_utility: float,
    enrolled_at: float,
) -> dict:
    """The JSON body of an ``enroll`` WAL record.

    Carries the template's raw arrays byte-exactly (base64), so replay
    — on the primary after a crash or live on a follower — rebuilds a
    record bit-identical to the one the primary served.
    """
    return {
        "identity": identity,
        "device": device,
        "nfiq_level": int(nfiq_level),
        "nfiq_utility": float(nfiq_utility),
        "enrolled_at": float(enrolled_at),
        "template": {
            "width_px": template.width_px,
            "height_px": template.height_px,
            "resolution_dpi": template.resolution_dpi,
            "positions": encode_array(template.positions_px()),
            "angles": encode_array(template.angles()),
            "kinds": encode_array(template.kinds()),
            "qualities": encode_array(template.qualities()),
        },
    }


def record_from_wal(data: dict, lsn: int = 0) -> GalleryRecord:
    """Rebuild a :class:`GalleryRecord` from an ``enroll`` WAL payload."""
    try:
        spec = data["template"]
        template = template_from_arrays(
            positions_px=decode_array(spec["positions"]),
            angles=decode_array(spec["angles"]),
            kinds=decode_array(spec["kinds"]),
            qualities=decode_array(spec["qualities"]),
            width_px=int(spec["width_px"]),
            height_px=int(spec["height_px"]),
            resolution_dpi=int(spec.get("resolution_dpi", 500)),
        )
        return GalleryRecord(
            identity=_check_name(str(data["identity"]), "identity"),
            device=_check_name(str(data["device"]), "device"),
            template=template,
            nfiq_level=int(data["nfiq_level"]),
            nfiq_utility=float(data["nfiq_utility"]),
            enrolled_at=float(data["enrolled_at"]),
            descriptor=descriptor_vector(template),
            lsn=int(lsn),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GalleryError(
            f"WAL enroll record is missing or malformed: {exc}"
        ) from exc


class GalleryIndex:
    """Enrollment database: per-device shards of quality-gated templates.

    Parameters
    ----------
    root:
        Directory holding the per-device shards
        (``root/<device>/<identity>.npz``).  Created on first enrollment;
        existing records are loaded eagerly at construction, which is how
        a restarted server recovers its gallery.
    max_nfiq_level:
        Acceptance ceiling for the template-evidence NFIQ gate; a
        template assessed *worse* (numerically greater) is rejected with
        :class:`EnrollmentRejected`.
    wal_dir:
        Where the write-ahead log lives (default ``root/__wal__``).
    wal_sync:
        Fsync policy override (default: ``REPRO_WAL_SYNC`` or
        ``always``); see :mod:`repro.runtime.wal`.
    readonly:
        Follower mode: load the shards without mutating anything on
        disk (corrupt entries are skipped, not unlinked; no WAL writer,
        no index persistence).  Writes raise
        :class:`GalleryReadOnlyError`; live updates arrive through
        :meth:`apply_wal_record` from a tailed WAL instead.
    """

    def __init__(
        self,
        root: Path,
        max_nfiq_level: int = DEFAULT_MAX_NFIQ_LEVEL,
        wal_dir: Optional[Path] = None,
        wal_sync: Optional[str] = None,
        readonly: bool = False,
    ) -> None:
        if not 1 <= max_nfiq_level <= 5:
            raise ConfigurationError(
                f"max_nfiq_level must be 1..5, got {max_nfiq_level}"
            )
        self._root = Path(root)
        self._max_nfiq_level = max_nfiq_level
        self._readonly = bool(readonly)
        self._shards: Dict[str, NpzDirectory] = {}
        self._records: Dict[Tuple[str, str], GalleryRecord] = {}
        self._indexes: Dict[str, PrefilterIndex] = {}
        self._dirty_indexes: Set[str] = set()
        #: Corrupt/unreadable records silently skipped at the last
        #: reload — surfaced in :meth:`stats` and ``/metrics``.
        self.corrupt_dropped = 0
        self._index_store = NpzDirectory(
            self._root / _INDEX_DIRNAME,
            metric_prefix="gallery.index",
            readonly=self._readonly,
        )
        self._wal: Optional[WriteAheadLog] = None
        if not self._readonly:
            self._wal = WriteAheadLog(
                wal_dir if wal_dir is not None else self._root / _WAL_DIRNAME,
                sync=wal_sync,
            )
        self._reload()
        if self._wal is not None:
            self._replay_wal()
        for device in self.devices():
            self._restore_index(device)

    # ------------------------------------------------------------------
    # Persistence plumbing
    # ------------------------------------------------------------------
    def _shard(self, device: str) -> NpzDirectory:
        shard = self._shards.get(device)
        if shard is None:
            shard = NpzDirectory(
                self._root / device,
                metric_prefix="gallery",
                readonly=self._readonly,
            )
            self._shards[device] = shard
        return shard

    def _reload(self) -> None:
        """Rebuild the in-memory index from whatever survives on disk."""
        if not self._root.exists():
            return
        loaded = 0
        dropped = 0
        for device_dir in sorted(p for p in self._root.iterdir() if p.is_dir()):
            device = device_dir.name
            if device == _INDEX_DIRNAME or not _NAME_RE.match(device):
                continue
            shard = self._shard(device)
            for entry in sorted(device_dir.glob("*.npz")):
                identity = entry.stem
                if not _NAME_RE.match(identity):
                    continue
                record = self._load_record(shard, device, identity)
                if record is None:
                    dropped += 1
                    continue
                self._records[(device, identity)] = record
                loaded += 1
        self.corrupt_dropped = dropped
        if dropped:
            get_recorder().count("gallery.corrupt_dropped", dropped)
        if loaded or dropped:
            _log.info(
                "gallery reloaded",
                extra={"data": {"records": loaded, "dropped": dropped}},
            )

    def _replay_wal(self) -> None:
        """Reconcile the shards with the retained write-ahead log.

        Replay is idempotent: an enroll already reflected in the shards
        (same enrollment timestamp) is skipped, a delete of an absent
        pair is a no-op — so re-running replay after any crash point
        converges on the logged history.  A torn tail was truncated by
        :meth:`~repro.runtime.wal.WriteAheadLog.replay` (the
        interrupted op was never acked); corruption anywhere else
        propagates :class:`~repro.runtime.wal.WalCorruptionError`.
        """
        assert self._wal is not None
        records = self._wal.replay()
        applied = 0
        # Every retained record replays, checkpointed or not: retained
        # records are a suffix of the log, so idempotent re-application
        # over the shard state converges — and re-materializes any shard
        # file that vanished or rotted since the checkpoint.
        for rec in records:
            if rec.op == "enroll":
                record = record_from_wal(rec.data, lsn=rec.lsn)
                key = (record.device, record.identity)
                existing = self._records.get(key)
                if (
                    existing is not None
                    and existing.enrolled_at == record.enrolled_at
                ):
                    continue
                self._store_record(record)
                self._records[key] = record
                applied += 1
            elif rec.op == "delete":
                try:
                    key = (str(rec.data["device"]), str(rec.data["identity"]))
                except KeyError as exc:
                    raise GalleryError(
                        f"WAL delete record missing field: {exc}"
                    ) from exc
                if key in self._records:
                    del self._records[key]
                    self._shard(key[0]).invalidate(key[1])
                    applied += 1
            else:
                _log.warning(
                    "unknown WAL op skipped",
                    extra={"data": {"op": rec.op, "lsn": rec.lsn}},
                )
        if applied:
            get_recorder().count("gallery.wal_reapplied", applied)
            _log.info(
                "WAL replay reconciled the gallery",
                extra={"data": {
                    "records": len(records), "applied": applied,
                }},
            )
        # Everything logged is now applied to the (durable, atomic)
        # shards: advance the checkpoint and compact old segments.
        if self._wal.last_lsn:
            self._wal.checkpoint(self._wal.last_lsn)

    def _load_record(
        self, shard: NpzDirectory, device: str, identity: str
    ) -> Optional[GalleryRecord]:
        arrays = shard.load(identity)
        meta = shard.load_meta(identity)
        if arrays is None or meta is None:
            return None
        try:
            template = template_from_arrays(
                positions_px=arrays["positions"],
                angles=arrays["angles"],
                kinds=arrays["kinds"],
                qualities=arrays["qualities"],
                width_px=int(meta["width_px"]),
                height_px=int(meta["height_px"]),
                resolution_dpi=int(meta.get("resolution_dpi", 500)),
            )
        except (KeyError, ReproError):
            _log.warning(
                "unreadable gallery record dropped",
                extra={"data": {"device": device, "identity": identity}},
            )
            return None
        descriptor = arrays.get("descriptor")
        if (
            descriptor is None
            or descriptor.shape != (DESCRIPTOR_DIM,)
            or int(meta.get("descriptor_version", 0)) != DESCRIPTOR_VERSION
        ):
            # Records written before the prefilter (or under another
            # descriptor layout) are upgraded in memory; the next store
            # of that identity persists the fresh vector.
            descriptor = descriptor_vector(template)
            get_recorder().count("gallery.descriptor_recomputed")
        return GalleryRecord(
            identity=identity,
            device=device,
            template=template,
            nfiq_level=int(meta.get("nfiq_level", 0)) or assess_template(template).level,
            nfiq_utility=float(meta.get("nfiq_utility", 0.0)),
            enrolled_at=float(meta.get("enrolled_at", 0.0)),
            descriptor=np.asarray(descriptor, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Descriptor index maintenance
    # ------------------------------------------------------------------
    def _index(self, device: str) -> PrefilterIndex:
        index = self._indexes.get(device)
        if index is None:
            index = PrefilterIndex()
            self._indexes[device] = index
        return index

    def _persist_index(self, device: str) -> None:
        """Write one shard's contiguous descriptor matrix atomically."""
        if self._readonly:
            return
        index = self._index(device)
        if len(index) == 0:
            self._index_store.invalidate(device)
            return
        self._index_store.store(
            device,
            arrays={"matrix": index.matrix()},
            meta={
                "device": device,
                "identities": list(index.keys()),
                "descriptor_version": DESCRIPTOR_VERSION,
                "dim": index.dim,
            },
        )

    def flush_indexes(self) -> int:
        """Persist every dirty descriptor matrix; returns how many.

        The per-write path only dirty-flags (an O(gallery) matrix
        rewrite per enroll was the old behavior); flushes happen here —
        at WAL checkpoints, on :meth:`close`, or whenever a caller
        wants the derived state on disk.  Crash staleness is safe
        either way: the reload check rebuilds any matrix that
        disagrees with the records.
        """
        flushed = 0
        for device in sorted(self._dirty_indexes):
            self._persist_index(device)
            flushed += 1
        self._dirty_indexes.clear()
        if flushed:
            get_recorder().count("gallery.index.flushes", flushed)
        return flushed

    def _rebuild_index(self, device: str) -> None:
        """Derive one shard's index from its records and re-persist it."""
        self._indexes[device] = PrefilterIndex.from_items({
            identity: record.descriptor
            for (dev, identity), record in sorted(self._records.items())
            if dev == device
        })
        self._persist_index(device)
        get_recorder().count("gallery.index.rebuilt")

    def _restore_index(self, device: str) -> None:
        """Adopt the persisted matrix when it matches the records.

        The matrix is a derived artifact: corruption, a descriptor
        version bump, or any disagreement with the records (identity
        set, dimension, non-finite rows) means it is discarded and
        rebuilt — corruption-as-miss, never corruption-as-truth.
        """
        arrays = self._index_store.load(device)
        meta = self._index_store.load_meta(device)
        expected = sorted(
            identity for (dev, identity) in self._records if dev == device
        )
        if arrays is not None and meta is not None:
            matrix = arrays.get("matrix")
            identities = list(meta.get("identities", []))
            if (
                int(meta.get("descriptor_version", 0)) == DESCRIPTOR_VERSION
                and matrix is not None
                and matrix.ndim == 2
                and matrix.shape == (len(identities), DESCRIPTOR_DIM)
                and sorted(identities) == expected
                and bool(np.all(np.isfinite(matrix)))
            ):
                self._indexes[device] = PrefilterIndex.from_items({
                    identity: matrix[i] for i, identity in enumerate(identities)
                })
                return
            _log.warning(
                "stale descriptor matrix rebuilt",
                extra={"data": {"device": device}},
            )
        self._rebuild_index(device)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _store_record(self, record: GalleryRecord) -> None:
        """Write one record's ``.npz`` shard entry (atomic)."""
        template = record.template
        self._shard(record.device).store(
            record.identity,
            arrays={
                "positions": template.positions_px(),
                "angles": template.angles(),
                "kinds": template.kinds(),
                "qualities": template.qualities(),
                "descriptor": record.descriptor,
            },
            meta={
                "identity": record.identity,
                "device": record.device,
                "nfiq_level": record.nfiq_level,
                "nfiq_utility": record.nfiq_utility,
                "width_px": template.width_px,
                "height_px": template.height_px,
                "resolution_dpi": template.resolution_dpi,
                "enrolled_at": record.enrolled_at,
                "descriptor_version": DESCRIPTOR_VERSION,
            },
        )

    def _maybe_checkpoint(self, durable_lsn: int) -> None:
        """Checkpoint/compact when a WAL segment sealed since the last.

        Every op at or below ``durable_lsn`` is already applied to the
        atomic shard store, so the sealed segments are redundant; the
        dirty descriptor matrices ride the same flush point.
        """
        if self._wal is None or not self._wal.rotated_since_checkpoint:
            return
        self.flush_indexes()
        self._wal.checkpoint(durable_lsn)

    def enroll(
        self, identity: str, template: Template, device: str = "default"
    ) -> GalleryRecord:
        """Quality-gate, log, persist, and index one template.

        Re-enrolling an existing (identity, device) pair replaces the
        stored template — the online analogue of a re-capture.  Raises
        :class:`EnrollmentRejected` when the template's NFIQ level is
        worse than the index's acceptance ceiling.

        Ordering is log → apply → return: the WAL append (fsynced per
        policy) happens before any state changes, so a caller that saw
        this method return can rely on the enrollment surviving a
        crash, and a crash mid-apply is reconciled by replay.  A WAL
        failure raises before anything is applied — never acked, never
        half-done.
        """
        if self._readonly:
            raise GalleryReadOnlyError("enroll")
        _check_name(identity, "identity")
        _check_name(device, "device")
        assessment = assess_template(template)
        if assessment.level > self._max_nfiq_level:
            get_recorder().count("gallery.rejected")
            raise EnrollmentRejected(identity, assessment.level, self._max_nfiq_level)
        descriptor = descriptor_vector(template)
        enrolled_at = time.time()
        lsn = 0
        if self._wal is not None:
            lsn = self._wal.append(
                "enroll",
                wal_enroll_payload(
                    identity, device, template,
                    assessment.level, assessment.utility, enrolled_at,
                ),
            )
        record = GalleryRecord(
            identity=identity,
            device=device,
            template=template,
            nfiq_level=assessment.level,
            nfiq_utility=assessment.utility,
            enrolled_at=enrolled_at,
            descriptor=descriptor,
            lsn=lsn,
        )
        self._store_record(record)
        self._records[(device, identity)] = record
        self._index(device).add(identity, descriptor)
        self._dirty_indexes.add(device)
        self._maybe_checkpoint(lsn)
        get_recorder().count("gallery.enrolled")
        return record

    def delete(self, identity: str, device: str = "default") -> int:
        """Remove one enrollment; unknown pairs raise.

        Same log → apply contract as :meth:`enroll`; returns the WAL
        sequence number of the logged delete (0 without a log).
        """
        if self._readonly:
            raise GalleryReadOnlyError("delete")
        _check_name(identity, "identity")
        _check_name(device, "device")
        if (device, identity) not in self._records:
            raise UnknownIdentityError(identity, device)
        lsn = 0
        if self._wal is not None:
            lsn = self._wal.append(
                "delete", {"identity": identity, "device": device}
            )
        del self._records[(device, identity)]
        self._shard(device).invalidate(identity)
        index = self._index(device)
        if identity in index:
            index.remove(identity)
        self._dirty_indexes.add(device)
        self._maybe_checkpoint(lsn)
        get_recorder().count("gallery.deleted")
        return lsn

    # ------------------------------------------------------------------
    # Follower application / lifecycle
    # ------------------------------------------------------------------
    def apply_wal_record(
        self, record: WalRecord
    ) -> Optional[Tuple[str, str, str, Optional[GalleryRecord]]]:
        """Apply one tailed WAL record in memory (follower mode).

        Returns ``(op, device, identity, record)`` for an applied
        enroll (``record`` is the rebuilt :class:`GalleryRecord`) or
        delete (``record`` is ``None``), and ``None`` for a no-op —
        the caller forwards applied ops to its worker-pool delta log.
        Never touches disk: the primary owns the shards.
        """
        if record.op == "enroll":
            rebuilt = record_from_wal(record.data, lsn=record.lsn)
            key = (rebuilt.device, rebuilt.identity)
            existing = self._records.get(key)
            self._records[key] = rebuilt
            self._index(rebuilt.device).add(rebuilt.identity, rebuilt.descriptor)
            if existing is not None and existing.enrolled_at == rebuilt.enrolled_at:
                return None
            return ("enroll", rebuilt.device, rebuilt.identity, rebuilt)
        if record.op == "delete":
            device = str(record.data.get("device", ""))
            identity = str(record.data.get("identity", ""))
            key = (device, identity)
            if key not in self._records:
                return None
            del self._records[key]
            index = self._index(device)
            if identity in index:
                index.remove(identity)
            return ("delete", device, identity, None)
        _log.warning(
            "unknown WAL op skipped",
            extra={"data": {"op": record.op, "lsn": record.lsn}},
        )
        return None

    def rebootstrap(self) -> int:
        """Reload this read-only view from the on-disk snapshot.

        A follower that falls past WAL retention (the primary compacted
        beyond its cursor) cannot catch up incrementally — but the
        shards it shares with the primary always reflect at least
        everything the compacted records did, so dropping the in-memory
        state and re-reading the snapshot re-synchronizes it.  The
        caller then restarts its WAL tail from the oldest retained
        segment; re-applying retained records over the fresh snapshot
        is safe because :meth:`apply_wal_record` is idempotent.

        Returns the record count after the reload.  Only meaningful on
        a ``readonly=True`` gallery — a writer owns its state.
        """
        if not self._readonly:
            raise GalleryReadOnlyError("rebootstrap")
        self._records.clear()
        self._indexes.clear()
        self._dirty_indexes.clear()
        self._shards.clear()
        self._reload()
        for device in self.devices():
            self._restore_index(device)
        get_recorder().count("gallery.rebootstraps")
        return len(self._records)

    @property
    def readonly(self) -> bool:
        """Whether this gallery is a read-only follower view."""
        return self._readonly

    @property
    def wal_last_lsn(self) -> int:
        """LSN of the most recent logged op (0 without a writer)."""
        return self._wal.last_lsn if self._wal is not None else 0

    def wal_stats(self) -> Optional[dict]:
        """The write-ahead log's footprint/counters (``None`` without one)."""
        return self._wal.stats() if self._wal is not None else None

    def close(self) -> None:
        """Flush dirty matrices, checkpoint, and close the WAL (idempotent)."""
        self.flush_indexes()
        if self._wal is not None:
            if self._wal.last_lsn:
                self._wal.checkpoint(self._wal.last_lsn)
            self._wal.close()

    def __enter__(self) -> "GalleryIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def get(self, identity: str, device: str = "default") -> GalleryRecord:
        """The enrolled record, or :class:`UnknownIdentityError`."""
        record = self._records.get((device, identity))
        if record is None:
            raise UnknownIdentityError(identity, device)
        return record

    def __contains__(self, key: Tuple[str, str]) -> bool:
        device, identity = key
        return (device, identity) in self._records

    def __len__(self) -> int:
        return len(self._records)

    def devices(self) -> List[str]:
        """Devices with at least one enrollment, sorted."""
        return sorted({device for device, _ in self._records})

    def identities(self, device: Optional[str] = None) -> List[str]:
        """Enrolled identities (on one device, or anywhere), sorted."""
        if device is None:
            return sorted({identity for _, identity in self._records})
        return sorted(
            identity for dev, identity in self._records if dev == device
        )

    def candidates(self, device: Optional[str] = None) -> Dict[str, Template]:
        """The 1:N search space as ``{identity: template}``.

        With a device, keys are bare identities within that shard; across
        all devices the same identity may be enrolled several times, so
        keys become ``device/identity`` to keep candidates distinct.
        """
        if device is not None:
            return {
                identity: record.template
                for (dev, identity), record in sorted(self._records.items())
                if dev == device
            }
        return {
            f"{dev}/{identity}": record.template
            for (dev, identity), record in sorted(self._records.items())
        }

    def prefilter(
        self,
        probe: Template,
        device: Optional[str] = None,
        k: int = 32,
    ) -> List[PrefilterCandidate]:
        """Coarse-stage top-K: the descriptor-nearest enrolled candidates.

        Keys match :meth:`candidates` — bare identities within one
        device shard, ``device/identity`` across shards (each shard's
        local top-K is merged into an exact global top-K, so sharding
        never changes the answer).  Returns at most ``k`` candidates,
        nearest first; an empty gallery returns an empty list.
        """
        if k < 1:
            raise ConfigurationError(f"prefilter needs k >= 1, got {k}")
        vector = descriptor_vector(probe)
        if device is not None:
            _check_name(device, "device")
            if device not in self._indexes:
                return []
            return self._indexes[device].top_k(vector, k)
        shards = []
        for dev in self.devices():
            local = self._indexes[dev].top_k(vector, k)
            shards.append([
                PrefilterCandidate(
                    key=f"{dev}/{c.key}", distance=c.distance, rank=c.rank
                )
                for c in local
            ])
        return merge_shard_candidates(shards, k)

    def records(self) -> Dict[Tuple[str, str], GalleryRecord]:
        """A shallow copy of every record, keyed ``(device, identity)``.

        The worker pool packs this into a
        :class:`~repro.runtime.shm.SharedGalleryStore` snapshot at
        startup; the copy keeps later enrollments from mutating the dict
        mid-pack.
        """
        return dict(self._records)

    def descriptor_matrix(self, device: str) -> np.ndarray:
        """One shard's contiguous (n, dim) descriptor matrix (a copy)."""
        _check_name(device, "device")
        if device not in self._indexes:
            return np.empty((0, DESCRIPTOR_DIM), dtype=np.float64)
        return self._indexes[device].matrix()

    def stats(self) -> dict:
        """JSON-able footprint summary for ``/stats`` and the CLI."""
        per_device: Dict[str, int] = {}
        for device, _ in self._records:
            per_device[device] = per_device.get(device, 0) + 1
        disk = {"entries": 0, "bytes": 0}
        for device in self.devices():
            shard_stats = self._shard(device).stats()
            disk["entries"] += shard_stats["entries"]
            disk["bytes"] += shard_stats["bytes"]
        return {
            "root": str(self._root),
            "enrolled": len(self._records),
            "devices": per_device,
            "max_nfiq_level": self._max_nfiq_level,
            "readonly": self._readonly,
            "corrupt_dropped": self.corrupt_dropped,
            "disk": disk,
            "index": {
                "descriptor_version": DESCRIPTOR_VERSION,
                "descriptor_dim": DESCRIPTOR_DIM,
                "indexed": {
                    device: len(index)
                    for device, index in sorted(self._indexes.items())
                },
            },
            "wal": self.wal_stats(),
        }


__all__ = [
    "GalleryIndex",
    "GalleryRecord",
    "GalleryError",
    "GalleryReadOnlyError",
    "EnrollmentRejected",
    "UnknownIdentityError",
    "DEFAULT_MAX_NFIQ_LEVEL",
    "record_from_wal",
    "wal_enroll_payload",
]
