"""`repro top`: a live terminal dashboard for one running server.

Polls ``GET /stats`` (exact window quantiles, decision tallies) and
``GET /metrics`` (cumulative counters, run through the strict
exposition parser — every refresh doubles as a format check) and renders
per-endpoint rates *between* consecutive samples: QPS, window p95,
error rate, and the interval's mean micro-batch size, plus cumulative
``denied`` (401/403) and ``throttled`` (429) tallies on keyed servers.
Rendering is plain ANSI (cursor-home + clear-to-end), no curses, no
dependencies.

The arithmetic lives in pure functions (:func:`compute_deltas`,
:func:`render_frame`) so the tests can drive them with synthetic
samples; :func:`run_top` is the thin polling loop the CLI wraps.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, TextIO

from .client import ServiceClient
from .metrics import parse_exposition, sample_value
from .stats import ENDPOINTS, PROBE_ENDPOINTS

#: Endpoints shown as dashboard rows (probe traffic stays off the board).
DISPLAY_ENDPOINTS = tuple(e for e in ENDPOINTS if e not in PROBE_ENDPOINTS)

_CLEAR = "\x1b[H\x1b[J"


def take_sample(client: ServiceClient) -> dict:
    """One observation of the server, normalized for delta arithmetic."""
    stats = client.stats()
    families = parse_exposition(client.metrics())
    requests: Dict[str, float] = {}
    for endpoint in ENDPOINTS:
        value = sample_value(
            families, "repro_requests_total", {"endpoint": endpoint}
        )
        if value is None:
            value = float(stats["requests"].get(endpoint, 0))
        requests[endpoint] = value
    errors = sum(
        count for status, count in stats["statuses"].items()
        if int(status) >= 400
    )
    denied = sum(
        count for status, count in stats["statuses"].items()
        if int(status) in (401, 403)
    )
    throttled = stats["statuses"].get("429", 0)
    batching = stats["batching"]
    return {
        "time": time.monotonic(),
        "requests": requests,
        "total": float(sum(requests.values())),
        "errors": float(errors),
        "latency": stats.get("latency", {}),
        "batches": float(batching["batches"]),
        "jobs": float(batching["jobs"]),
        "queued_jobs": batching.get("queued_jobs", 0),
        "uptime_seconds": stats["uptime_seconds"],
        "enrolled": stats.get("gallery", {}).get("enrolled", 0),
        "overloads": stats["overloads"],
        "deadline_exceeded": stats["deadline_exceeded"],
        "slow_requests": stats.get("slow_requests", 0),
        "denied": float(denied),
        "throttled": float(throttled),
        "auth_enabled": stats.get("auth", {}).get("enabled", False),
        "workers_alive": stats.get("workers", {}).get("alive", 0),
        "workers_configured": stats.get("workers", {}).get("configured", 0),
        "role": stats.get("replication", {}).get("role", "primary"),
        "applied_lsn": stats.get("replication", {}).get("applied_lsn", 0),
        "lag_records": stats.get("replication", {}).get("lag_records", 0),
    }


def compute_deltas(prev: Optional[dict], cur: dict) -> dict:
    """Interval rates between two samples (zeros on the first frame)."""
    if prev is None:
        dt = 0.0
    else:
        dt = max(1e-9, cur["time"] - prev["time"])

    def rate(key: str, sub: Optional[str] = None) -> float:
        if prev is None:
            return 0.0
        if sub is None:
            return max(0.0, (cur[key] - prev[key]) / dt)
        return max(0.0, (cur[key].get(sub, 0.0) - prev[key].get(sub, 0.0)) / dt)

    per_endpoint = {}
    for endpoint in DISPLAY_ENDPOINTS:
        window = cur["latency"].get(endpoint)
        per_endpoint[endpoint] = {
            "qps": rate("requests", endpoint),
            "p95_ms": window["p95_ms"] if window else None,
        }
    total_delta = 0.0 if prev is None else cur["total"] - prev["total"]
    error_delta = 0.0 if prev is None else cur["errors"] - prev["errors"]
    batch_delta = 0.0 if prev is None else cur["batches"] - prev["batches"]
    job_delta = 0.0 if prev is None else cur["jobs"] - prev["jobs"]
    return {
        "interval_s": dt,
        "endpoints": per_endpoint,
        "qps": rate("total"),
        "error_rate": (error_delta / total_delta) if total_delta > 0 else 0.0,
        "mean_batch_size": (job_delta / batch_delta) if batch_delta > 0 else 0.0,
    }


def _fmt(value, width: int, digits: int = 1) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:.{digits}f}".rjust(width)


def render_frame(sample: dict, deltas: dict, host: str, port: int) -> str:
    """One dashboard frame as plain text (no escape codes)."""
    lines = [
        f"repro top — {host}:{port}   "
        f"up {sample['uptime_seconds']:.0f}s   "
        f"enrolled {sample['enrolled']}   "
        f"queued {sample['queued_jobs']}   "
        f"workers {sample.get('workers_alive', 0)}"
        f"/{sample.get('workers_configured', 0)}   "
        f"{sample.get('role', 'primary')}"
        f" lsn {sample.get('applied_lsn', 0)}"
        f" lag {sample.get('lag_records', 0)}",
        f"interval {deltas['interval_s']:.1f}s   "
        f"qps {deltas['qps']:.1f}   "
        f"err {100.0 * deltas['error_rate']:.1f}%   "
        f"batch {deltas['mean_batch_size']:.1f}   "
        f"503 {sample['overloads']}   504 {sample['deadline_exceeded']}   "
        f"slow {sample['slow_requests']}   "
        f"denied {sample.get('denied', 0):.0f}   "
        f"throttled {sample.get('throttled', 0):.0f}",
        "",
        f"{'endpoint':<10}{'qps':>8}{'p95_ms':>10}",
    ]
    for endpoint in DISPLAY_ENDPOINTS:
        row = deltas["endpoints"][endpoint]
        lines.append(
            f"{endpoint:<10}"
            f"{_fmt(row['qps'], 8)}"
            f"{_fmt(row['p95_ms'], 10, 2)}"
        )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    out: Optional[TextIO] = None,
    clear: bool = True,
) -> int:
    """Poll and redraw until interrupted (or for ``iterations`` frames).

    Returns a process exit code: 0 on a clean exit (including Ctrl-C),
    1 when the server could not be reached at all.
    """
    stream = out if out is not None else sys.stdout
    prev: Optional[dict] = None
    frames = 0
    with ServiceClient(host, port) as client:
        try:
            while iterations is None or frames < iterations:
                cur = take_sample(client)
                frame = render_frame(cur, compute_deltas(prev, cur), host, port)
                if clear:
                    stream.write(_CLEAR)
                stream.write(frame + "\n")
                stream.flush()
                prev = cur
                frames += 1
                if iterations is not None and frames >= iterations:
                    break
                time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
        except Exception as exc:  # noqa: BLE001 - surface, don't trace back
            stream.write(f"repro top: {exc}\n")
            return 1
    return 0


__all__ = [
    "take_sample",
    "compute_deltas",
    "render_frame",
    "run_top",
    "DISPLAY_ENDPOINTS",
]
