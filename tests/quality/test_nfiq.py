"""NFIQ-style assessment."""

import numpy as np
import pytest

from repro.matcher.types import Template, template_from_arrays
from repro.quality.features import QualityFeatures
from repro.quality.nfiq import (
    MAX_REACQUISITIONS,
    assess,
    assess_template,
    nfiq_level,
    quality_utility,
    recommend_reacquisition,
    template_quality_features,
)


def _features(count=35, area=0.7, coherence=0.8, dryness=0.1, noise=0.2, quality=0.75):
    return QualityFeatures(
        minutiae_count=count,
        contact_area_fraction=area,
        mean_coherence=coherence,
        dryness_artifact=dryness,
        noise_level=noise,
        mean_minutia_quality=quality,
    )


class TestUtility:
    def test_bounded(self):
        assert 0.0 <= quality_utility(_features()) <= 1.0

    def test_pristine_is_high(self):
        pristine = _features(count=50, area=0.9, coherence=0.95, dryness=0.0,
                             noise=0.05, quality=0.95)
        assert quality_utility(pristine) > 0.85

    def test_terrible_is_low(self):
        terrible = _features(count=5, area=0.15, coherence=0.2, dryness=0.9,
                             noise=0.9, quality=0.15)
        assert quality_utility(terrible) < 0.3

    @pytest.mark.parametrize(
        "degraded",
        [
            dict(count=8),
            dict(area=0.15),
            dict(coherence=0.2),
            dict(dryness=0.95),
            dict(noise=0.95),
            dict(quality=0.1),
        ],
    )
    def test_each_factor_lowers_utility(self, degraded):
        assert quality_utility(_features(**degraded)) < quality_utility(_features())


class TestLevels:
    def test_levels_cover_1_to_5(self):
        pristine = _features(count=55, area=0.95, coherence=0.97, dryness=0.0,
                             noise=0.02, quality=0.97)
        terrible = _features(count=3, area=0.1, coherence=0.1, dryness=1.0,
                             noise=1.0, quality=0.05)
        assert nfiq_level(pristine) == 1
        assert nfiq_level(terrible) == 5

    def test_levels_monotone_in_utility(self):
        # Build a degradation ramp and check levels never improve.
        levels = []
        for t in np.linspace(0, 1, 21):
            f = _features(
                count=int(50 - 45 * t),
                area=0.9 - 0.75 * t,
                coherence=0.95 - 0.8 * t,
                dryness=t,
                noise=t,
                quality=0.95 - 0.85 * t,
            )
            levels.append(nfiq_level(f))
        assert levels == sorted(levels)

    def test_assess_bundles_both(self):
        verdict = assess(_features())
        assert 1 <= verdict.level <= 5
        assert 0 <= verdict.utility <= 1


class TestReacquisition:
    def test_rule_matches_sp80076(self):
        # "reacquired ... up to three times, if the NFIQ quality ... is
        # greater than three".
        assert recommend_reacquisition(4, 0)
        assert recommend_reacquisition(5, 2)
        assert not recommend_reacquisition(3, 0)
        assert not recommend_reacquisition(1, 0)
        assert not recommend_reacquisition(5, MAX_REACQUISITIONS)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            recommend_reacquisition(0, 0)
        with pytest.raises(ValueError):
            recommend_reacquisition(3, -1)


class TestTemplateEvidence:
    """Template-only NFIQ — the serving layer's enrollment gate."""

    def _template(self, count=40, quality=80, spread=260.0):
        rng = np.random.default_rng(7)
        positions = 40.0 + rng.random((count, 2)) * spread
        return template_from_arrays(
            positions_px=positions,
            angles=rng.random(count) * 6.28,
            kinds=rng.integers(1, 3, count),
            qualities=np.full(count, quality),
            width_px=350,
            height_px=400,
        )

    def test_features_reflect_template_evidence(self):
        features = template_quality_features(self._template())
        assert features.minutiae_count == 40
        assert features.mean_minutia_quality == pytest.approx(0.80)
        assert 0.0 < features.contact_area_fraction <= 1.0

    def test_dense_template_assesses_well(self):
        verdict = assess_template(self._template(count=45, quality=90))
        assert verdict.level <= 2

    def test_sparse_low_confidence_template_assesses_poorly(self):
        verdict = assess_template(self._template(count=5, quality=12, spread=25.0))
        assert verdict.level >= 4

    def test_empty_template_is_level_5(self):
        empty = Template(minutiae=(), width_px=300, height_px=400)
        verdict = assess_template(empty)
        assert verdict.level == 5
        features = template_quality_features(empty)
        assert features.minutiae_count == 0
        assert features.contact_area_fraction == 0.0

    def test_synthesized_templates_pass_the_default_gate(self, tiny_collection):
        levels = [
            assess_template(
                tiny_collection.get(sid, "right_index", "D0", 0).template
            ).level
            for sid in range(5)
        ]
        assert all(1 <= level <= 4 for level in levels)


class TestPredictsMatcherPerformance:
    """The NFIQ contract: the level predicts genuine match scores."""

    def test_levels_correlate_with_genuine_scores(self, tiny_study):
        sets = tiny_study.score_sets()
        genuine = sets["DDMG"]
        worst = np.maximum(genuine.nfiq_gallery, genuine.nfiq_probe)
        good = genuine.scores[worst <= 2]
        bad = genuine.scores[worst >= 4]
        if len(good) >= 3 and len(bad) >= 3:
            assert good.mean() > bad.mean()
