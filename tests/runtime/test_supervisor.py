"""Supervised pool execution: retry policy, self-healing, ordering."""

import pytest

from repro.runtime.errors import (
    ConfigurationError,
    PermanentError,
    TransientError,
)
from repro.runtime.faults import ENV_LEDGER, ENV_SPEC
from repro.runtime.supervisor import (
    BatchSupervisor,
    RetryPolicy,
    default_task_keys,
    supervised_map_batched,
)
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder


@pytest.fixture()
def recorder():
    previous = get_recorder()
    live = enable_telemetry()
    yield live
    set_recorder(previous)


# Module-level so pool workers can unpickle them.
def _sum_batch(batch):
    return sum(batch)


FAST = RetryPolicy(backoff_base=0.001, backoff_max=0.01, poll_interval=0.05)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
            {"batch_timeout": 0.0},
            {"shrink_after": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0, jitter=0.5
        )
        for attempt in range(1, 7):
            delay = policy.backoff_for("scores-chunk0001", attempt)
            pure = min(0.1 * 2.0 ** (attempt - 1), 1.0)
            assert pure <= delay <= pure * 1.5
            assert delay == policy.backoff_for("scores-chunk0001", attempt)
        # Jitter separates tasks so retries do not thunder in lockstep.
        assert policy.backoff_for("a", 1) != policy.backoff_for("b", 1)

    def test_from_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.5")
        monkeypatch.setenv("REPRO_BATCH_TIMEOUT", "12")
        policy = RetryPolicy.from_environment()
        assert policy.max_attempts == 7
        assert policy.backoff_base == 0.5
        assert policy.batch_timeout == 12.0

    def test_zero_timeout_disables_watchdog(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TIMEOUT", "0")
        assert RetryPolicy.from_environment().batch_timeout is None

    def test_default_task_keys(self):
        assert default_task_keys("scores", 2) == [
            "scores-batch0000",
            "scores-batch0001",
        ]

    def test_task_key_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="task_keys"):
            supervised_map_batched(_sum_batch, [[1], [2]], task_keys=["only"])


class TestSerial:
    def test_results_and_emission_order(self):
        emitted = []
        results = supervised_map_batched(
            _sum_batch,
            [[1, 2], [3], [4, 5, 6]],
            n_workers=0,
            on_result=emitted.append,
        )
        assert results == [3, 3, 15]
        assert emitted == [3, 3, 15]

    def test_transient_failure_is_retried(self, recorder):
        calls = {"n": 0}

        def flaky(batch):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TransientError("warming up")
            return sum(batch)

        results = supervised_map_batched(
            flaky, [[1, 2, 3]], n_workers=0, policy=FAST
        )
        assert results == [6]
        assert recorder.counter_value("supervisor.retries") == 2

    def test_permanent_failure_escalates_immediately(self):
        calls = {"n": 0}

        def broken(batch):
            calls["n"] += 1
            raise ValueError("bug, not weather")

        with pytest.raises(ValueError):
            supervised_map_batched(broken, [[1]], n_workers=0, policy=FAST)
        assert calls["n"] == 1  # no retry budget burned on a bug

    def test_exhausted_retries_escalate(self):
        def hopeless(batch):
            raise TransientError("never better")

        policy = RetryPolicy(max_attempts=2, backoff_base=0.001)
        with pytest.raises(TransientError):
            supervised_map_batched(hopeless, [[1]], n_workers=0, policy=policy)

    def test_fail_fast_false_skips_and_emits_none(self, recorder):
        emitted = []

        def sometimes(batch):
            if batch == [2]:
                raise PermanentError("poisoned batch")
            return sum(batch)

        results = supervised_map_batched(
            sometimes,
            [[1], [2], [3]],
            n_workers=0,
            policy=FAST,
            fail_fast=False,
            on_result=emitted.append,
        )
        assert results == [1, None, 3]
        assert emitted == [1, None, 3]
        assert recorder.counter_value("supervisor.skipped") == 1


@pytest.fixture()
def chaos_env(monkeypatch, tmp_path):
    """Point the fault harness at a per-test ledger; spec set by tests."""

    def arm(spec):
        monkeypatch.setenv(ENV_SPEC, spec)
        monkeypatch.setenv(ENV_LEDGER, str(tmp_path / "ledger"))

    return arm


class TestPooled:
    BATCHES = [[i, i + 1] for i in range(6)]
    EXPECTED = [2 * i + 1 for i in range(6)]

    def test_executes_in_order(self):
        emitted = []
        results = supervised_map_batched(
            _sum_batch, self.BATCHES, n_workers=2, on_result=emitted.append
        )
        assert results == self.EXPECTED
        assert emitted == self.EXPECTED

    def test_injected_transient_faults_are_retried(self, recorder, chaos_env):
        chaos_env("transient:2")
        results = supervised_map_batched(
            _sum_batch, self.BATCHES, n_workers=2, policy=FAST
        )
        assert results == self.EXPECTED
        assert recorder.counter_value("supervisor.retries") == 2

    def test_worker_crash_rebuilds_pool(self, recorder, chaos_env):
        chaos_env("crash:1")
        results = supervised_map_batched(
            _sum_batch, self.BATCHES, n_workers=2, policy=FAST
        )
        assert results == self.EXPECTED
        assert recorder.counter_value("supervisor.pool_restarts") >= 1

    def test_hung_batch_trips_watchdog(self, recorder, chaos_env):
        chaos_env("hang:1:60")
        policy = RetryPolicy(
            backoff_base=0.001, batch_timeout=1.0, poll_interval=0.05
        )
        results = supervised_map_batched(
            _sum_batch, self.BATCHES, n_workers=2, policy=policy
        )
        assert results == self.EXPECTED
        assert recorder.counter_value("supervisor.timeouts") >= 1
        assert recorder.counter_value("supervisor.pool_restarts") >= 1

    def test_repeated_breakage_shrinks_then_degrades(self, recorder, chaos_env):
        # Two targeted crashes: one at width 2 (shrinks the pool), one at
        # width 1 (degrades to serial).  An untargeted budget could be
        # spent by both workers in a single pool generation.
        chaos_env("crash@task-batch0000:1,crash@task-batch0004:1")
        policy = RetryPolicy(
            backoff_base=0.001, poll_interval=0.05, shrink_after=1
        )
        supervisor = BatchSupervisor(
            _sum_batch, self.BATCHES, n_workers=2, policy=policy
        )
        results = supervisor.run()
        assert results == self.EXPECTED
        assert recorder.counter_value("supervisor.pool_restarts") >= 2
        assert supervisor.workers == 1
        assert supervisor.degraded
