"""Verification engines."""

import numpy as np
import pytest

from repro.pipeline import (
    EnrolledRecord,
    InteropAwareVerifier,
    TemplateDatabase,
    Verifier,
)
from repro.pipeline.verifier import train_interop_verifier_from_study
from repro.runtime.errors import ConfigurationError


@pytest.fixture(scope="module")
def database(tiny_collection, tiny_config):
    db = TemplateDatabase()
    for sid in range(tiny_config.n_subjects):
        imp = tiny_collection.get(sid, "right_index", "D0", 0)
        db.enroll(
            EnrolledRecord(
                identity=f"subject-{sid}",
                template=imp.template,
                device_id="D0",
                nfiq=imp.nfiq,
            )
        )
    return db


class TestBaselineVerifier:
    def test_accepts_genuine(self, database, tiny_collection):
        verifier = Verifier(database, threshold=7.5)
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        decision = verifier.verify("subject-0", probe, probe_device="D0")
        assert decision.accepted
        assert decision.raw_score >= 7.5
        assert decision.normalized_score == decision.raw_score

    def test_rejects_impostor(self, database, tiny_collection):
        verifier = Verifier(database, threshold=7.5)
        probe = tiny_collection.get(1, "right_index", "D0", 1).template
        decision = verifier.verify("subject-0", probe, probe_device="D0")
        assert not decision.accepted

    def test_audit_log_populated(self, database, tiny_collection):
        verifier = Verifier(database)
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        verifier.verify("subject-0", probe, probe_device="D0")
        verifier.verify("subject-1", probe, probe_device="D0")
        assert len(verifier.audit) == 2
        assert "subject-0" in verifier.audit.render()

    def test_unknown_identity(self, database, tiny_collection):
        from repro.pipeline.database import EnrollmentError

        verifier = Verifier(database)
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        with pytest.raises(EnrollmentError):
            verifier.verify("nobody", probe)

    def test_threshold_validation(self, database):
        with pytest.raises(ConfigurationError):
            Verifier(database, threshold=0.0)

    def test_multi_sample_fusion(self, database, tiny_collection):
        verifier = Verifier(database, threshold=7.5)
        probes = [
            tiny_collection.get(0, "right_index", "D1", 1).template,
            tiny_collection.get(0, "right_index", "D2", 1).template,
        ]
        decision = verifier.verify_multi_sample("subject-0", probes, "D1")
        assert decision.accepted
        # The fused score is the mean of the individual raw scores.
        singles = [
            verifier.verify("subject-0", p, "D1").raw_score for p in probes
        ]
        assert decision.raw_score == pytest.approx(np.mean(singles))

    def test_multi_sample_requires_probes(self, database):
        verifier = Verifier(database)
        with pytest.raises(ConfigurationError):
            verifier.verify_multi_sample("subject-0", [])


class TestInteropAwareVerifier:
    @pytest.fixture(scope="class")
    def trained(self, tiny_study, database):
        return train_interop_verifier_from_study(
            tiny_study,
            database,
            threshold=3.0,
            calibrate_pairs=[("D0", "D4")],
            n_train_subjects=6,
        )

    def test_normalizes_scores(self, trained, tiny_collection):
        probe = tiny_collection.get(0, "right_index", "D1", 1).template
        decision = trained.verify("subject-0", probe, probe_device="D1")
        # z-normed scale: genuine scores land many sigmas above impostors.
        assert decision.normalized_score != decision.raw_score
        assert decision.accepted

    def test_rejects_impostor_after_normalization(self, trained, tiny_collection):
        probe = tiny_collection.get(2, "right_index", "D1", 1).template
        decision = trained.verify("subject-0", probe, probe_device="D1")
        assert not decision.accepted

    def test_device_inference_used_when_undeclared(self, trained, tiny_collection):
        imp = tiny_collection.get(0, "right_index", "D4", 1)
        decision = trained.verify(
            "subject-0", imp.template, probe_features=imp.features
        )
        assert decision.probe_device_inferred
        assert decision.probe_device in ("D0", "D1", "D2", "D3", "D4")

    def test_inference_requires_features(self, trained, tiny_collection):
        probe = tiny_collection.get(0, "right_index", "D4", 1).template
        with pytest.raises(ConfigurationError, match="probe_features"):
            trained.verify("subject-0", probe)

    def test_calibration_applied_to_fitted_pair(self, trained, tiny_collection):
        probe = tiny_collection.get(7, "right_index", "D4", 1).template
        decision = trained.verify("subject-7", probe, probe_device="D4")
        assert decision.calibration_applied

    def test_no_calibration_for_native_pair(self, trained, tiny_collection):
        probe = tiny_collection.get(0, "right_index", "D0", 1).template
        decision = trained.verify("subject-0", probe, probe_device="D0")
        assert not decision.calibration_applied

    def test_audit_matrix_view(self, trained):
        matrix = trained.audit.rejection_rate_matrix()
        assert all(0.0 <= rate <= 1.0 for rate in matrix.values())

    def test_threshold_is_device_pair_portable(self, tiny_study, database, tiny_collection):
        """The architecture claim: one z-norm threshold works across
        device pairs better than one raw threshold."""
        verifier = train_interop_verifier_from_study(
            tiny_study, database, threshold=3.0
        )
        genuine_ok = 0
        total = 0
        for device in ("D0", "D1", "D2", "D3", "D4"):
            for sid in range(6):
                probe = tiny_collection.get(sid, "right_index", device, 1).template
                decision = verifier.verify(
                    f"subject-{sid}", probe, probe_device=device
                )
                genuine_ok += decision.accepted
                total += 1
        assert genuine_ok / total > 0.8
