"""Sensor-conditioned image rendering (placement + device warp)."""

import numpy as np
import pytest

from repro.imaging import (
    RenderSettings,
    extract_template,
    render_sensed_impression,
)
from repro.matcher import BioEngineMatcher
from repro.sensors.distortion import RigidPlacement, device_signature_field
from repro.synthesis import synthesize_master_finger


@pytest.fixture(scope="module")
def finger():
    return synthesize_master_finger(np.random.default_rng(4))


class TestGeometry:
    def test_identity_render_matches_plain(self, finger):
        rendered = render_sensed_impression(finger)
        assert rendered.image.min() >= 0 and rendered.image.max() <= 1
        assert len(rendered.minutiae_px) == finger.n_minutiae

    def test_placement_moves_minutiae(self, finger):
        still = render_sensed_impression(finger)
        moved = render_sensed_impression(
            finger, placement=RigidPlacement(2.0, 1.0, 0.2)
        )
        # Ground-truth pixel positions must shift with the placement.
        assert not np.allclose(still.minutiae_px, moved.minutiae_px, atol=1.0)

    def test_warp_displaces_geometry(self, finger):
        plain = render_sensed_impression(finger)
        warped = render_sensed_impression(
            finger, warp=device_signature_field("D4", 0.74)
        )
        deltas = np.linalg.norm(plain.minutiae_px - warped.minutiae_px, axis=1)
        assert deltas.mean() > 1.0  # several pixels at 8 px/mm

    def test_extraction_still_works_under_transform(self, finger):
        rendered = render_sensed_impression(
            finger,
            RenderSettings(pixels_per_mm=8.0),
            placement=RigidPlacement(1.0, -0.5, 0.1),
            warp=device_signature_field("D0", 0.46),
        )
        template = extract_template(
            rendered.image, rendered.pixels_per_mm, rendered.mask
        )
        assert len(template) >= 0.5 * finger.n_minutiae


class TestImageDomainInteroperability:
    """The study's mechanism, demonstrated without the template shortcut."""

    def test_cross_device_image_matching_scores_lower(self, finger):
        matcher = BioEngineMatcher()
        sig_d0 = device_signature_field("D0", 0.46)
        sig_d4 = device_signature_field("D4", 0.74)

        def impression(warp, seed, rotation, dx):
            rendered = render_sensed_impression(
                finger,
                RenderSettings(pixels_per_mm=8.0, noise_std=0.03, seed=seed),
                placement=RigidPlacement(dx, -0.3, rotation),
                warp=warp,
            )
            return extract_template(
                rendered.image, rendered.pixels_per_mm, rendered.mask
            )

        gallery = impression(sig_d0, seed=1, rotation=0.05, dx=0.2)
        same_device_probe = impression(sig_d0, seed=2, rotation=-0.08, dx=-0.4)
        cross_device_probe = impression(sig_d4, seed=3, rotation=0.06, dx=0.3)
        same = matcher.match(same_device_probe, gallery)
        cross = matcher.match(cross_device_probe, gallery)
        assert same > cross
        assert same > 10
