"""On-disk score cache behaviour."""

import numpy as np
import pytest

from repro.runtime.cache import ScoreCache
from repro.runtime.errors import CacheError
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder


@pytest.fixture()
def recorder():
    """A live recorder for the test, restored to the previous one after."""
    previous = get_recorder()
    live = enable_telemetry()
    yield live
    set_recorder(previous)


@pytest.fixture()
def cache(tmp_path):
    return ScoreCache(tmp_path / "cache")


class TestRoundTrip:
    def test_store_and_load(self, cache):
        arrays = {"scores": np.arange(5.0), "ids": np.array([1, 2, 3, 4, 5])}
        cache.store("run1", arrays)
        loaded = cache.load("run1")
        assert set(loaded) == {"scores", "ids"}
        np.testing.assert_array_equal(loaded["scores"], arrays["scores"])

    def test_meta_roundtrip(self, cache):
        cache.store("k", {"a": np.zeros(2)}, meta={"n": 10, "label": "x"})
        assert cache.load_meta("k") == {"n": 10, "label": "x"}

    def test_meta_not_in_arrays(self, cache):
        cache.store("k", {"a": np.zeros(2)}, meta={"n": 10})
        assert "__meta__" not in cache.load("k")

    def test_miss_returns_none(self, cache):
        assert cache.load("absent") is None
        assert cache.load_meta("absent") is None


class TestDisabled:
    def test_none_directory_disables(self):
        cache = ScoreCache(None)
        assert not cache.enabled
        cache.store("k", {"a": np.zeros(1)})  # silently a no-op
        assert cache.load("k") is None
        assert cache.invalidate("k") is False
        assert cache.clear() == 0


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, cache, tmp_path):
        cache.store("bad", {"a": np.zeros(3)})
        path = tmp_path / "cache" / "bad.npz"
        path.write_bytes(b"not a zipfile at all")
        assert cache.load("bad") is None
        # And the corrupt file was removed so the next store is clean.
        assert not path.exists()

    def test_bad_zipfile_entry_is_a_miss(self, cache, tmp_path):
        # Regression: a file with a valid zip magic but garbage payload
        # raises zipfile.BadZipFile from np.load, which load() must treat
        # as a corrupt entry, not propagate.
        cache.store("bad", {"a": np.zeros(3)})
        path = tmp_path / "cache" / "bad.npz"
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        assert cache.load("bad") is None
        assert not path.exists()

    def test_bad_zipfile_meta_is_a_miss(self, cache, tmp_path):
        cache.store("bad", {"a": np.zeros(3)}, meta={"n": 3})
        (tmp_path / "cache" / "bad.npz").write_bytes(b"PK\x03\x04" + b"\xff" * 32)
        assert cache.load_meta("bad") is None

    def test_corrupt_entry_counts_and_recovers(self, cache, tmp_path, recorder):
        cache.store("bad", {"a": np.zeros(3)})
        path = tmp_path / "cache" / "bad.npz"
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        assert cache.load("bad") is None
        assert recorder.metrics.counter_value("cache.corrupt") == 1
        assert recorder.metrics.counter_value("cache.miss") == 1
        # The slot is clean again: a fresh store round-trips.
        cache.store("bad", {"a": np.ones(2)})
        np.testing.assert_array_equal(cache.load("bad")["a"], np.ones(2))
        assert recorder.metrics.counter_value("cache.hit") == 1

    def test_hit_miss_store_counters(self, cache, recorder):
        assert cache.load("absent") is None
        cache.store("k", {"a": np.zeros(1)})
        assert cache.load("k") is not None
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.store"] >= 1
        assert counters["cache.hit"] == 1

    def test_bad_key_rejected(self, cache):
        with pytest.raises(CacheError):
            cache.store("../escape", {"a": np.zeros(1)})
        with pytest.raises(CacheError):
            cache.load("a/b")

    def test_invalidate(self, cache):
        cache.store("k", {"a": np.zeros(1)})
        assert cache.invalidate("k") is True
        assert cache.load("k") is None
        assert cache.invalidate("k") is False

    def test_clear(self, cache):
        cache.store("k1", {"a": np.zeros(1)})
        cache.store("k2", {"a": np.zeros(1)})
        assert cache.clear() == 2
        assert cache.load("k1") is None

    def test_overwrite(self, cache):
        cache.store("k", {"a": np.zeros(2)})
        cache.store("k", {"a": np.ones(3)})
        np.testing.assert_array_equal(cache.load("k")["a"], np.ones(3))
