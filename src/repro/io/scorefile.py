"""Score-set serialization.

Large studies hand score sets between tools (and the paper's authors
worked from exported score files).  The on-disk format here is a plain
``.npz`` bundle with a JSON sidecar-style metadata array — readable with
nothing but numpy, stable across library versions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from ..runtime.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..core.scores import ScoreSet


def save_score_set(score_set: "ScoreSet", path: Path) -> None:
    """Persist a score set as a ``.npz`` bundle."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "scenario": score_set.scenario,
        "matcher_name": score_set.matcher_name,
    }
    np.savez_compressed(
        path,
        scores=score_set.scores,
        subject_gallery=score_set.subject_gallery,
        subject_probe=score_set.subject_probe,
        device_gallery=score_set.device_gallery,
        device_probe=score_set.device_probe,
        nfiq_gallery=score_set.nfiq_gallery,
        nfiq_probe=score_set.nfiq_probe,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_score_set(path: Path) -> "ScoreSet":
    """Load a score set previously written by :func:`save_score_set`."""
    from ..core.scores import ScoreSet  # local import avoids a cycle

    path = Path(path)
    if not path.exists():
        raise ReproError(f"score file {path} does not exist")
    with np.load(path) as bundle:
        try:
            meta = json.loads(bytes(bundle["meta"].tobytes()).decode("utf-8"))
            return ScoreSet(
                scenario=meta["scenario"],
                matcher_name=meta["matcher_name"],
                scores=bundle["scores"],
                subject_gallery=bundle["subject_gallery"],
                subject_probe=bundle["subject_probe"],
                device_gallery=bundle["device_gallery"],
                device_probe=bundle["device_probe"],
                nfiq_gallery=bundle["nfiq_gallery"],
                nfiq_probe=bundle["nfiq_probe"],
            )
        except KeyError as exc:
            raise ReproError(f"score file {path} is missing field {exc}") from exc


__all__ = ["save_score_set", "load_score_set"]
