"""Custom job execution and the signature ablation path."""

import numpy as np
import pytest

from repro import InteroperabilityStudy, StudyConfig
from repro.core.scores import GALLERY_SET, PROBE_SET
from repro.sensors import ProtocolSettings


class TestCustomScores:
    def test_second_finger_scores(self, tiny_study, tiny_config):
        jobs = [
            (s, "D0", GALLERY_SET, s, "D0", PROBE_SET)
            for s in range(tiny_config.n_subjects)
        ]
        index = tiny_study.custom_scores("DMG-custom-idx", jobs)
        middle = tiny_study.custom_scores(
            "DMG-custom-mid", jobs, finger="right_middle"
        )
        assert len(index) == len(middle) == tiny_config.n_subjects
        # Different fingers -> different scores for the same jobs.
        assert not np.array_equal(index.scores, middle.scores)
        # Both are genuine same-device comparisons: high scores.
        assert index.scores.mean() > 10
        assert middle.scores.mean() > 10

    def test_custom_scores_cached_by_label_and_finger(self, tmp_path):
        from repro.runtime import ScoreCache

        config = StudyConfig(n_subjects=3, master_seed=4)
        cache = ScoreCache(tmp_path)
        study = InteroperabilityStudy(config, cache=cache)
        jobs = [(s, "D0", 0, s, "D0", 1) for s in range(3)]
        first = study.custom_scores("DMG-z", jobs)

        fresh = InteroperabilityStudy(config, cache=cache)
        second = fresh.custom_scores("DMG-z", jobs)
        np.testing.assert_array_equal(first.scores, second.scores)
        assert fresh._collection is None  # served from cache


class TestSignatureAblation:
    def test_ablation_collapses_cross_device_penalty(self):
        config = StudyConfig(n_subjects=12, master_seed=31)
        normal = InteroperabilityStudy(config)
        ablated = InteroperabilityStudy(
            config, protocol=ProtocolSettings(disable_device_signatures=True)
        )

        def penalty(study):
            sets = study.score_sets()
            return sets["DMG"].scores.mean() - sets["DDMG"].select(
                sets["DDMG"].device_probe != "D4"
            ).scores.mean()

        penalty_on = penalty(normal)
        penalty_off = penalty(ablated)
        assert penalty_on > 1.0
        assert penalty_off < penalty_on

    def test_protocol_fingerprint_distinguishes_settings(self):
        default = ProtocolSettings().fingerprint()
        ablated = ProtocolSettings(disable_device_signatures=True).fingerprint()
        gated = ProtocolSettings(quality_gating=True).fingerprint()
        assert len({default, ablated, gated}) == 3

    def test_cache_keys_respect_protocol(self, tmp_path):
        from repro.runtime import ScoreCache

        config = StudyConfig(n_subjects=3, master_seed=10)
        cache = ScoreCache(tmp_path)
        normal = InteroperabilityStudy(config, cache=cache)
        normal.score_sets()
        ablated = InteroperabilityStudy(
            config,
            cache=cache,
            protocol=ProtocolSettings(disable_device_signatures=True),
        )
        ablated_sets = ablated.score_sets()
        # Must not have loaded the normal study's cached scores.
        assert not np.array_equal(
            normal.score_sets()["DDMG"].scores, ablated_sets["DDMG"].scores
        )
