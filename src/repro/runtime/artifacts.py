"""Persistent content-addressed artifact store.

Score generation got fast (batched matching, sharded score cache), but
every cold run still paid the full acquisition tax: synthesize the
population, run every subject through all five sensor models, render,
extract, assess quality.  All of that work is a pure function of the
seeds and the pipeline code, so it is cacheable *forever* — not per
process, but on disk, shared by every run, notebook, benchmark and CLI
invocation that asks for the same configuration.

:class:`ArtifactStore` is that cache.  It is **content-addressed**:
entries are keyed by a :func:`canonical_digest` of everything that
determines the artifact's bytes —

* the population seed and the subject's sampled traits,
* the sensor configurations (full device profiles, signature magnitudes),
* the protocol settings (device order, sets, gating, ablations),
* a **code-version salt** (:data:`CODE_SALT`) bumped whenever the
  acquisition pipeline's semantics change, so stale artifacts from an
  older pipeline can never be served.

Entries are grouped into **tiers**, one subdirectory each:

==============  ======================================================
tier            contents
==============  ======================================================
`impressions`   acquired :class:`~repro.sensors.base.Impression` shards
                (one entry per subject session)
`images`        rendered ridge images (the holographic model's output)
`templates`     minutiae templates extracted from rendered images
`quality`       per-impression NFIQ levels and quality feature vectors
==============  ======================================================

Every tier shares the :class:`~repro.runtime.cache.NpzDirectory`
persistence primitive (atomic writes, corruption treated as a miss) and
counts under the ``artifacts.*`` telemetry namespace, so a run manifest
shows exactly how much acquisition work the store absorbed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from .cache import NpzDirectory
from .errors import CacheError

#: Code-version salt folded into every digest.  Bump whenever the
#: acquisition pipeline changes in a way that alters artifact contents
#: (sensor models, protocol semantics, codec layout); existing stores
#: then read as cold instead of serving stale bytes.
CODE_SALT = "repro-artifacts-v1"

#: The artifact tiers, in pipeline order.
TIERS = ("impressions", "images", "templates", "quality")


def _json_default(value):
    """Canonical-JSON fallback: dataclasses, numpy scalars and arrays."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not digestable")


def canonical_digest(payload: object, *, salt: str = CODE_SALT) -> str:
    """Deterministic hex digest of a JSON-able payload.

    The payload is serialized as canonical JSON (sorted keys, no
    whitespace; tuples become lists, dataclasses become dicts, numpy
    scalars become Python numbers) and hashed together with ``salt``.
    Identical payloads digest identically across processes, platforms
    and Python versions; any field change produces a new address.
    """
    data = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    )
    digest = hashlib.blake2b(digest_size=16)
    digest.update(salt.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(data.encode("utf-8"))
    return digest.hexdigest()


class ArtifactStore:
    """A tiered, content-addressed directory of acquisition artifacts.

    Parameters
    ----------
    directory:
        Store root; tier subdirectories are created on first write.
        ``None`` produces a disabled store whose :meth:`load` always
        misses, so callers never branch on whether persistence is
        configured (mirroring :class:`~repro.runtime.cache.ScoreCache`).
    """

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self._root: Optional[Path] = Path(directory) if directory is not None else None
        self._tiers: Dict[str, NpzDirectory] = {
            tier: NpzDirectory(
                self._root / tier if self._root is not None else None,
                metric_prefix="artifacts",
            )
            for tier in TIERS
        }

    @property
    def enabled(self) -> bool:
        """Whether this store persists anything."""
        return self._root is not None

    @property
    def root(self) -> Optional[Path]:
        """The store root (``None`` when disabled)."""
        return self._root

    def _tier(self, tier: str) -> NpzDirectory:
        try:
            return self._tiers[tier]
        except KeyError:
            raise CacheError(
                f"unknown artifact tier {tier!r}; expected one of {TIERS}"
            ) from None

    def store(
        self,
        tier: str,
        digest: str,
        arrays: Dict[str, np.ndarray],
        meta: Optional[dict] = None,
    ) -> None:
        """Persist ``arrays`` under ``digest`` in ``tier`` (atomic write)."""
        self._tier(tier).store(digest, arrays, meta=meta)

    def load(self, tier: str, digest: str) -> Optional[Dict[str, np.ndarray]]:
        """The arrays addressed by ``digest``, or ``None`` on a miss.

        Corrupt or truncated entries are removed and treated as misses
        (counted under ``artifacts.corrupt``): the store is an
        optimization, never a source of truth — a miss just means the
        artifact is rebuilt from its seeds.
        """
        return self._tier(tier).load(digest)

    def load_meta(self, tier: str, digest: str) -> Optional[dict]:
        """The JSON metadata stored alongside ``digest``, if any."""
        return self._tier(tier).load_meta(digest)

    def has(self, tier: str, digest: str) -> bool:
        """Whether ``digest`` exists in ``tier`` (no read, no counters)."""
        directory = self._tier(tier)
        if directory.root is None:
            return False
        return (directory.root / f"{digest}.npz").exists()

    def invalidate(self, tier: str, digest: str) -> bool:
        """Remove one entry; returns whether it existed."""
        return self._tier(tier).invalidate(digest)

    def clear(self, tier: Optional[str] = None) -> int:
        """Remove every entry (of ``tier``, or of all tiers); returns a count."""
        if tier is not None:
            return self._tier(tier).clear()
        return sum(directory.clear() for directory in self._tiers.values())

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier on-disk footprint plus a ``total`` rollup."""
        per_tier = {tier: d.stats() for tier, d in self._tiers.items()}
        per_tier["total"] = {
            "entries": sum(s["entries"] for s in per_tier.values()),
            "bytes": sum(s["bytes"] for s in per_tier.values()),
        }
        return per_tier


__all__ = ["ArtifactStore", "canonical_digest", "CODE_SALT", "TIERS"]
