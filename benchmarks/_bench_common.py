"""Shared helpers for the benchmark suite (kept out of conftest so bench
modules can import them without module-name collisions with the test
suite's conftest)."""

from __future__ import annotations

import os
from pathlib import Path

from repro.api import RunManifest, StudyConfig, TelemetryRecorder

#: Default benchmark population (fast on a laptop, stable statistics).
DEFAULT_BENCH_SUBJECTS = 48

OUTPUT_DIR = Path(__file__).parent / "output"

#: Where the benchmark session's telemetry manifest lands, next to the
#: rendered artifacts (one manifest per bench invocation).
MANIFEST_PATH = OUTPUT_DIR / "bench_manifest.json"


def bench_config(**overrides) -> StudyConfig:
    """The benchmark configuration, honouring the REPRO_* environment."""
    params = dict(
        n_subjects=DEFAULT_BENCH_SUBJECTS,
        n_workers=min(4, os.cpu_count() or 1),
        cache_dir=str(Path(__file__).parent / ".bench_cache"),
    )
    params.update(overrides)
    return StudyConfig.from_environment(**params)


def write_bench_manifest(
    recorder: TelemetryRecorder, config: StudyConfig = None
) -> Path:
    """Persist the bench session's telemetry next to its artifacts.

    Called by the session teardown in ``conftest.py``; every ``bench_*``
    run therefore leaves per-stage span timings, matcher-invocation
    counts and cache statistics in ``benchmarks/output/``.
    """
    manifest = RunManifest.from_recorder(
        recorder, config if config is not None else bench_config()
    )
    return manifest.write(MANIFEST_PATH)
