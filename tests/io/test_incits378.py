"""INCITS 378 codec: round trips and strict decoding."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.incits378 import RecordMetadata, decode, encode
from repro.matcher.types import KIND_BIFURCATION, KIND_ENDING, Minutia, Template
from repro.runtime.errors import TemplateFormatError

minutia_strategy = st.builds(
    Minutia,
    x=st.integers(min_value=0, max_value=2**14 - 1).map(float),
    y=st.integers(min_value=0, max_value=2**14 - 1).map(float),
    angle=st.integers(min_value=0, max_value=255).map(
        lambda u: u * (2 * np.pi / 256)
    ),
    kind=st.sampled_from([KIND_ENDING, KIND_BIFURCATION]),
    quality=st.integers(min_value=0, max_value=100),
)

template_strategy = st.lists(minutia_strategy, min_size=0, max_size=40).map(
    lambda ms: Template(
        minutiae=tuple(ms), width_px=800, height_px=750, resolution_dpi=500
    )
)


class TestRoundTrip:
    @given(template_strategy)
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, template):
        decoded, __ = decode(encode(template))
        assert len(decoded) == len(template)
        assert decoded.width_px == template.width_px
        assert decoded.resolution_dpi == template.resolution_dpi
        for original, restored in zip(template.minutiae, decoded.minutiae):
            assert restored.x == pytest.approx(original.x, abs=0.51)
            assert restored.y == pytest.approx(original.y, abs=0.51)
            assert restored.kind == original.kind
            assert restored.quality == original.quality
            angle_diff = abs(restored.angle - original.angle) % (2 * np.pi)
            assert min(angle_diff, 2 * np.pi - angle_diff) < 2 * np.pi / 256 + 1e-9

    def test_metadata_roundtrip(self, genuine_template_pair):
        template = genuine_template_pair[0]
        metadata = RecordMetadata(
            capture_device_id=3, finger_position=2, finger_quality=77,
            impression_type=0,
        )
        __, restored = decode(encode(template, metadata))
        assert restored.capture_device_id == 3
        assert restored.finger_position == 2
        assert restored.finger_quality == 77

    def test_real_pipeline_template(self, genuine_template_pair):
        template = genuine_template_pair[0]
        decoded, __ = decode(encode(template))
        assert len(decoded) == len(template)


class TestEncodeValidation:
    def test_too_many_minutiae(self):
        minutiae = tuple(
            Minutia(float(i % 100), float(i // 100), 0.0, KIND_ENDING, 50)
            for i in range(256)
        )
        template = Template(minutiae=minutiae, width_px=800, height_px=750)
        with pytest.raises(TemplateFormatError, match="255"):
            encode(template)

    def test_negative_coordinates_rejected(self):
        template = Template(
            minutiae=(Minutia(-5.0, 10.0, 0.0, KIND_ENDING, 50),),
            width_px=800, height_px=750,
        )
        with pytest.raises(TemplateFormatError):
            encode(template)


class TestDecodeStrictness:
    @pytest.fixture()
    def valid_record(self, genuine_template_pair):
        return encode(genuine_template_pair[0])

    def test_truncated_header(self):
        with pytest.raises(TemplateFormatError, match="shorter"):
            decode(b"FMR\x00 20\x00")

    def test_bad_magic(self, valid_record):
        corrupted = b"XXXX" + valid_record[4:]
        with pytest.raises(TemplateFormatError, match="identifier"):
            decode(corrupted)

    def test_bad_version(self, valid_record):
        corrupted = valid_record[:4] + b" 99\x00" + valid_record[8:]
        with pytest.raises(TemplateFormatError, match="version"):
            decode(corrupted)

    def test_wrong_declared_length(self, valid_record):
        wrong = struct.pack(">I", len(valid_record) + 5)
        corrupted = valid_record[:8] + wrong + valid_record[12:]
        with pytest.raises(TemplateFormatError, match="length"):
            decode(corrupted)

    def test_truncated_body(self, valid_record):
        truncated = valid_record[:-4]
        with pytest.raises(TemplateFormatError):
            decode(truncated)

    def test_minutia_count_mismatch(self, valid_record):
        # Bump the declared minutia count without adding bytes.
        header_size = struct.calcsize(">4s4sIIHHHHHBB")
        count_offset = header_size + 3
        original = valid_record[count_offset]
        corrupted = (
            valid_record[:count_offset]
            + bytes([min(original + 1, 255)])
            + valid_record[count_offset + 1 :]
        )
        with pytest.raises(TemplateFormatError, match="imply"):
            decode(corrupted)
