"""Interchange formats: INCITS 378 templates and score files."""

from .incits378 import RecordMetadata, decode, encode
from .scorefile import load_score_set, save_score_set

__all__ = ["encode", "decode", "RecordMetadata", "save_score_set", "load_score_set"]
