"""Local descriptor invariance and similarity."""

import numpy as np
import pytest

from repro.matcher.descriptors import (
    DescriptorSet,
    build_descriptors,
    similarity_matrix,
    wrap_angle,
)
from repro.matcher.types import KIND_ENDING, Minutia, Template


def _template_from(points, angles):
    px_per_mm = 500 / 25.4
    minutiae = tuple(
        Minutia(
            x=float(p[0]) * px_per_mm,
            y=float(p[1]) * px_per_mm,
            angle=float(a) % (2 * np.pi),
            kind=KIND_ENDING,
            quality=60,
        )
        for p, a in zip(points, angles)
    )
    return Template(minutiae=minutiae, width_px=800, height_px=750)


@pytest.fixture()
def cloud():
    rng = np.random.default_rng(0)
    points = rng.uniform(2, 30, size=(20, 2))
    angles = rng.uniform(0, 2 * np.pi, size=20)
    return points, angles


class TestWrapAngle:
    def test_range(self):
        values = wrap_angle(np.array([-7.0, -np.pi, 0.0, np.pi, 7.0]))
        assert np.all(values > -np.pi - 1e-12) and np.all(values <= np.pi + 1e-12)

    def test_identity_in_range(self):
        assert wrap_angle(np.array([0.5]))[0] == pytest.approx(0.5)


class TestBuildDescriptors:
    def test_shape(self, cloud):
        desc = build_descriptors(_template_from(*cloud))
        assert desc.entries.shape == (20, 4, 3)
        assert desc.n == 20

    def test_empty_template(self):
        desc = build_descriptors(Template(minutiae=(), width_px=10, height_px=10))
        assert desc.n == 0

    def test_small_template_pads_with_inf(self):
        t = _template_from([[0, 0], [1, 0]], [0.0, 0.0])
        desc = build_descriptors(t)
        assert np.isinf(desc.entries[0, 1, 0])  # only one neighbour exists

    def test_distances_sorted_nearest_first(self, cloud):
        desc = build_descriptors(_template_from(*cloud))
        dists = desc.entries[:, :, 0]
        finite = np.isfinite(dists)
        for row, mask in zip(dists, finite):
            vals = row[mask]
            assert np.all(np.diff(vals) >= -1e-12)


class TestInvariance:
    def test_self_similarity_is_one(self, cloud):
        desc = build_descriptors(_template_from(*cloud))
        sim = similarity_matrix(desc, desc)
        np.testing.assert_allclose(np.diag(sim), 1.0)

    def test_rigid_motion_invariance(self, cloud):
        points, angles = cloud
        theta = 0.7
        c, s = np.cos(theta), np.sin(theta)
        rot = np.array([[c, -s], [s, c]])
        moved = points @ rot.T + np.array([4.0, -3.0])
        desc_a = build_descriptors(_template_from(points, angles))
        desc_b = build_descriptors(_template_from(moved, angles + theta))
        sim = similarity_matrix(desc_a, desc_b)
        # Each minutia's best match must be itself, with similarity 1.
        np.testing.assert_allclose(np.diag(sim), 1.0, atol=1e-9)

    def test_unrelated_clouds_low_similarity(self):
        rng = np.random.default_rng(1)
        a = _template_from(rng.uniform(0, 30, (20, 2)), rng.uniform(0, 6.28, 20))
        b = _template_from(rng.uniform(0, 30, (20, 2)), rng.uniform(0, 6.28, 20))
        sim = similarity_matrix(build_descriptors(a), build_descriptors(b))
        assert sim.mean() < 0.5

    def test_empty_similarity(self):
        empty = build_descriptors(Template(minutiae=(), width_px=10, height_px=10))
        full = build_descriptors(
            _template_from([[0, 0], [1, 1], [2, 0]], [0, 1, 2])
        )
        assert similarity_matrix(empty, full).shape == (0, 3)
