"""Horizontally sharded serving: a pool of matcher worker processes.

The serving layer's single one-thread matcher executor is the paper's
throughput ceiling in miniature: scoring is embarrassingly parallel
across gallery candidates, yet every ``/identify`` funnels through one
core.  :class:`WorkerPool` removes that ceiling with N supervised
matcher processes, each owning a deterministic slice of the gallery:

* **Stable sharding.**  A record lives on worker
  ``shard_of(identity, n)`` — the BLAKE2b digest of the *identity*
  modulo the pool width — so every device's copy of an identity shares
  a worker, and a restarted pool reassembles the identical layout.
* **Shared-memory base snapshot.**  At startup the parent packs the
  whole gallery (minutia rows + prefilter descriptors) into one
  :class:`~repro.runtime.shm.SharedGalleryStore` block; each worker
  maps it read-only and materializes only its own shard — no pickled
  template payloads at spawn, ever.  Post-startup enrollments and
  deletions travel as a small **delta log**: applied live over the RPC
  pipe, and replayed (shard-filtered) into any respawned worker.
* **Scatter/gather search.**  ``/identify`` fans out to every worker —
  each ranks (exact) or prefilters (two-stage) its shard locally — and
  the parent reduces with the same ``(-score, key)`` /
  ``(distance, key)`` comparators the in-process path uses, so sharded
  results are bit-identical to single-process results, tie-breaks
  included.  Batched ``/verify`` routes each pair job to the owning
  worker's private :class:`~repro.service.batching.MicroBatcher` queue.
* **Supervision.**  A worker that crashes or stalls past the RPC
  timeout is terminated and respawned (base snapshot + replayed
  deltas), and the interrupted message is simply re-sent — requeue by
  construction.  A :class:`~repro.runtime.supervisor.RestartBudget`
  bounds the tolerance: exhaustion degrades the pool, and the server
  falls back to the in-process path (the bit-identical control arm
  that ``REPRO_SERVE_WORKERS=0/1`` selects permanently).
* **Chaos hooks.**  Worker-side ops run through
  :func:`repro.runtime.faults.perturb` under keys
  ``serve-w{id}-{op}-{seq:04d}``, so a ``REPRO_FAULTS`` plan can crash
  or stall one worker mid-``/identify`` and a test can assert the
  answer never changes.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import connection, get_all_start_methods, get_context
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.prefilter import (
    PrefilterCandidate,
    PrefilterIndex,
    merge_shard_candidates,
)
from ..runtime import faults
from ..runtime.config import env_float, env_int
from ..runtime.errors import ConfigurationError, TransientError
from ..runtime.shm import (
    GalleryStoreHandle,
    SharedGalleryStore,
    SharedGalleryView,
)
from ..runtime.supervisor import RestartBudget
from ..runtime.telemetry import get_logger
from .batching import BatchingConfig, MicroBatcher
from .gallery import UnknownIdentityError
from .stats import ServiceStats

_log = get_logger("service.workers")


class WorkerBrokenError(TransientError):
    """One worker's RPC failed (crash, stall, or torn pipe); retryable."""


class WorkerPoolDegradedError(TransientError):
    """The pool exhausted its respawn budget; serve in-process instead."""


def shard_of(identity: str, n_workers: int) -> int:
    """The worker owning ``identity``: stable BLAKE2b hash mod pool width.

    Keyed on the identity alone — not the device — so every device's
    enrollment of one identity shares a worker, and independent of
    process seeds or dict order so restarts preserve ownership.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    digest = hashlib.blake2b(identity.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_workers


@dataclass(frozen=True)
class WorkerPoolConfig:
    """Sharded-pool knobs (all overridable via ``REPRO_SERVE_*``).

    Attributes
    ----------
    workers:
        Pool width (``REPRO_SERVE_WORKERS``).  0 or 1 keeps the
        in-process path — the bit-identical control arm.
    rpc_timeout_s:
        Seconds one worker RPC may take before the worker is declared
        stalled and respawned (``REPRO_SERVE_WORKER_TIMEOUT_S``).
    respawn_budget:
        Respawns tolerated before the pool degrades to in-process
        serving (``REPRO_SERVE_WORKER_RESPAWNS``).
    """

    workers: int = 0
    rpc_timeout_s: float = 60.0
    respawn_budget: int = 3

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {self.workers}")
        if self.rpc_timeout_s <= 0:
            raise ConfigurationError(
                f"rpc_timeout_s must be > 0, got {self.rpc_timeout_s}"
            )
        if self.respawn_budget < 1:
            raise ConfigurationError(
                f"respawn_budget must be >= 1, got {self.respawn_budget}"
            )

    @classmethod
    def from_environment(cls, **defaults: object) -> "WorkerPoolConfig":
        """Build a config; ``REPRO_SERVE_*`` variables win over defaults."""
        params: dict = dict(defaults)
        workers = env_int("REPRO_SERVE_WORKERS")
        if workers is not None:
            params["workers"] = workers
        timeout = env_float("REPRO_SERVE_WORKER_TIMEOUT_S")
        if timeout is not None:
            params["rpc_timeout_s"] = timeout
        respawns = env_int("REPRO_SERVE_WORKER_RESPAWNS")
        if respawns is not None:
            params["respawn_budget"] = respawns
        return cls(**params)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerShard:
    """One worker's slice of the gallery: templates + prefilter indexes.

    The base snapshot comes from the shared block (templates rebuilt
    lazily, descriptors zero-copy); deltas layer enrollments and
    deletions on top.  Key conventions mirror
    :meth:`~repro.service.gallery.GalleryIndex.candidates`: bare
    identities within one device scope, ``device/identity`` across
    devices.
    """

    def __init__(
        self,
        view: SharedGalleryView,
        worker_id: int,
        n_workers: int,
    ) -> None:
        self._view = view
        self._worker_id = worker_id
        self._n_workers = n_workers
        self._templates: Dict[Tuple[str, str], object] = {}
        self._indexes: Dict[str, PrefilterIndex] = {}
        self._owned: set = set()
        for device, identity in view.keys():
            if shard_of(identity, n_workers) != worker_id:
                continue
            self._owned.add((device, identity))
            index = self._indexes.get(device)
            if index is None:
                index = PrefilterIndex()
                self._indexes[device] = index
            index.add(identity, view.descriptor(device, identity))

    def __len__(self) -> int:
        return len(self._owned)

    def apply_enroll(self, device, identity, template, descriptor) -> None:
        index = self._indexes.get(device)
        if index is None:
            index = PrefilterIndex()
            self._indexes[device] = index
        if identity in index:
            index.remove(identity)
        index.add(identity, np.asarray(descriptor, dtype=np.float64))
        self._templates[(device, identity)] = template
        self._owned.add((device, identity))

    def apply_delete(self, device, identity) -> None:
        self._owned.discard((device, identity))
        self._templates.pop((device, identity), None)
        index = self._indexes.get(device)
        if index is not None and identity in index:
            index.remove(identity)

    def template(self, device: str, identity: str):
        """The owned template, or :class:`UnknownIdentityError`."""
        if (device, identity) not in self._owned:
            raise UnknownIdentityError(identity, device)
        cached = self._templates.get((device, identity))
        if cached is not None:
            return cached
        return self._view.template(device, identity)

    def scope(self, device: Optional[str]) -> List[Tuple[str, str, str]]:
        """Sorted ``(key, device, identity)`` of owned records in scope."""
        if device is not None:
            return sorted(
                (identity, dev, identity)
                for dev, identity in self._owned
                if dev == device
            )
        return sorted(
            (f"{dev}/{identity}", dev, identity)
            for dev, identity in self._owned
        )

    def prefilter(
        self, vector: np.ndarray, device: Optional[str], k: int
    ) -> Tuple[int, List[Tuple[str, float, int]]]:
        """Local coarse top-K over the shard, exactly as the parent would."""
        if device is not None:
            scope_size = sum(1 for dev, _ in self._owned if dev == device)
            index = self._indexes.get(device)
            local = index.top_k(vector, k) if index is not None else []
            return scope_size, [(c.key, c.distance, c.rank) for c in local]
        shards = []
        for dev in sorted(self._indexes):
            local = self._indexes[dev].top_k(vector, k)
            shards.append([
                PrefilterCandidate(
                    key=f"{dev}/{c.key}", distance=c.distance, rank=c.rank
                )
                for c in local
            ])
        merged = merge_shard_candidates(shards, k)
        return len(self._owned), [
            (c.key, c.distance, c.rank) for c in merged
        ]


def _worker_main(
    worker_id: int,
    n_workers: int,
    conn: "connection.Connection",
    handle: GalleryStoreHandle,
    matcher_factory,
    deltas: Sequence[tuple],
) -> None:
    """Worker process body: map the shard, then answer RPCs until EOF."""
    # The parent owns Ctrl-C shutdown; a worker must only exit when its
    # pipe closes (or it is told to stop), never from a forwarded SIGINT.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    view = SharedGalleryView.attach(handle)
    shard = _WorkerShard(view, worker_id, n_workers)
    for delta in deltas:
        if delta[0] == "enroll":
            shard.apply_enroll(delta[1], delta[2], delta[3], delta[4])
        elif delta[0] == "delete":
            shard.apply_delete(delta[1], delta[2])
    matcher = matcher_factory()
    chaos = faults.faults_requested()
    seq = 0

    def _perturb(op: str) -> None:
        nonlocal seq
        if chaos:
            faults.perturb(f"serve-w{worker_id}-{op}-{seq:04d}")
        seq += 1

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        try:
            op = msg[0]
            if op == "ping":
                reply = ("ok", {"worker": worker_id, "owned": len(shard)})
            elif op == "stop":
                try:
                    conn.send(("ok", None))
                except (BrokenPipeError, OSError):
                    pass
                break
            elif op == "enroll":
                _, device, identity, template, descriptor = msg
                shard.apply_enroll(device, identity, template, descriptor)
                reply = ("ok", len(shard))
            elif op == "delete":
                _, device, identity = msg
                shard.apply_delete(device, identity)
                reply = ("ok", len(shard))
            elif op == "score":
                _, probes, jobs = msg
                _perturb("score")
                pairs = [
                    (probes[probe_idx], shard.template(device, identity))
                    for probe_idx, device, identity in jobs
                ]
                scores = matcher.score_pairs(pairs)
                reply = ("ok", [float(s) for s in scores])
            elif op == "rank":
                _, probe, device, limit = msg
                _perturb("rank")
                scope = shard.scope(device)
                galleries = [
                    shard.template(dev, identity)
                    for _, dev, identity in scope
                ]
                scores = (
                    matcher.match_one_to_many(probe, galleries)
                    if galleries
                    else []
                )
                ranked = sorted(
                    zip((key for key, _, _ in scope), scores),
                    key=lambda item: (-item[1], item[0]),
                )[: max(0, limit)]
                reply = (
                    "ok",
                    (len(scope), [(key, float(s)) for key, s in ranked]),
                )
            elif op == "prefilter":
                _, vector, device, k = msg
                _perturb("prefilter")
                reply = ("ok", shard.prefilter(vector, device, k))
            else:
                reply = ("err", "internal", f"unknown op {op!r}")
        except UnknownIdentityError as exc:
            reply = ("err", "unknown_identity", (exc.device, exc.identity))
        except TransientError as exc:
            reply = ("err", "transient", str(exc))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            reply = ("err", "internal", repr(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    view.close()


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """Parent-side state of one live worker process."""

    __slots__ = ("worker_id", "process", "conn", "lock", "generation")

    def __init__(self, worker_id, process, conn, generation) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        # One RPC at a time per worker pipe: send and recv must pair up.
        self.lock = threading.Lock()
        self.generation = generation


class _ShardClient:
    """Matcher-shaped proxy that forwards pair scoring to one worker.

    Fed to that worker's :class:`MicroBatcher`, so batched ``/verify``
    and two-stage rescoring reuse all the coalescing machinery — the
    "matcher call" is an RPC whose gallery sides are (device, identity)
    references resolved inside the owning worker.
    """

    def __init__(self, pool: "WorkerPool", worker_id: int) -> None:
        self._pool = pool
        self._worker_id = worker_id

    def score_pairs(self, pairs) -> List[float]:
        probes: List[object] = []
        probe_ids: Dict[int, int] = {}
        jobs = []
        for probe, ref in pairs:
            probe_idx = probe_ids.get(id(probe))
            if probe_idx is None:
                probe_idx = len(probes)
                probe_ids[id(probe)] = probe_idx
                probes.append(probe)
            jobs.append((probe_idx, ref[0], ref[1]))
        return self._pool._dispatch(
            self._worker_id, ("score", probes, jobs), jobs=len(jobs)
        )

    def match(self, probe, ref) -> float:
        """The unbatched arm: one pair, one RPC."""
        return self.score_pairs([(probe, ref)])[0]


class WorkerPool:
    """A supervised, sharded pool of matcher worker processes.

    Owns the shared-memory gallery snapshot, the worker processes and
    their pipes, one :class:`MicroBatcher` per worker (shared batch-id
    sequence), and the delta log that keeps respawned workers current.
    All public entry points are coroutines awaited from the serving
    event loop; the blocking pipe RPCs run on a private thread pool.

    Raises :class:`WorkerPoolDegradedError` from any dispatch once the
    respawn budget is exhausted — the server's cue to fall back to its
    in-process path.
    """

    def __init__(
        self,
        gallery,
        matcher_factory,
        stats: Optional[ServiceStats] = None,
        config: Optional[WorkerPoolConfig] = None,
        batching: Optional[BatchingConfig] = None,
    ) -> None:
        self._gallery = gallery
        self._matcher_factory = matcher_factory
        self._stats = stats if stats is not None else ServiceStats()
        self._config = (
            config if config is not None else WorkerPoolConfig.from_environment()
        )
        if self._config.workers < 2:
            raise ConfigurationError(
                f"a worker pool needs >= 2 workers, got {self._config.workers}"
            )
        self._batching = (
            batching if batching is not None else BatchingConfig.from_environment()
        )
        methods = get_all_start_methods()
        self._ctx = get_context("fork" if "fork" in methods else None)
        self._handles: List[Optional[_WorkerHandle]] = []
        self._batchers: List[MicroBatcher] = []
        self._store: Optional[SharedGalleryStore] = None
        # The delta log mirrors the gallery WAL: one latest op per
        # (device, identity), tagged with its WAL LSN.  Per-key ops are
        # last-write-wins and cross-key ops commute, so retaining only
        # the newest op per key is lossless — the log stays bounded by
        # the gallery size instead of growing with write traffic.
        self._deltas: Dict[Tuple[str, str], tuple] = {}
        self._lock = threading.Lock()
        self._budget = RestartBudget(self._config.respawn_budget)
        self._degraded = False
        self._fanout: Optional[ThreadPoolExecutor] = None
        self._seq_lock = threading.Lock()
        self._batch_seq = 0

    # -- shared batch ids across the per-worker batchers ----------------
    def _next_batch_id(self) -> int:
        with self._seq_lock:
            self._batch_seq += 1
            return self._batch_seq

    @property
    def workers(self) -> int:
        return self._config.workers

    @property
    def degraded(self) -> bool:
        return self._degraded

    @property
    def alive_count(self) -> int:
        if self._degraded:
            return 0
        return sum(
            1
            for handle in self._handles
            if handle is not None and handle.process.is_alive()
        )

    @property
    def queue_depth(self) -> int:
        return sum(b.queue_depth for b in self._batchers)

    @property
    def delta_count(self) -> int:
        """Live entries in the compacted respawn delta log."""
        with self._lock:
            return len(self._deltas)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int, generation: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        deltas = [
            d
            for (_device, identity), d in self._deltas.items()
            if shard_of(identity, self._config.workers) == worker_id
        ]
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                self._config.workers,
                child_conn,
                self._store.handle(),
                self._matcher_factory,
                deltas,
            ),
            name=f"repro-serve-w{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(worker_id, process, parent_conn, generation)

    async def start(self) -> None:
        """Pack the gallery snapshot, spawn the pool, start the batchers."""
        if faults.faults_requested():
            faults.ensure_ledger()
        self._store = SharedGalleryStore.pack_gallery(self._gallery.records())
        loop = asyncio.get_running_loop()
        self._fanout = ThreadPoolExecutor(
            max_workers=self._config.workers,
            thread_name_prefix="repro-pool-rpc",
        )
        self._handles = [
            self._spawn(i, generation=0) for i in range(self._config.workers)
        ]
        pings = await asyncio.gather(*[
            loop.run_in_executor(self._fanout, self._rpc, i, ("ping",))
            for i in range(self._config.workers)
        ])
        for ping in pings:
            self._stats.set_worker_shard(ping["worker"], ping["owned"])
        for worker_id in range(self._config.workers):
            batcher = MicroBatcher(
                _ShardClient(self, worker_id),
                stats=self._stats,
                config=self._batching,
                name=f"w{worker_id}",
                sequence=self._next_batch_id,
            )
            await batcher.start()
            self._batchers.append(batcher)
        self._stats.configure_workers(self._config.workers, self.alive_count)
        _log.info(
            "worker pool started",
            extra={"data": {
                "workers": self._config.workers,
                "records": len(self._store.handle().index),
                "shards": {p["worker"]: p["owned"] for p in pings},
            }},
        )

    async def stop(self) -> None:
        """Stop the batchers, retire the workers, unlink the snapshot."""
        for batcher in self._batchers:
            await batcher.stop()
        self._batchers = []
        with self._lock:
            handles, self._handles = self._handles, []
        for handle in handles:
            if handle is None:
                continue
            try:
                with handle.lock:
                    handle.conn.send(("stop",))
                    handle.conn.poll(1.0)
            except (BrokenPipeError, OSError):
                pass
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.conn.close()
        if self._fanout is not None:
            self._fanout.shutdown(wait=True)
            self._fanout = None
        if self._store is not None:
            # Unlink the /dev/shm block: leaked segments across restarts
            # are exactly the failure the teardown tests assert against.
            self._store.destroy()
            self._store = None
        if not self._degraded:
            self._stats.set_worker_alive(0)

    # ------------------------------------------------------------------
    # RPC core: retry-on-break, respawn, degrade
    # ------------------------------------------------------------------
    def _rpc_once(self, handle: _WorkerHandle, msg: tuple):
        try:
            with handle.lock:
                handle.conn.send(msg)
                if not handle.conn.poll(self._config.rpc_timeout_s):
                    raise WorkerBrokenError(
                        f"worker {handle.worker_id} stalled past "
                        f"{self._config.rpc_timeout_s:g}s on {msg[0]!r}"
                    )
                reply = handle.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise WorkerBrokenError(
                f"worker {handle.worker_id} pipe failed on {msg[0]!r}: {exc!r}"
            ) from None
        if reply[0] == "ok":
            return reply[1]
        code, detail = reply[1], reply[2]
        if code == "unknown_identity":
            device, identity = detail
            raise UnknownIdentityError(identity, device)
        if code == "transient":
            raise TransientError(detail)
        raise WorkerBrokenError(
            f"worker {handle.worker_id} internal failure: {detail}"
        )

    def _rpc(self, worker_id: int, msg: tuple):
        """Send one message; on worker breakage, respawn and re-send.

        The in-flight message *is* the queue entry — re-sending it to
        the respawned worker is the requeue.  Loops until the reply
        arrives or the pool degrades.
        """
        while True:
            if self._degraded:
                raise WorkerPoolDegradedError("worker pool is degraded")
            with self._lock:
                handle = self._handles[worker_id] if self._handles else None
            if handle is None:
                raise WorkerPoolDegradedError("worker pool is stopped")
            try:
                return self._rpc_once(handle, msg)
            except WorkerBrokenError as exc:
                self._note_break(handle, exc)

    def _dispatch(self, worker_id: int, msg: tuple, jobs: int = 1):
        """An accounted RPC: tallies the per-worker dispatch counters."""
        result = self._rpc(worker_id, msg)
        self._stats.record_worker_dispatch(worker_id, jobs)
        return result

    def _note_break(self, broken: _WorkerHandle, exc: WorkerBrokenError) -> None:
        """Handle one observed breakage: respawn the worker or degrade."""
        with self._lock:
            if self._degraded:
                raise WorkerPoolDegradedError("worker pool is degraded")
            if not self._handles:
                raise WorkerPoolDegradedError("worker pool is stopped")
            current = self._handles[broken.worker_id]
            if current is not broken:
                return  # another thread already respawned this worker
            _log.warning(
                "serving worker broke",
                extra={"data": {
                    "worker": broken.worker_id,
                    "error": str(exc),
                    "respawns_used": self._budget.restarts + 1,
                }},
            )
            broken.process.terminate()
            broken.process.join(timeout=2.0)
            broken.conn.close()
            if self._budget.note_restart():
                self._degraded = True
                self._stats.set_worker_degraded()
                for handle in self._handles:
                    if handle is not None and handle is not broken:
                        handle.process.terminate()
                _log.error(
                    "worker pool degraded to in-process serving",
                    extra={"data": {"respawns": self._budget.restarts}},
                )
                raise WorkerPoolDegradedError(
                    f"worker pool degraded after {self._budget.restarts} "
                    f"respawns"
                )
            replacement = self._spawn(
                broken.worker_id, generation=broken.generation + 1
            )
            self._handles[broken.worker_id] = replacement
            self._stats.record_worker_respawn(broken.worker_id)
        self._stats.set_worker_alive(self.alive_count)

    # ------------------------------------------------------------------
    # Serving entry points
    # ------------------------------------------------------------------
    def _resolve(self, device: Optional[str], key: str) -> Tuple[str, str]:
        """(device, identity) of one candidate key, parent-side."""
        if device is not None:
            return device, key
        dev, _, identity = key.partition("/")
        return dev, identity

    async def score_keyed(
        self,
        probe,
        device: Optional[str],
        keys: Sequence[str],
        timeout_s: Optional[float] = None,
    ) -> np.ndarray:
        """Scores of ``probe`` against candidate ``keys``, in input order.

        Each pair job rides the owning worker's micro-batch queue, so
        concurrent requests coalesce per worker exactly as the
        in-process path coalesces globally.
        """
        if not keys:
            return np.empty(0, dtype=np.float64)
        per_worker: Dict[int, List[Tuple[int, Tuple[str, str]]]] = {}
        for position, key in enumerate(keys):
            dev, identity = self._resolve(device, key)
            worker_id = shard_of(identity, self._config.workers)
            per_worker.setdefault(worker_id, []).append(
                (position, (dev, identity))
            )
        ordered = sorted(per_worker)
        results = await asyncio.gather(*[
            self._batchers[worker_id].score(
                [(probe, ref) for _, ref in per_worker[worker_id]],
                timeout_s=timeout_s,
            )
            for worker_id in ordered
        ])
        scores = np.empty(len(keys), dtype=np.float64)
        for worker_id, worker_scores in zip(ordered, results):
            for (position, _), score in zip(per_worker[worker_id], worker_scores):
                scores[position] = score
        return scores

    async def rank(
        self, probe, device: Optional[str], limit: int
    ) -> Tuple[int, List[Tuple[str, float]]]:
        """Exact 1:N: every worker ranks its shard, the parent merges.

        Returns ``(gallery_size, ranked)`` where ``ranked`` is the
        global top-``limit`` as ``(key, score)``, ordered by
        ``(-score, key)`` — the in-process comparator, so tie-breaks
        are bit-identical.  Exactness of local truncation: any global
        top-``limit`` candidate is in its own shard's top-``limit``
        under the same total order.
        """
        loop = asyncio.get_running_loop()
        replies = await asyncio.gather(*[
            loop.run_in_executor(
                self._fanout,
                self._dispatch,
                worker_id,
                ("rank", probe, device, limit),
            )
            for worker_id in range(self._config.workers)
        ])
        gallery_size = sum(scope for scope, _ in replies)
        pooled = [pair for _, ranked in replies for pair in ranked]
        merged = sorted(pooled, key=lambda item: (-item[1], item[0]))[
            : max(0, limit)
        ]
        return gallery_size, merged

    async def prefilter(
        self, vector: np.ndarray, device: Optional[str], k: int
    ) -> Tuple[int, List[PrefilterCandidate]]:
        """Two-stage coarse top-K across all shards, exactly merged."""
        loop = asyncio.get_running_loop()
        replies = await asyncio.gather(*[
            loop.run_in_executor(
                self._fanout,
                self._dispatch,
                worker_id,
                ("prefilter", vector, device, k),
            )
            for worker_id in range(self._config.workers)
        ])
        gallery_size = sum(scope for scope, _ in replies)
        shards = [
            [
                PrefilterCandidate(key=key, distance=distance, rank=rank)
                for key, distance, rank in ranked
            ]
            for _, ranked in replies
        ]
        return gallery_size, merge_shard_candidates(shards, k)

    async def apply_enroll(
        self, device: str, identity: str, template, descriptor,
        lsn: int = 0,
    ) -> None:
        """Propagate one enrollment to its owner (and the delta log).

        ``lsn`` is the WAL sequence number that durably logged the op
        (0 when no log is involved); it tags the delta for
        observability and keeps the pool's log aligned with the WAL.
        """
        worker_id = shard_of(identity, self._config.workers)
        with self._lock:
            if self._degraded:
                return
            # Logged before the RPC: a worker that crashes mid-apply is
            # respawned *with* this delta, so the retry cannot lose it.
            self._deltas[(device, identity)] = (
                "enroll", device, identity, template, descriptor, int(lsn)
            )
        loop = asyncio.get_running_loop()
        try:
            owned = await loop.run_in_executor(
                self._fanout,
                self._rpc,
                worker_id,
                ("enroll", device, identity, template, descriptor),
            )
        except WorkerPoolDegradedError:
            return
        self._stats.set_worker_shard(worker_id, int(owned))

    async def apply_delete(
        self, device: str, identity: str, lsn: int = 0
    ) -> None:
        """Propagate one deletion to its owner (and the delta log)."""
        worker_id = shard_of(identity, self._config.workers)
        with self._lock:
            if self._degraded:
                return
            self._deltas[(device, identity)] = (
                "delete", device, identity, int(lsn)
            )
        loop = asyncio.get_running_loop()
        try:
            owned = await loop.run_in_executor(
                self._fanout, self._rpc, worker_id, ("delete", device, identity)
            )
        except WorkerPoolDegradedError:
            return
        self._stats.set_worker_shard(worker_id, int(owned))


__all__ = [
    "WorkerPool",
    "WorkerPoolConfig",
    "WorkerBrokenError",
    "WorkerPoolDegradedError",
    "shard_of",
]
