"""X8 — identification across devices (the US-VISIT framing).

The paper's gallery/probe vocabulary is identification vocabulary; this
benchmark measures what interoperability does to *rank-1 identification*
rather than verification FNMR: gallery enrolled on the Guardian R2,
probes from each device, CMC per probe source.
"""

import numpy as np

from repro.api import cross_device_cmc, DEVICE_ORDER

GALLERY_DEVICE = "D0"
MAX_SUBJECTS = 30  # 1:N is O(N^2) matcher calls per probe device


def _identification_margins(study, probe_device: str, n: int):
    """Per-probe margin: true-identity score minus best non-match score.

    Rank-1 rates saturate at moderate gallery sizes (identification is
    genuinely easy when genuine and impostor scores barely overlap); the
    margin is the continuous robustness measure that does not.
    """
    from repro.api import rank_candidates

    collection = study.collection()
    matcher = study.matcher()
    gallery = {
        f"subject-{sid}": collection.get(sid, study.finger, GALLERY_DEVICE, 0).template
        for sid in range(n)
    }
    margins = []
    for sid in range(n):
        probe = collection.get(sid, study.finger, probe_device, 1).template
        candidates = rank_candidates(matcher, probe, gallery)
        true_score = next(
            c.score for c in candidates if c.identity == f"subject-{sid}"
        )
        best_other = max(
            (c.score for c in candidates if c.identity != f"subject-{sid}"),
            default=0.0,
        )
        margins.append(true_score - best_other)
    return np.array(margins)


def test_ext_cross_device_identification(benchmark, study, record_artifact):
    n = min(MAX_SUBJECTS, study.config.n_subjects)

    def identify_all():
        curves = {
            probe_device: cross_device_cmc(
                study, GALLERY_DEVICE, probe_device, max_rank=5, n_subjects=n
            )
            for probe_device in DEVICE_ORDER
        }
        margins = {
            probe_device: _identification_margins(study, probe_device, n)
            for probe_device in DEVICE_ORDER
        }
        return curves, margins

    curves, margins = benchmark.pedantic(identify_all, rounds=1, iterations=1)

    lines = [
        f"X8: 1:N identification, gallery={GALLERY_DEVICE} ({n} identities)",
        f"  {'probe device':<14}{'rank-1':>8}{'rank-5':>8}{'margin':>9}",
    ]
    for probe_device in DEVICE_ORDER:
        curve = curves[probe_device]
        lines.append(
            f"  {probe_device:<14}{curve.rank1:>8.3f}{curve.rate_at(5):>8.3f}"
            f"{margins[probe_device].mean():>9.2f}"
        )
    text = "\n".join(lines)
    record_artifact(text)
    print("\n" + text)

    # Native probes identify essentially perfectly...
    assert curves[GALLERY_DEVICE].rank1 >= 0.9
    # ...and the identification margin shrinks across devices, most for ink.
    mean_margin = {d: float(margins[d].mean()) for d in DEVICE_ORDER}
    assert min(mean_margin, key=mean_margin.get) == "D4"
    assert mean_margin[GALLERY_DEVICE] == max(mean_margin.values())
    # Rank-5 recovers part of what rank-1 loses.
    for device in DEVICE_ORDER:
        assert curves[device].rate_at(5) >= curves[device].rank1
