"""Minutiae matching engines (Identix BioEngine substitute + a diverse peer)."""

from .alignment import RigidTransform, candidate_pairs, estimate_alignment
from .descriptors import DescriptorSet, build_descriptors, similarity_matrix, wrap_angle
from .engine import BioEngineMatcher, MatchResult
from .pairing import ANGLE_TOL_RAD, POSITION_TOL_MM, PairingResult, pair_minutiae
from .ridgecount import RidgeGeometryMatcher
from .scoring import (
    MIN_PAIRS_FOR_IDENTITY,
    MIN_TEMPLATE_MINUTIAE,
    SCORE_SCALE,
    ScoreBreakdown,
    compute_score,
)
from .types import (
    KIND_BIFURCATION,
    KIND_ENDING,
    Minutia,
    Template,
    template_from_arrays,
)


def build_matcher(name: str):
    """Instantiate a matcher engine by registry name."""
    if name == BioEngineMatcher.name:
        return BioEngineMatcher()
    if name == RidgeGeometryMatcher.name:
        return RidgeGeometryMatcher()
    raise ValueError(f"unknown matcher {name!r}")


__all__ = [
    "BioEngineMatcher",
    "RidgeGeometryMatcher",
    "MatchResult",
    "build_matcher",
    "RigidTransform",
    "candidate_pairs",
    "estimate_alignment",
    "DescriptorSet",
    "build_descriptors",
    "similarity_matrix",
    "wrap_angle",
    "PairingResult",
    "pair_minutiae",
    "POSITION_TOL_MM",
    "ANGLE_TOL_RAD",
    "ScoreBreakdown",
    "compute_score",
    "SCORE_SCALE",
    "MIN_PAIRS_FOR_IDENTITY",
    "MIN_TEMPLATE_MINUTIAE",
    "Minutia",
    "Template",
    "template_from_arrays",
    "KIND_ENDING",
    "KIND_BIFURCATION",
]
