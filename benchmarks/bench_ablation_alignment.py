"""Ablation 2 — alignment consensus: hypothesis count vs robustness.

The matcher verifies the top-2 Hough cells because the strongest cell
occasionally belongs to a spurious ridge self-similarity.  This ablation
quantifies the tradeoff: single-hypothesis matching is faster but loses
genuine pairs to misalignment (a fatter low tail), while the second
hypothesis must NOT raise impostor scores.
"""

import numpy as np

from repro.api import (
    build_descriptors,
    candidate_pairs,
    compute_score,
    estimate_alignments,
    pair_minutiae,
    similarity_matrix,
)

N_PAIRS = 40


def _match_with_hypotheses(probe, gallery, max_hypotheses: int) -> float:
    desc_p = build_descriptors(probe)
    desc_g = build_descriptors(gallery)
    candidates = candidate_pairs(similarity_matrix(desc_p, desc_g))
    transforms = estimate_alignments(
        probe.positions_mm(), probe.angles(),
        gallery.positions_mm(), gallery.angles(),
        candidates, max_hypotheses=max_hypotheses,
    )
    best = 0.0
    for transform in transforms:
        pairing = pair_minutiae(
            probe.positions_mm(), probe.angles(),
            gallery.positions_mm(), gallery.angles(), transform,
        )
        breakdown = compute_score(pairing, probe.qualities(), gallery.qualities())
        best = max(best, breakdown.score)
    return best


def test_ablation_alignment_hypotheses(benchmark, study, record_artifact):
    collection = study.collection()
    n = min(N_PAIRS, study.config.n_subjects)
    genuine_pairs = [
        (
            collection.get(sid, "right_index", "D1", 1).template,
            collection.get(sid, "right_index", "D0", 0).template,
        )
        for sid in range(n)
    ]
    impostor_pairs = [
        (
            collection.get((sid + 1) % n, "right_index", "D1", 1).template,
            collection.get(sid, "right_index", "D0", 0).template,
        )
        for sid in range(n)
    ]

    def match_all(max_hypotheses: int):
        gen = [
            _match_with_hypotheses(p, g, max_hypotheses) for p, g in genuine_pairs
        ]
        imp = [
            _match_with_hypotheses(p, g, max_hypotheses) for p, g in impostor_pairs
        ]
        return np.array(gen), np.array(imp)

    gen2, imp2 = benchmark(match_all, 2)
    gen1, imp1 = match_all(1)

    text = "\n".join(
        [
            "Ablation: alignment hypothesis count (cross-device D0 -> D1)",
            f"  {'hypotheses':<12}{'genuine mean':>14}{'genuine<7':>11}"
            f"{'impostor max':>14}",
            f"  {'1':<12}{gen1.mean():>14.2f}{np.mean(gen1 < 7):>11.3f}"
            f"{imp1.max():>14.2f}",
            f"  {'2':<12}{gen2.mean():>14.2f}{np.mean(gen2 < 7):>11.3f}"
            f"{imp2.max():>14.2f}",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    # Hypothesis verification never hurts genuine scores...
    assert gen2.mean() >= gen1.mean() - 1e-9
    # ...and barely moves impostor scores (both engines only keep the max).
    assert imp2.max() <= imp1.max() + 1.5
