"""Persistent gallery index: quality gate, CRUD, restart recovery."""

import numpy as np
import pytest

from repro.matcher.types import template_from_arrays
from repro.runtime.errors import ConfigurationError
from repro.service.gallery import (
    DEFAULT_MAX_NFIQ_LEVEL,
    EnrollmentRejected,
    GalleryIndex,
    GalleryRecord,
    UnknownIdentityError,
)

FINGER = "right_index"


def _low_quality_template():
    """Four low-confidence minutiae huddled in a corner: NFIQ level 5."""
    return template_from_arrays(
        positions_px=[[10.0, 10.0], [14.0, 12.0], [11.0, 16.0], [15.0, 15.0]],
        angles=[0.1, 1.0, 2.0, 3.0],
        kinds=[1, 2, 1, 2],
        qualities=[10, 12, 9, 11],
        width_px=300,
        height_px=400,
    )


@pytest.fixture()
def gallery(tmp_path):
    return GalleryIndex(tmp_path / "gallery")


class TestEnroll:
    def test_enroll_and_get(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        record = gallery.enroll("subject-0", template, device="D0")
        assert isinstance(record, GalleryRecord)
        assert record.identity == "subject-0"
        assert record.device == "D0"
        assert 1 <= record.nfiq_level <= DEFAULT_MAX_NFIQ_LEVEL
        assert 0.0 < record.nfiq_utility <= 1.0
        assert gallery.get("subject-0", device="D0").template == template
        assert ("D0", "subject-0") in gallery
        assert len(gallery) == 1

    def test_reenroll_replaces(self, gallery, tiny_collection):
        first = tiny_collection.get(0, FINGER, "D0", 0).template
        second = tiny_collection.get(0, FINGER, "D0", 1).template
        gallery.enroll("subject-0", first, device="D0")
        gallery.enroll("subject-0", second, device="D0")
        assert len(gallery) == 1
        assert gallery.get("subject-0", device="D0").template == second

    def test_quality_gate_rejects_level_5(self, gallery):
        with pytest.raises(EnrollmentRejected) as excinfo:
            gallery.enroll("mushy", _low_quality_template())
        assert excinfo.value.identity == "mushy"
        assert excinfo.value.level == 5
        assert excinfo.value.max_level == DEFAULT_MAX_NFIQ_LEVEL
        assert len(gallery) == 0

    def test_permissive_ceiling_admits_level_5(self, tmp_path):
        lax = GalleryIndex(tmp_path / "lax", max_nfiq_level=5)
        record = lax.enroll("mushy", _low_quality_template())
        assert record.nfiq_level == 5

    def test_invalid_names_rejected(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        with pytest.raises(ConfigurationError):
            gallery.enroll("no spaces", template)
        with pytest.raises(ConfigurationError):
            gallery.enroll("fine", template, device="../escape")
        with pytest.raises(ConfigurationError):
            gallery.enroll("", template)

    def test_invalid_ceiling_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            GalleryIndex(tmp_path / "bad", max_nfiq_level=0)
        with pytest.raises(ConfigurationError):
            GalleryIndex(tmp_path / "bad", max_nfiq_level=6)


class TestDelete:
    def test_delete_removes(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        gallery.enroll("subject-0", template, device="D0")
        gallery.delete("subject-0", device="D0")
        assert len(gallery) == 0
        with pytest.raises(UnknownIdentityError):
            gallery.get("subject-0", device="D0")

    def test_delete_unknown_raises(self, gallery):
        with pytest.raises(UnknownIdentityError) as excinfo:
            gallery.delete("ghost", device="D9")
        assert excinfo.value.identity == "ghost"
        assert excinfo.value.device == "D9"


class TestLookups:
    @pytest.fixture()
    def populated(self, gallery, tiny_collection):
        for device in ("D0", "D1"):
            for sid in range(3):
                gallery.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, device, 0).template,
                    device=device,
                )
        return gallery

    def test_devices_and_identities(self, populated):
        assert populated.devices() == ["D0", "D1"]
        assert populated.identities("D0") == [
            "subject-0", "subject-1", "subject-2",
        ]
        assert populated.identities() == [
            "subject-0", "subject-1", "subject-2",
        ]

    def test_candidates_per_device_uses_bare_keys(self, populated):
        candidates = populated.candidates(device="D0")
        assert sorted(candidates) == ["subject-0", "subject-1", "subject-2"]

    def test_candidates_cross_device_qualifies_keys(self, populated):
        candidates = populated.candidates()
        assert len(candidates) == 6
        assert "D0/subject-0" in candidates and "D1/subject-0" in candidates

    def test_stats_shape(self, populated):
        stats = populated.stats()
        assert stats["enrolled"] == 6
        assert stats["devices"] == {"D0": 3, "D1": 3}
        assert stats["max_nfiq_level"] == DEFAULT_MAX_NFIQ_LEVEL
        assert stats["disk"]["entries"] == 6
        assert stats["disk"]["bytes"] > 0


class TestPersistence:
    def test_survives_restart(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        first = GalleryIndex(root)
        for sid in range(3):
            first.enroll(
                f"subject-{sid}",
                tiny_collection.get(sid, FINGER, "D0", 0).template,
                device="D0",
            )
        original = first.get("subject-1", device="D0")

        reborn = GalleryIndex(root)
        assert len(reborn) == 3
        restored = reborn.get("subject-1", device="D0")
        assert restored.nfiq_level == original.nfiq_level
        assert restored.nfiq_utility == pytest.approx(original.nfiq_utility)
        np.testing.assert_array_equal(
            restored.template.positions_px(), original.template.positions_px()
        )
        np.testing.assert_array_equal(
            restored.template.angles(), original.template.angles()
        )
        assert restored.template.width_px == original.template.width_px

    def test_restored_templates_score_identically(
        self, tmp_path, tiny_collection, matcher
    ):
        root = tmp_path / "gallery"
        enrolled = tiny_collection.get(2, FINGER, "D0", 0).template
        GalleryIndex(root).enroll("subject-2", enrolled, device="D0")
        probe = tiny_collection.get(2, FINGER, "D0", 1).template
        restored = GalleryIndex(root).get("subject-2", device="D0").template
        assert matcher.match(probe, restored) == matcher.match(probe, enrolled)

    def test_corrupt_record_dropped_at_reload(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        first = GalleryIndex(root)
        for sid in range(2):
            first.enroll(
                f"subject-{sid}",
                tiny_collection.get(sid, FINGER, "D0", 0).template,
                device="D0",
            )
        victim = root / "D0" / "subject-0.npz"
        assert victim.exists()
        victim.write_bytes(b"torn mid-write")

        reborn = GalleryIndex(root)
        assert len(reborn) == 1
        assert ("D0", "subject-1") in reborn
        assert ("D0", "subject-0") not in reborn

    def test_foreign_files_ignored_at_reload(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        GalleryIndex(root).enroll(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 0).template,
            device="D0",
        )
        (root / "D0" / "notes.txt").write_text("not a record")
        (root / "has space").mkdir()
        assert len(GalleryIndex(root)) == 1
