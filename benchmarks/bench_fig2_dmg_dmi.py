"""F2 — Figure 2: DMG vs DMI distribution, Cross Match Guardian R2.

Expected shape (paper): most DMG scores high, most DMI scores low; no
DMI score above ~7 while some DMG scores fall below 7 — the threshold
placement dilemma the paper discusses.
"""

import numpy as np

from repro.api import render_score_histograms, score_histogram


def test_fig2_guardian_dmg_vs_dmi(benchmark, study, record_artifact):
    sets = study.score_sets()
    genuine = sets["DMG"].for_pair("D0", "D0")
    impostor = sets["DMI"].for_pair("D0", "D0")

    def build_histograms():
        hi = float(np.ceil(max(genuine.scores.max(), impostor.scores.max()))) + 1
        return (
            score_histogram(genuine.scores, score_range=(0.0, hi)),
            score_histogram(impostor.scores, score_range=(0.0, hi)),
        )

    hist_g, hist_i = benchmark(build_histograms)
    text = render_score_histograms(
        genuine, impostor, "Figure 2: DMG vs DMI, Cross Match Guardian R2 (D0)"
    )
    record_artifact(text)
    print("\n" + text)

    # Paper shape assertions.
    assert impostor.scores.max() < 8.5          # "no DMI scores higher than 7"
    assert genuine.scores.mean() > impostor.scores.mean() + 10
    low_bin = hist_i.count_in(0.0, 1.0)
    assert low_bin > 0.4 * hist_i.total          # impostor mass sits in 0-1
