"""Ablation 3 — impostor subsampling budget.

The paper limits impostor scores "to a random subset which is still
sufficient for statistical confidence".  This ablation verifies the
FNMR-at-fixed-FMR operating point is stable as the impostor budget
shrinks — *provided the budget can resolve the target FMR*: a threshold
at FMR 10^-2 needs tens of impostor scores above it, so quarter budgets
agree with the full budget; pushing the same exercise to 10^-3 at a
small study scale shows visible drift, which is exactly why the paper
kept six-figure impostor sets.
"""

import numpy as np

from repro.api import fnmr_at_fmr

TARGET_FMR = 1e-2


def test_ablation_impostor_budget_stability(benchmark, study, record_artifact):
    sets = study.score_sets()
    genuine = sets["DDMG"].scores
    impostor = sets["DDMI"].scores

    def fnmr_at_fraction(fraction: float) -> float:
        # Self-seeded per fraction: re-invocations (the benchmark timer
        # runs this many times) must not perturb later evaluations.
        rng = np.random.default_rng(99 + int(fraction * 1000))
        size = max(50, int(len(impostor) * fraction))
        sample = impostor[rng.choice(len(impostor), size=size, replace=False)]
        return fnmr_at_fmr(genuine, sample, TARGET_FMR)

    full = benchmark(fnmr_at_fraction, 1.0)

    lines = [
        "Ablation: impostor subsampling budget "
        f"(FNMR @ FMR {TARGET_FMR:.0e}, DDMG vs DDMI)",
        f"  {'budget':<10}{'FNMR':>10}",
    ]
    results = {}
    for fraction in (1.0, 0.5, 0.25, 0.1):
        value = fnmr_at_fraction(fraction)
        results[fraction] = value
        lines.append(f"  {fraction:<10.2f}{value:>10.4f}")
    text = "\n".join(lines)
    record_artifact(text)
    print("\n" + text)

    # The operating point is budget-stable down to a quarter.
    assert abs(results[0.25] - results[1.0]) < 0.05
