"""Benchmark harness fixtures.

Every benchmark regenerates one table or figure of the paper.  The
underlying study is session-scoped and disk-cached (``.bench_cache``),
so the expensive score generation happens once per configuration; the
``benchmark`` fixture then times the *analysis* step that produces the
artifact, and the artifact text is written to ``benchmarks/output/``.

Scale control:

* ``REPRO_SUBJECTS``  population size (default 48; paper scale is 494)
* ``REPRO_WORKERS``   process-pool width for score generation
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench_common import OUTPUT_DIR, bench_config, write_bench_manifest
from repro.api import (
    disable_telemetry,
    enable_telemetry,
    InteroperabilityStudy,
)


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Telemetry for the whole bench session; manifest written at exit.

    Gives every ``bench_*`` invocation real per-stage numbers (span
    timings, matcher-invocation counts, cache hit rates) in
    ``benchmarks/output/bench_manifest.json``.
    """
    recorder = enable_telemetry()
    yield recorder
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    write_bench_manifest(recorder)
    disable_telemetry()


@pytest.fixture(scope="session")
def study() -> InteroperabilityStudy:
    """The shared study instance with all score sets materialized."""
    instance = InteroperabilityStudy(bench_config())
    instance.score_sets()
    return instance


@pytest.fixture(scope="session")
def ridge_study() -> InteroperabilityStudy:
    """A study using the diverse second matcher (same population)."""
    return InteroperabilityStudy(bench_config(matcher_name="ridgecount"))


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def record_artifact(artifact_dir, request):
    """Write a rendered table/figure to benchmarks/output/<test>.txt."""

    def _record(text: str, name: str = None) -> str:
        filename = (
            name or request.node.name.replace("[", "_").replace("]", "")
        ) + ".txt"
        path = artifact_dir / filename
        path.write_text(text + "\n")
        return text

    return _record
