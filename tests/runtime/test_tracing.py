"""TraceContext: phase timing, batch aggregation, contextvar install."""

import asyncio

from repro.runtime.telemetry import (
    TraceContext,
    current_trace,
    new_request_id,
    reset_current_trace,
    sanitize_request_id,
    set_current_trace,
    trace_request,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRequestIds:
    def test_new_ids_are_distinct_tokens(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        for rid in ids:
            assert sanitize_request_id(rid) == rid

    def test_sanitize_accepts_token_shapes(self):
        assert sanitize_request_id("abc-123_DEF.9") == "abc-123_DEF.9"

    def test_sanitize_rejects_garbage(self):
        assert sanitize_request_id(None) is None
        assert sanitize_request_id("") is None
        assert sanitize_request_id("has space") is None
        assert sanitize_request_id("newline\ninjection") is None
        assert sanitize_request_id("x" * 200) is None


class TestPhases:
    def test_phase_context_manager_times_the_block(self):
        clock = FakeClock()
        trace = TraceContext(endpoint="verify", clock=clock)
        with trace.phase("parse"):
            clock.advance(0.010)
        assert [p.name for p in trace.phases] == ["parse"]
        assert trace.phases[0].seconds == 0.010

    def test_phase_recorded_even_when_block_raises(self):
        clock = FakeClock()
        trace = TraceContext(clock=clock)
        try:
            with trace.phase("gallery"):
                clock.advance(0.005)
                raise ValueError("boom")
        except ValueError:
            pass
        assert [p.name for p in trace.phases] == ["gallery"]

    def test_timeline_rounds_to_ms(self):
        clock = FakeClock()
        trace = TraceContext(request_id="abc", endpoint="verify", clock=clock)
        trace.add_phase("parse", 0.0015)
        clock.advance(0.1)
        timeline = trace.timeline()
        assert timeline["request_id"] == "abc"
        assert timeline["endpoint"] == "verify"
        assert timeline["total_ms"] == 100.0
        assert timeline["phases"] == [{"name": "parse", "ms": 1.5}]


class TestBatchAggregation:
    def test_note_batch_aggregates_by_max(self):
        trace = TraceContext()
        trace.note_batch(3, queue_wait_s=0.002, batch_wait_s=0.001, match_s=0.010)
        trace.note_batch(4, queue_wait_s=0.005, batch_wait_s=0.0005, match_s=0.008)
        trace.note_batch(3, queue_wait_s=0.001, batch_wait_s=0.003, match_s=0.001)
        assert trace.batch_ids == [3, 4]  # deduped, in arrival order
        assert trace.queue_wait_s == 0.005
        assert trace.batch_wait_s == 0.003
        assert trace.match_s == 0.010

    def test_finalize_appends_canonical_phases(self):
        trace = TraceContext()
        trace.add_phase("parse", 0.001)
        trace.note_batch(1, 0.002, 0.003, 0.004)
        trace.finalize_batch_phases()
        assert [p.name for p in trace.phases] == [
            "parse", "queue_wait", "batch_wait", "match",
        ]

    def test_finalize_without_batches_is_a_noop(self):
        trace = TraceContext()
        trace.add_phase("parse", 0.001)
        trace.finalize_batch_phases()
        assert [p.name for p in trace.phases] == ["parse"]


class TestContextVar:
    def test_install_and_reset(self):
        assert current_trace() is None
        trace = TraceContext()
        token = set_current_trace(trace)
        assert current_trace() is trace
        reset_current_trace(token)
        assert current_trace() is None

    def test_trace_request_context_manager(self):
        with trace_request(request_id="r1", endpoint="verify") as trace:
            assert current_trace() is trace
            assert trace.request_id == "r1"
        assert current_trace() is None

    def test_propagates_across_awaits_within_a_task(self):
        async def helper():
            await asyncio.sleep(0)
            return current_trace()

        async def request():
            with trace_request(endpoint="identify") as trace:
                seen = await helper()
                return trace, seen

        trace, seen = asyncio.run(request())
        assert seen is trace

    def test_concurrent_tasks_see_their_own_trace(self):
        async def request(name):
            with trace_request(request_id=name) as trace:
                await asyncio.sleep(0.001)
                assert current_trace() is trace
                return current_trace().request_id

        async def main():
            return await asyncio.gather(*(request(f"r{i}") for i in range(8)))

        assert asyncio.run(main()) == [f"r{i}" for i in range(8)]
