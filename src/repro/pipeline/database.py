"""Enrollment database.

An operational verification system keeps a gallery: one enrolled record
per (subject, finger), carrying the template *and* its provenance — the
capture device and the NFIQ level — because every interoperability
mitigation needs to know what hardware produced the gallery image.

Records serialize to INCITS 378 (the template) plus a JSON sidecar (the
provenance), so a database directory is interoperable with any tool that
reads the standard format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List

from ..io.incits378 import RecordMetadata, decode, encode
from ..matcher.types import Template
from ..runtime.errors import ReproError


class EnrollmentError(ReproError):
    """A database operation failed (duplicate identity, missing record)."""


@dataclass(frozen=True)
class EnrolledRecord:
    """One gallery entry.

    Attributes
    ----------
    identity:
        The claimed-identity key (e.g. ``"subject-17"``).
    template:
        The enrolled minutiae template.
    device_id:
        The capture device (``"D0"`` … ``"D4"``), or ``""`` if unknown.
    nfiq:
        NFIQ level of the enrollment image (1–5), or 0 if unknown.
    """

    identity: str
    template: Template
    device_id: str = ""
    nfiq: int = 0

    def __post_init__(self) -> None:
        if not self.identity:
            raise EnrollmentError("identity must be a non-empty string")
        if self.nfiq not in (0, 1, 2, 3, 4, 5):
            raise EnrollmentError(f"nfiq must be 0 (unknown) or 1..5, got {self.nfiq}")


class TemplateDatabase:
    """In-memory gallery with optional on-disk persistence."""

    def __init__(self) -> None:
        self._records: Dict[str, EnrolledRecord] = {}

    def enroll(self, record: EnrolledRecord, replace: bool = False) -> None:
        """Add a record; re-enrollment requires ``replace=True``."""
        if record.identity in self._records and not replace:
            raise EnrollmentError(
                f"identity {record.identity!r} is already enrolled; "
                "pass replace=True to re-enroll"
            )
        self._records[record.identity] = record

    def get(self, identity: str) -> EnrolledRecord:
        """Fetch a record; raises :class:`EnrollmentError` if absent."""
        try:
            return self._records[identity]
        except KeyError:
            raise EnrollmentError(f"identity {identity!r} is not enrolled") from None

    def has(self, identity: str) -> bool:
        """Whether ``identity`` is enrolled."""
        return identity in self._records

    def remove(self, identity: str) -> None:
        """Delete a record; raises if absent."""
        if identity not in self._records:
            raise EnrollmentError(f"identity {identity!r} is not enrolled")
        del self._records[identity]

    def identities(self) -> List[str]:
        """Sorted enrolled identities."""
        return sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EnrolledRecord]:
        for identity in self.identities():
            yield self._records[identity]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Path) -> int:
        """Write every record as ``<identity>.fmr`` + ``<identity>.json``.

        Returns the number of records written.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for record in self:
            stem = directory / record.identity
            stem.with_suffix(".fmr").write_bytes(
                encode(record.template, RecordMetadata(finger_quality=60))
            )
            sidecar = {
                "identity": record.identity,
                "device_id": record.device_id,
                "nfiq": record.nfiq,
            }
            stem.with_suffix(".json").write_text(json.dumps(sidecar, indent=2))
        return len(self)

    @classmethod
    def load(cls, directory: Path) -> "TemplateDatabase":
        """Rebuild a database from a :meth:`save` directory."""
        directory = Path(directory)
        if not directory.is_dir():
            raise EnrollmentError(f"{directory} is not a database directory")
        db = cls()
        for fmr_path in sorted(directory.glob("*.fmr")):
            template, __ = decode(fmr_path.read_bytes())
            sidecar_path = fmr_path.with_suffix(".json")
            if sidecar_path.exists():
                sidecar = json.loads(sidecar_path.read_text())
            else:
                sidecar = {"identity": fmr_path.stem, "device_id": "", "nfiq": 0}
            db.enroll(
                EnrolledRecord(
                    identity=sidecar["identity"],
                    template=template,
                    device_id=sidecar.get("device_id", ""),
                    nfiq=int(sidecar.get("nfiq", 0)),
                )
            )
        return db


__all__ = ["TemplateDatabase", "EnrolledRecord", "EnrollmentError"]
