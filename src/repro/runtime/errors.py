"""Exception hierarchy for the reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from data-level problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A study or component was configured with invalid parameters."""


class SynthesisError(ReproError):
    """Synthetic fingerprint generation failed (e.g. degenerate pattern)."""


class AcquisitionError(ReproError):
    """A sensor model could not produce an impression."""


class MatcherError(ReproError):
    """The matcher was given templates it cannot compare."""


class TemplateFormatError(ReproError):
    """An INCITS 378 buffer (or other codec input) is malformed."""


class CalibrationError(ReproError):
    """A calibration model could not be fit or applied."""


class CacheError(ReproError):
    """The on-disk score cache is corrupt or unwritable."""
