"""F5 — Figure 5: low genuine scores (< 10) by (gallery, probe) quality.

Expected shape (paper): for same-device matching, low scores are
negligible "as long as one of the images has a quality score between 1
and 3"; for cross-device matching, both images need to be at quality
1-2 — i.e. the low-score *rate* rises sharply with the worse of the two
qualities, more sharply in the cross-device panel.
"""

import numpy as np

from repro.api import low_score_quality_surface, render_figure5


def test_fig5_low_score_quality_surfaces(benchmark, study, record_artifact):
    study.score_sets()

    def build_surfaces():
        return (
            low_score_quality_surface(study, cross_device=False),
            low_score_quality_surface(study, cross_device=True),
        )

    surface_same, surface_cross = benchmark(build_surfaces)
    text = render_figure5(surface_same, surface_cross)
    record_artifact(text)
    print("\n" + text)

    # Rate of low scores rises with the worse-side NFIQ in the
    # cross-device panel.
    ddmg = study.score_sets()["DDMG"]
    worst = np.maximum(ddmg.nfiq_gallery, ddmg.nfiq_probe)
    good = ddmg.scores[worst <= 2]
    poor = ddmg.scores[worst >= 3]
    assert np.mean(poor < 10.0) > np.mean(good < 10.0)

    # Cross-device matching produces relatively more low scores than
    # same-device matching (Figure 5(b)'s taller bars).
    dmg = study.score_sets()["DMG"]
    assert (surface_cross.total / len(ddmg)) >= (surface_same.total / len(dmg))
