"""NFIQ-style five-level fingerprint image quality assessment.

NIST Fingerprint Image Quality assigns level 1 (best) to 5 (worst); the
number "predicts fingerprint matcher's performance as a function of
image quality" (paper, Section IV.D).  This module reproduces that
contract: a scalar *utility* score is computed from the
:class:`~repro.quality.features.QualityFeatures` evidence with weights
chosen so the utility correlates with genuine match scores, then the
utility is quantized into the five NFIQ levels.

NIST's operational guidance is also implemented:
:func:`recommend_reacquisition` encodes the SP 800-76 rule that thumbs
and index fingers be re-captured (up to three times) when NFIQ > 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .features import QualityFeatures

#: Utility thresholds separating NFIQ levels 1|2|3|4|5 (descending
#: utility).  Calibrated on the synthetic population so the level
#: distribution resembles operational NFIQ statistics: most live-scan
#: captures land at 1-2, dry/light presentations and ink cards populate
#: 3-4, and only hopeless samples reach 5.
_LEVEL_THRESHOLDS: Tuple[float, float, float, float] = (0.80, 0.70, 0.60, 0.52)

#: Maximum re-acquisition attempts recommended by NIST SP 800-76.
MAX_REACQUISITIONS = 3


def quality_utility(features: QualityFeatures) -> float:
    """Scalar predicted-utility in [0, 1]; higher means better.

    Weights mirror the relative importance NFIQ's neural network learned
    on real data: minutiae evidence and ridge clarity dominate, area and
    artifacts modulate.
    """
    count_term = min(features.minutiae_count / 40.0, 1.0)
    utility = (
        0.28 * count_term
        + 0.20 * features.contact_area_fraction
        + 0.17 * features.mean_coherence
        + 0.20 * features.mean_minutia_quality
        + 0.075 * (1.0 - features.dryness_artifact)
        + 0.075 * (1.0 - features.noise_level)
    )
    return max(0.0, min(1.0, utility))


def nfiq_level(features: QualityFeatures) -> int:
    """NFIQ level 1 (highest quality) … 5 (poorest)."""
    utility = quality_utility(features)
    for level, threshold in enumerate(_LEVEL_THRESHOLDS, start=1):
        if utility >= threshold:
            return level
    return 5


@dataclass(frozen=True)
class QualityAssessment:
    """An NFIQ verdict bundled with its underlying utility."""

    level: int
    utility: float

    def __post_init__(self) -> None:
        if not 1 <= self.level <= 5:
            raise ValueError(f"NFIQ level must be 1..5, got {self.level}")
        if not 0.0 <= self.utility <= 1.0:
            raise ValueError(f"utility must be in [0, 1], got {self.utility}")


def assess(features: QualityFeatures) -> QualityAssessment:
    """Full assessment: level plus the scalar utility behind it."""
    utility = quality_utility(features)
    return QualityAssessment(level=nfiq_level(features), utility=utility)


#: Neutral stand-ins for the image-domain quality factors a bare
#: template cannot testify about.  Chosen at the synthetic population's
#: typical live-scan operating point so that template-evidence NFIQ
#: levels land on the same 1–5 scale as acquisition-time NFIQ: a dense,
#: high-confidence template reads 1–2, a sparse or low-confidence one
#: reads 4–5.
_TEMPLATE_NEUTRAL_COHERENCE = 0.80
_TEMPLATE_NEUTRAL_DRYNESS = 0.15
_TEMPLATE_NEUTRAL_NOISE = 0.15

#: A minutiae bounding box covering this fraction of the image frame
#: counts as full contact (live-scan pads are never rim-to-rim).
_TEMPLATE_FULL_CONTACT_FRACTION = 0.6


def template_quality_features(template) -> QualityFeatures:
    """Quality evidence recoverable from a bare template.

    The online serving layer gates enrollment on quality, but an
    ``/enroll`` request carries only an INCITS 378 template — the ground
    truth the acquisition pipeline feeds :class:`QualityFeatures` is
    gone.  This estimator uses what the template does testify about
    (minutiae count, per-minutia confidence, the fraction of the image
    frame the minutiae span) and holds the unobservable image factors at
    neutral population-typical values, so the resulting level is
    comparable with — though coarser than — acquisition-time NFIQ.
    """
    count = len(template)
    if count:
        qualities = template.qualities()
        mean_quality = float(qualities.mean()) / 100.0
        positions = template.positions_px()
        extent = positions.max(axis=0) - positions.min(axis=0)
        frame_area = float(template.width_px * template.height_px)
        bbox_fraction = float(extent[0] * extent[1]) / frame_area if frame_area else 0.0
        contact = min(1.0, bbox_fraction / _TEMPLATE_FULL_CONTACT_FRACTION)
    else:
        mean_quality = 0.0
        contact = 0.0
    return QualityFeatures(
        minutiae_count=count,
        contact_area_fraction=max(0.0, contact),
        mean_coherence=_TEMPLATE_NEUTRAL_COHERENCE,
        dryness_artifact=_TEMPLATE_NEUTRAL_DRYNESS,
        noise_level=_TEMPLATE_NEUTRAL_NOISE,
        mean_minutia_quality=max(0.0, min(1.0, mean_quality)),
    )


def assess_template(template) -> QualityAssessment:
    """Template-evidence NFIQ: the enrollment quality gate's assessor."""
    return assess(template_quality_features(template))


def recommend_reacquisition(level: int, attempts_so_far: int) -> bool:
    """NIST SP 800-76 rule: re-capture while NFIQ > 3, at most 3 retries.

    The paper's collection did *not* enforce this ("fingerprints were
    collected without controlling the quality"); the protocol module
    exposes it as an opt-in policy for the quality-gating ablation.
    """
    if not 1 <= level <= 5:
        raise ValueError(f"NFIQ level must be 1..5, got {level}")
    if attempts_so_far < 0:
        raise ValueError("attempts_so_far cannot be negative")
    return level > 3 and attempts_so_far < MAX_REACQUISITIONS


__all__ = [
    "quality_utility",
    "nfiq_level",
    "QualityAssessment",
    "assess",
    "assess_template",
    "template_quality_features",
    "recommend_reacquisition",
    "MAX_REACQUISITIONS",
]
