"""Dataset summaries — the collection's descriptive statistics.

A measurement study reports its dataset before its findings; this
module tabulates a :class:`~repro.sensors.protocol.Collection` the way
Section III of the paper describes its own data: impressions per
device, NFIQ distribution per device, minutiae-count statistics, and
failure-to-enroll style degenerate captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..sensors.protocol import Collection
from ..sensors.registry import DEVICE_ORDER


@dataclass(frozen=True)
class DeviceSummary:
    """Per-device acquisition statistics."""

    device_id: str
    n_impressions: int
    mean_minutiae: float
    min_minutiae: int
    max_minutiae: int
    nfiq_distribution: Tuple[int, int, int, int, int]
    degenerate_count: int  # impressions too small to match (< 4 minutiae)

    @property
    def mean_nfiq(self) -> float:
        """Average NFIQ level of this device's impressions."""
        total = sum(self.nfiq_distribution)
        if total == 0:
            return 0.0
        return sum(
            level * count
            for level, count in enumerate(self.nfiq_distribution, start=1)
        ) / total


def summarize_collection(collection: Collection) -> Dict[str, DeviceSummary]:
    """Per-device summaries of an acquired collection."""
    buckets: Dict[str, list] = {device: [] for device in DEVICE_ORDER}
    for impression in collection:
        if impression.device_id in buckets:
            buckets[impression.device_id].append(impression)
    summaries: Dict[str, DeviceSummary] = {}
    for device, impressions in buckets.items():
        if not impressions:
            continue
        counts = np.array([len(i.template) for i in impressions])
        nfiq = np.array([i.nfiq for i in impressions])
        distribution = tuple(
            int(np.count_nonzero(nfiq == level)) for level in (1, 2, 3, 4, 5)
        )
        summaries[device] = DeviceSummary(
            device_id=device,
            n_impressions=len(impressions),
            mean_minutiae=float(counts.mean()),
            min_minutiae=int(counts.min()),
            max_minutiae=int(counts.max()),
            nfiq_distribution=distribution,  # type: ignore[arg-type]
            degenerate_count=int(np.count_nonzero(counts < 4)),
        )
    return summaries


def render_collection_summary(summaries: Dict[str, DeviceSummary]) -> str:
    """Text table of per-device acquisition statistics."""
    lines = [
        "Collection summary",
        f"{'device':<8}{'imps':>6}{'minutiae (mean/min/max)':>26}"
        f"{'NFIQ 1..5':>22}{'mean':>6}{'degen':>7}",
    ]
    for device in DEVICE_ORDER:
        if device not in summaries:
            continue
        s = summaries[device]
        dist = "/".join(str(c) for c in s.nfiq_distribution)
        lines.append(
            f"{device:<8}{s.n_impressions:>6}"
            f"{f'{s.mean_minutiae:.1f} / {s.min_minutiae} / {s.max_minutiae}':>26}"
            f"{dist:>22}{s.mean_nfiq:>6.2f}{s.degenerate_count:>7}"
        )
    return "\n".join(lines)


__all__ = ["DeviceSummary", "summarize_collection", "render_collection_summary"]
