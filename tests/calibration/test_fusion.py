"""Score fusion rules."""

import numpy as np
import pytest

from repro.calibration.fusion import (
    FUSION_RULES,
    d_prime,
    max_fusion,
    min_fusion,
    product_fusion,
    separability_weights,
    sum_fusion,
    weighted_sum_fusion,
)
from repro.runtime.errors import CalibrationError


class TestRules:
    def test_sum_is_mean(self):
        np.testing.assert_allclose(
            sum_fusion([[2.0, 4.0], [4.0, 8.0]]), [3.0, 6.0]
        )

    def test_max(self):
        np.testing.assert_allclose(max_fusion([[1.0, 5.0], [3.0, 2.0]]), [3.0, 5.0])

    def test_min(self):
        np.testing.assert_allclose(min_fusion([[1.0, 5.0], [3.0, 2.0]]), [1.0, 2.0])

    def test_product_is_geometric_mean(self):
        fused = product_fusion([[4.0], [9.0]])
        assert fused[0] == pytest.approx(6.0, rel=1e-3)

    def test_product_rejects_negative(self):
        with pytest.raises(CalibrationError):
            product_fusion([[-1.0], [1.0]])

    def test_weighted_sum(self):
        fused = weighted_sum_fusion([[10.0], [0.0]], weights=[3.0, 1.0])
        assert fused[0] == pytest.approx(7.5)

    def test_weighted_sum_validation(self):
        with pytest.raises(CalibrationError):
            weighted_sum_fusion([[1.0], [2.0]], weights=[1.0])
        with pytest.raises(CalibrationError):
            weighted_sum_fusion([[1.0], [2.0]], weights=[0.0, 0.0])

    def test_length_mismatch(self):
        with pytest.raises(CalibrationError):
            sum_fusion([[1.0, 2.0], [1.0]])

    def test_empty_sources(self):
        with pytest.raises(CalibrationError):
            sum_fusion([])

    def test_registry_complete(self):
        assert set(FUSION_RULES) == {"sum", "max", "min", "product"}


class TestDPrime:
    def test_separated_populations(self):
        rng = np.random.default_rng(0)
        genuine = rng.normal(10, 1, 500)
        impostor = rng.normal(0, 1, 500)
        assert d_prime(genuine, impostor) == pytest.approx(10.0, abs=0.5)

    def test_identical_populations_near_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(5, 1, 500)
        y = rng.normal(5, 1, 500)
        assert abs(d_prime(x, y)) < 0.2

    def test_too_small(self):
        with pytest.raises(CalibrationError):
            d_prime([1.0], [1.0, 2.0])


class TestSeparabilityWeights:
    def test_better_source_weighs_more(self):
        rng = np.random.default_rng(2)
        strong = (rng.normal(10, 1, 300), rng.normal(0, 1, 300))
        weak = (rng.normal(3, 2, 300), rng.normal(0, 2, 300))
        weights = separability_weights(
            [strong[0], weak[0]], [strong[1], weak[1]]
        )
        assert weights[0] > weights[1]
        assert weights.sum() == pytest.approx(1.0)

    def test_fusion_improves_separability(self):
        """Fusing two partially-independent sources beats the weaker one."""
        rng = np.random.default_rng(3)
        shared_g = rng.normal(8, 2, 400)
        shared_i = rng.normal(1, 1.5, 400)
        a_g = shared_g + rng.normal(0, 2, 400)
        a_i = shared_i + rng.normal(0, 2, 400)
        b_g = shared_g + rng.normal(0, 2, 400)
        b_i = shared_i + rng.normal(0, 2, 400)
        fused_g = sum_fusion([a_g, b_g])
        fused_i = sum_fusion([a_i, b_i])
        assert d_prime(fused_g, fused_i) > max(d_prime(a_g, a_i), d_prime(b_g, b_i))
