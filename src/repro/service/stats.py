"""Service-side observability: request counters and latency windows.

The batch study gets a run manifest at the end; a server never ends, so
it needs live introspection instead.  :class:`ServiceStats` is the
server's always-on view: per-endpoint request counters, a sliding window
of request latencies (exact p50/p95/p99 over the window), the
micro-batch size distribution, and labeled cumulative histograms in the
shape Prometheus expects (rendered by
:func:`repro.service.metrics.render_exposition` behind ``GET
/metrics``).  ``GET /stats`` serializes a snapshot; the same events are
mirrored into the process-wide telemetry recorder (``service.*``
counters and histograms) so a ``--manifest-out`` run additionally lands
the service rollup in its run manifest, rendered by ``repro stats``.

Probe traffic — ``healthz``, ``stats``, ``metrics``, the endpoints a
monitoring loop hits every few seconds — is *counted* but excluded from
every latency distribution: those requests answer in microseconds, and
under scrape load they drag p50 toward zero and mask real matcher
latency.  The request counters still include them, so traffic
accounting stays exact.

Mutations are lock-protected: most events arrive on the serving event
loop, but the batcher's executor thread and any embedding code may
record concurrently, and the windows must never tear.

Latency distributions ride :class:`repro.stats.histogram.Histogram` —
the same binned-distribution type the paper's figures use — so the
``/stats`` payload exposes bin edges and counts, not just summary
quantiles.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from ..runtime.telemetry import get_recorder
from ..stats.histogram import score_histogram

#: Sliding-window length for exact latency quantiles.  Old observations
#: fall out; the totals keep counting forever.
LATENCY_WINDOW = 4096

#: The endpoints the service tallies individually.
ENDPOINTS = (
    "enroll", "verify", "identify", "delete", "healthz", "stats", "metrics",
    "admin",
)

#: Monitoring endpoints excluded from the latency windows (still counted).
PROBE_ENDPOINTS = frozenset({"healthz", "stats", "metrics", "admin"})

#: Authentication outcomes tallied by :meth:`ServiceStats.record_auth`.
AUTH_OUTCOMES = ("ok", "unauthorized", "forbidden")

#: Bucket upper bounds (seconds) for the Prometheus latency histograms.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Bucket upper bounds (jobs) for the batch-size / batch-requests
#: histograms — powers of two up to the largest sane micro-batch.
BATCH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Bucket upper bounds (seconds) for the identify prefilter stage —
#: descriptor search is sub-millisecond at paper scale, milliseconds at
#: millions, so the grid starts two decades below LATENCY_BUCKETS.
PREFILTER_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
)


def _quantiles(values: Deque[float]) -> Optional[Dict[str, float]]:
    """p50/p95/p99/max of a latency window, in milliseconds."""
    if not values:
        return None
    arr = np.asarray(values, dtype=np.float64) * 1000.0
    p50, p95, p99 = np.percentile(arr, (50.0, 95.0, 99.0))
    return {
        "count": int(arr.size),
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "max_ms": round(float(arr.max()), 3),
    }


class _CumulativeHistogram:
    """A Prometheus-shaped histogram: count, sum, per-bucket tallies.

    Buckets hold *non-cumulative* counts internally (cheap to update);
    the exposition renderer accumulates them into the ``le`` form.
    """

    __slots__ = ("bounds", "count", "total", "buckets")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.count = 0
        self.total = 0.0
        self.buckets = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": list(self.buckets),
            "bounds": list(self.bounds),
        }


class ServiceStats:
    """Live counters and distributions for one server process.

    Thread-safe: the serving event loop, the matcher executor thread,
    and any embedding code can record concurrently.  Everything is also
    mirrored into the telemetry recorder, which is itself thread-safe
    and a no-op until telemetry is enabled.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.requests: Dict[str, int] = {name: 0 for name in ENDPOINTS}
        self.statuses: Dict[int, int] = {}
        self.accepted = 0
        self.rejected = 0
        self.enroll_rejected = 0
        self.overloads = 0
        self.deadline_exceeded = 0
        self.batches = 0
        self.batched_jobs = 0
        self.expired_jobs = 0
        self.last_batch_id = 0
        self.slow_requests = 0
        self._latencies: Dict[str, Deque[float]] = {
            name: deque(maxlen=LATENCY_WINDOW) for name in ENDPOINTS
        }
        self._batch_sizes: Deque[int] = deque(maxlen=LATENCY_WINDOW)
        # Labeled (endpoint, device) latency histograms for /metrics.
        self._latency_hist: Dict[Tuple[str, str], _CumulativeHistogram] = {}
        self._queue_wait = _CumulativeHistogram(LATENCY_BUCKETS)
        self._batch_size_hist = _CumulativeHistogram(BATCH_BUCKETS)
        self._batch_requests_hist = _CumulativeHistogram(BATCH_BUCKETS)
        self.identify_modes: Dict[str, int] = {}
        self.identify_candidates = 0
        # Admission control (all zero while serving open / unlimited).
        self.auth_outcomes: Dict[str, int] = {o: 0 for o in AUTH_OUTCOMES}
        self.rate_limited: Dict[str, int] = {}
        self._prefilter_hist = _CumulativeHistogram(PREFILTER_BUCKETS)
        # Sharded worker pool (all zero / empty when serving in-process).
        self.workers_configured = 0
        self.workers_alive = 0
        self.worker_degraded = False
        self.worker_dispatches: Dict[int, int] = {}
        self.worker_jobs: Dict[int, int] = {}
        self.worker_respawns: Dict[int, int] = {}
        self.worker_shard_sizes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Event sinks
    # ------------------------------------------------------------------
    def record_request(
        self,
        endpoint: str,
        seconds: float,
        status: int,
        device: Optional[str] = None,
        probe: Optional[bool] = None,
    ) -> None:
        """Tally one finished HTTP request.

        ``probe`` marks monitoring traffic excluded from the latency
        windows; when ``None`` it is inferred from the endpoint name.
        """
        if probe is None:
            probe = endpoint in PROBE_ENDPOINTS
        with self._lock:
            if endpoint in self.requests:
                self.requests[endpoint] += 1
                if not probe:
                    self._latencies[endpoint].append(seconds)
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if not probe:
                key = (endpoint, device or "")
                hist = self._latency_hist.get(key)
                if hist is None:
                    hist = _CumulativeHistogram(LATENCY_BUCKETS)
                    self._latency_hist[key] = hist
                hist.observe(seconds)
        recorder = get_recorder()
        if recorder.active:
            recorder.count("service.requests")
            recorder.count(f"service.requests.{endpoint}")
            recorder.count(f"service.status.{status}")
            if not probe:
                recorder.observe("service.latency_seconds", seconds)

    def record_decision(self, accepted: bool) -> None:
        """Tally one verification decision."""
        with self._lock:
            if accepted:
                self.accepted += 1
            else:
                self.rejected += 1
        recorder = get_recorder()
        if recorder.active:
            recorder.count(
                "service.accepted" if accepted else "service.rejected"
            )

    def record_enroll_rejected(self) -> None:
        """Tally one quality-gated enrollment rejection."""
        with self._lock:
            self.enroll_rejected += 1
        get_recorder().count("service.enroll.rejected")

    def record_overload(self) -> None:
        """Tally one admission rejected on a full queue (HTTP 503)."""
        with self._lock:
            self.overloads += 1
        get_recorder().count("service.overload")

    def record_deadline(self) -> None:
        """Tally one request that outlived its deadline (HTTP 504)."""
        with self._lock:
            self.deadline_exceeded += 1
        get_recorder().count("service.deadline_exceeded")

    def record_auth(self, outcome: str) -> None:
        """Tally one authentication decision (``ok``/``unauthorized``/
        ``forbidden``) on a keyed server."""
        with self._lock:
            self.auth_outcomes[outcome] = (
                self.auth_outcomes.get(outcome, 0) + 1
            )
        get_recorder().count(f"service.auth.{outcome}")

    def record_rate_limited(self, principal: str) -> None:
        """Tally one request refused by the limiter (HTTP 429)."""
        with self._lock:
            self.rate_limited[principal] = (
                self.rate_limited.get(principal, 0) + 1
            )
        get_recorder().count("service.rate_limited")

    def record_slow(self) -> None:
        """Tally one request over the ``REPRO_SERVE_SLOW_MS`` threshold."""
        with self._lock:
            self.slow_requests += 1
        get_recorder().count("service.slow_requests")

    def record_identify(
        self,
        mode: str,
        candidates_scored: int,
        prefilter_seconds: float = 0.0,
    ) -> None:
        """Tally one 1:N search: its mode and exact-stage workload.

        ``candidates_scored`` is how many gallery templates reached the
        exact matcher (the whole gallery in exact mode, the prefilter
        survivors in two-stage); the prefilter wall time is only
        observed for two-stage searches, where the coarse stage ran.
        """
        with self._lock:
            self.identify_modes[mode] = self.identify_modes.get(mode, 0) + 1
            self.identify_candidates += candidates_scored
            if mode == "two_stage":
                self._prefilter_hist.observe(prefilter_seconds)
        recorder = get_recorder()
        if recorder.active:
            recorder.count(f"index.recall_mode.{mode}")
            recorder.count("index.candidates", candidates_scored)
            if mode == "two_stage":
                recorder.observe("index.prefilter_seconds", prefilter_seconds)

    # ------------------------------------------------------------------
    # Worker-pool sinks (sharded serving)
    # ------------------------------------------------------------------
    def configure_workers(self, configured: int, alive: int) -> None:
        """Record the pool shape at startup (and the live count)."""
        with self._lock:
            self.workers_configured = configured
            self.workers_alive = alive
        recorder = get_recorder()
        if recorder.active:
            recorder.gauge("service.worker.configured", float(configured))
            recorder.gauge("service.worker.alive", float(alive))

    def set_worker_alive(self, alive: int) -> None:
        """Update the live worker count after a crash or respawn."""
        with self._lock:
            self.workers_alive = alive
        recorder = get_recorder()
        if recorder.active:
            recorder.gauge("service.worker.alive", float(alive))

    def set_worker_degraded(self) -> None:
        """The pool gave up; the server fell back to in-process serving."""
        with self._lock:
            self.worker_degraded = True
            self.workers_alive = 0
        recorder = get_recorder()
        if recorder.active:
            recorder.gauge("service.worker.degraded", 1.0)
            recorder.gauge("service.worker.alive", 0.0)

    def set_worker_shard(self, worker: int, size: int) -> None:
        """Record how many gallery records worker ``worker`` owns."""
        with self._lock:
            self.worker_shard_sizes[worker] = size
        recorder = get_recorder()
        if recorder.active:
            recorder.gauge(f"service.worker.shard_size.{worker}", float(size))

    def record_worker_dispatch(self, worker: int, jobs: int = 1) -> None:
        """Tally one RPC dispatched to worker ``worker`` (``jobs`` pairs)."""
        with self._lock:
            self.worker_dispatches[worker] = (
                self.worker_dispatches.get(worker, 0) + 1
            )
            self.worker_jobs[worker] = self.worker_jobs.get(worker, 0) + jobs
        recorder = get_recorder()
        if recorder.active:
            recorder.count("service.worker.dispatches")
            recorder.count("service.worker.dispatched_jobs", jobs)

    def record_worker_respawn(self, worker: int) -> None:
        """Tally one crash-or-stall respawn of worker ``worker``."""
        with self._lock:
            self.worker_respawns[worker] = (
                self.worker_respawns.get(worker, 0) + 1
            )
        get_recorder().count("service.worker.respawns")

    def record_queue_wait(self, seconds: float) -> None:
        """Tally one pair job's time in the admission queue."""
        with self._lock:
            self._queue_wait.observe(seconds)

    def record_batch(
        self,
        size: int,
        expired: int = 0,
        requests: int = 0,
        batch_id: Optional[int] = None,
    ) -> None:
        """Tally one dispatched micro-batch of ``size`` comparisons.

        ``requests`` is how many distinct in-flight requests the batch
        coalesced (a verify contributes one job, an identify several).
        A batch whose jobs all expired in the queue dispatches nothing;
        its ``size`` arrives as 0 and only the expiry tally moves.
        """
        with self._lock:
            if size:
                self.batches += 1
                self.batched_jobs += size
                self._batch_sizes.append(size)
                self._batch_size_hist.observe(float(size))
                if requests:
                    self._batch_requests_hist.observe(float(requests))
            self.expired_jobs += expired
            if batch_id is not None:
                self.last_batch_id = max(self.last_batch_id, batch_id)
        recorder = get_recorder()
        if recorder.active:
            if size:
                recorder.count("service.batches")
                recorder.count("service.batched_jobs", size)
                recorder.observe("service.batch_size", float(size))
                if requests:
                    recorder.observe("service.batch_requests", float(requests))
            if expired:
                recorder.count("service.expired_jobs", expired)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def max_batch_size(self) -> int:
        """Largest micro-batch observed in the window (0 before any)."""
        with self._lock:
            return max(self._batch_sizes) if self._batch_sizes else 0

    def latency_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-endpoint window quantiles (endpoints never hit are absent)."""
        with self._lock:
            windows = {
                endpoint: deque(window)
                for endpoint, window in self._latencies.items()
            }
        out: Dict[str, Dict[str, float]] = {}
        for endpoint, window in windows.items():
            quantiles = _quantiles(window)
            if quantiles is not None:
                out[endpoint] = quantiles
        return out

    def labeled_latency(self) -> Dict[Tuple[str, str], dict]:
        """Per-(endpoint, device) cumulative histograms for /metrics."""
        with self._lock:
            return {
                key: hist.snapshot()
                for key, hist in sorted(self._latency_hist.items())
            }

    def queue_wait_snapshot(self) -> dict:
        """The admission-queue wait histogram for /metrics."""
        with self._lock:
            return self._queue_wait.snapshot()

    def prefilter_snapshot(self) -> dict:
        """The two-stage prefilter wall-time histogram for /metrics."""
        with self._lock:
            return self._prefilter_hist.snapshot()

    def identify_snapshot(self) -> dict:
        """Identify-search mode tallies for /stats."""
        with self._lock:
            return {
                "modes": dict(sorted(self.identify_modes.items())),
                "candidates_scored": self.identify_candidates,
            }

    def auth_snapshot(self) -> dict:
        """Authentication / rate-limit tallies for ``/stats`` + metrics."""
        with self._lock:
            return {
                "outcomes": dict(self.auth_outcomes),
                "rate_limited": dict(sorted(self.rate_limited.items())),
                "rate_limited_total": int(sum(self.rate_limited.values())),
            }

    def worker_snapshot(self) -> dict:
        """The sharded-pool block for ``/stats`` and the manifest."""
        with self._lock:
            return {
                "configured": self.workers_configured,
                "alive": self.workers_alive,
                "degraded": self.worker_degraded,
                "dispatches": {
                    str(k): v
                    for k, v in sorted(self.worker_dispatches.items())
                },
                "dispatched_jobs": {
                    str(k): v for k, v in sorted(self.worker_jobs.items())
                },
                "respawns": {
                    str(k): v for k, v in sorted(self.worker_respawns.items())
                },
                "shard_sizes": {
                    str(k): v
                    for k, v in sorted(self.worker_shard_sizes.items())
                },
            }

    def batch_histograms(self) -> Dict[str, dict]:
        """Batch size / coalesced-request histograms for /metrics."""
        with self._lock:
            return {
                "batch_size": self._batch_size_hist.snapshot(),
                "batch_requests": self._batch_requests_hist.snapshot(),
            }

    def batch_snapshot(self) -> dict:
        """Micro-batch distribution: totals plus a unit-binned histogram."""
        with self._lock:
            sizes = list(self._batch_sizes)
            batches = self.batches
            jobs = self.batched_jobs
            expired = self.expired_jobs
            last_id = self.last_batch_id
        payload = {
            "batches": batches,
            "jobs": jobs,
            "expired_jobs": expired,
            "last_batch_id": last_id,
            "mean_size": round(jobs / batches, 3) if batches else None,
            "max_size": max(sizes) if sizes else 0,
        }
        if sizes:
            hist = score_histogram(sizes, bin_width=1.0, label="batch_size")
            payload["histogram"] = {
                "edges": [float(e) for e in hist.edges],
                "counts": [int(c) for c in hist.counts],
            }
        return payload

    def snapshot(self) -> dict:
        """The full ``/stats`` payload (JSON-able)."""
        with self._lock:
            requests = dict(self.requests)
            statuses = {str(k): v for k, v in sorted(self.statuses.items())}
            decisions = {"accepted": self.accepted, "rejected": self.rejected}
            enroll_rejected = self.enroll_rejected
            overloads = self.overloads
            deadline_exceeded = self.deadline_exceeded
            slow = self.slow_requests
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": requests,
            "requests_total": int(sum(requests.values())),
            "statuses": statuses,
            "decisions": decisions,
            "enroll_rejected": enroll_rejected,
            "overloads": overloads,
            "deadline_exceeded": deadline_exceeded,
            "slow_requests": slow,
            "latency": self.latency_snapshot(),
            "batching": self.batch_snapshot(),
            "identify": self.identify_snapshot(),
            "workers": self.worker_snapshot(),
        }


__all__ = [
    "ServiceStats",
    "AUTH_OUTCOMES",
    "LATENCY_WINDOW",
    "LATENCY_BUCKETS",
    "BATCH_BUCKETS",
    "PREFILTER_BUCKETS",
    "ENDPOINTS",
    "PROBE_ENDPOINTS",
]
