"""Property tests for identification curves and report renderers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identification import cmc_curve
from repro.stats.histogram import render_histogram, score_histogram


class TestCmcProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=100),
        st.integers(min_value=1, max_value=25),
    )
    @settings(max_examples=80, deadline=None)
    def test_hit_rates_monotone_and_bounded(self, ranks, max_rank):
        curve = cmc_curve(ranks, max_rank=max_rank)
        assert np.all(curve.hit_rates >= 0.0)
        assert np.all(curve.hit_rates <= 1.0)
        assert np.all(np.diff(curve.hit_rates) >= -1e-12)

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_full_coverage_saturates_at_one(self, ranks):
        # Every probe hits within rank 5, so the tail rate must be 1.
        curve = cmc_curve(ranks, max_rank=5)
        assert curve.rate_at(5) == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=0, max_value=0), min_size=1, max_size=50))
    @settings(max_examples=10, deadline=None)
    def test_all_misses_stay_zero(self, ranks):
        curve = cmc_curve(ranks, max_rank=3)
        assert curve.rank1 == 0.0
        assert curve.rate_at(3) == 0.0


class TestHistogramRendering:
    def test_log_scale_renders(self):
        hist = score_histogram(
            np.concatenate([np.zeros(10000), np.full(3, 5.0)]),
            score_range=(0, 6),
            label="log demo",
        )
        linear = render_histogram(hist, log_scale=False)
        logged = render_histogram(hist, log_scale=True)
        # On a log axis the tiny bin becomes visible (longer bar than on
        # the linear axis, where it rounds to nothing).
        linear_bar = linear.splitlines()[6].count("#")
        logged_bar = logged.splitlines()[6].count("#")
        assert logged_bar > linear_bar

    def test_empty_histogram_renders(self):
        hist = score_histogram([], label="empty")
        text = render_histogram(hist)
        assert "empty" in text
