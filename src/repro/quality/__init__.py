"""NFIQ-style image quality assessment (substitute for NIST NFIQ)."""

from .features import FEATURE_DIM, QualityFeatures
from .nfiq import (
    MAX_REACQUISITIONS,
    QualityAssessment,
    assess,
    assess_template,
    nfiq_level,
    quality_utility,
    recommend_reacquisition,
    template_quality_features,
)

__all__ = [
    "QualityFeatures",
    "FEATURE_DIM",
    "QualityAssessment",
    "assess",
    "assess_template",
    "template_quality_features",
    "nfiq_level",
    "quality_utility",
    "recommend_reacquisition",
    "MAX_REACQUISITIONS",
]
