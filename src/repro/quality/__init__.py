"""NFIQ-style image quality assessment (substitute for NIST NFIQ)."""

from .features import FEATURE_DIM, QualityFeatures
from .nfiq import (
    MAX_REACQUISITIONS,
    QualityAssessment,
    assess,
    nfiq_level,
    quality_utility,
    recommend_reacquisition,
)

__all__ = [
    "QualityFeatures",
    "FEATURE_DIM",
    "QualityAssessment",
    "assess",
    "nfiq_level",
    "quality_utility",
    "recommend_reacquisition",
    "MAX_REACQUISITIONS",
]
