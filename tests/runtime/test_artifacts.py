"""Content-addressed artifact store behaviour."""

import dataclasses

import numpy as np
import pytest

from repro.runtime.artifacts import CODE_SALT, TIERS, ArtifactStore, canonical_digest
from repro.runtime.errors import CacheError
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder


@pytest.fixture()
def recorder():
    previous = get_recorder()
    live = enable_telemetry()
    yield live
    set_recorder(previous)


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


class TestCanonicalDigest:
    def test_deterministic(self):
        payload = {"subject": 3, "seed": 20130624, "devices": ["D0", "D1"]}
        assert canonical_digest(payload) == canonical_digest(dict(payload))

    def test_key_order_irrelevant(self):
        a = canonical_digest({"x": 1, "y": 2})
        b = canonical_digest({"y": 2, "x": 1})
        assert a == b

    def test_value_changes_address(self):
        base = canonical_digest({"subject": 3})
        assert canonical_digest({"subject": 4}) != base

    def test_salt_changes_address(self):
        payload = {"subject": 3}
        assert canonical_digest(payload) != canonical_digest(
            payload, salt=CODE_SALT + "-next"
        )

    def test_dataclass_payload(self):
        @dataclasses.dataclass(frozen=True)
        class Traits:
            pressure: float
            moisture: float

        a = canonical_digest({"traits": Traits(0.5, 0.3)})
        b = canonical_digest({"traits": {"pressure": 0.5, "moisture": 0.3}})
        assert a == b

    def test_numpy_payload(self):
        assert canonical_digest({"v": np.int64(3)}) == canonical_digest({"v": 3})
        assert canonical_digest({"v": np.array([1.0, 2.0])}) == canonical_digest(
            {"v": [1.0, 2.0]}
        )

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            canonical_digest({"v": object()})

    def test_hex_and_stable_width(self):
        digest = canonical_digest({"subject": 0})
        assert len(digest) == 32
        int(digest, 16)  # hex-parsable


class TestTiers:
    def test_tiers_are_separate_namespaces(self, store):
        digest = "d" * 32
        store.store("impressions", digest, {"a": np.zeros(2)})
        assert store.load("impressions", digest) is not None
        assert store.load("images", digest) is None

    def test_unknown_tier_rejected(self, store):
        with pytest.raises(CacheError):
            store.store("scores", "k", {"a": np.zeros(1)})
        with pytest.raises(CacheError):
            store.load("scores", "k")

    def test_all_declared_tiers_work(self, store):
        for tier in TIERS:
            store.store(tier, "k", {"a": np.full(1, 7.0)})
        for tier in TIERS:
            np.testing.assert_array_equal(store.load(tier, "k")["a"], [7.0])


class TestRoundTrip:
    def test_store_and_load(self, store):
        arrays = {"x": np.arange(4.0), "y": np.array(["a", "b"])}
        store.store("templates", "k1", arrays)
        loaded = store.load("templates", "k1")
        np.testing.assert_array_equal(loaded["x"], arrays["x"])
        np.testing.assert_array_equal(loaded["y"], arrays["y"])

    def test_meta_roundtrip(self, store):
        store.store("quality", "k", {"a": np.zeros(1)}, meta={"subject": 5})
        assert store.load_meta("quality", "k") == {"subject": 5}

    def test_has(self, store):
        assert not store.has("images", "k")
        store.store("images", "k", {"a": np.zeros(1)})
        assert store.has("images", "k")

    def test_invalidate(self, store):
        store.store("images", "k", {"a": np.zeros(1)})
        assert store.invalidate("images", "k") is True
        assert store.load("images", "k") is None
        assert store.invalidate("images", "k") is False

    def test_clear_one_tier(self, store):
        store.store("images", "k", {"a": np.zeros(1)})
        store.store("templates", "k", {"a": np.zeros(1)})
        assert store.clear("images") == 1
        assert store.load("images", "k") is None
        assert store.load("templates", "k") is not None

    def test_clear_all(self, store):
        store.store("images", "k", {"a": np.zeros(1)})
        store.store("templates", "k", {"a": np.zeros(1)})
        assert store.clear() == 2


class TestDisabled:
    def test_none_directory_disables(self):
        store = ArtifactStore(None)
        assert not store.enabled
        assert store.root is None
        store.store("impressions", "k", {"a": np.zeros(1)})  # no-op
        assert store.load("impressions", "k") is None
        assert not store.has("impressions", "k")
        assert store.clear() == 0
        assert store.stats()["total"] == {"entries": 0, "bytes": 0}


class TestRobustness:
    def test_corrupt_entry_is_a_miss(self, store, tmp_path, recorder):
        store.store("impressions", "bad", {"a": np.zeros(3)})
        path = tmp_path / "artifacts" / "impressions" / "bad.npz"
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        assert store.load("impressions", "bad") is None
        assert not path.exists()
        assert recorder.metrics.counter_value("artifacts.corrupt") == 1
        assert recorder.metrics.counter_value("artifacts.miss") == 1

    def test_truncated_entry_is_a_miss(self, store, tmp_path):
        store.store("templates", "cut", {"a": np.arange(1000.0)})
        path = tmp_path / "artifacts" / "templates" / "cut.npz"
        path.write_bytes(path.read_bytes()[:40])
        assert store.load("templates", "cut") is None

    def test_counters_use_artifacts_namespace(self, store, recorder):
        assert store.load("images", "absent") is None
        store.store("images", "k", {"a": np.zeros(1)})
        assert store.load("images", "k") is not None
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["artifacts.miss"] == 1
        assert counters["artifacts.hit"] == 1
        assert counters["artifacts.store"] == 1
        assert counters["artifacts.bytes_written"] > 0
        assert counters["artifacts.bytes_read"] > 0
        assert "cache.hit" not in counters


class TestStats:
    def test_per_tier_and_total(self, store):
        store.store("impressions", "a", {"x": np.zeros(10)})
        store.store("quality", "b", {"x": np.zeros(10)})
        stats = store.stats()
        assert stats["impressions"]["entries"] == 1
        assert stats["quality"]["entries"] == 1
        assert stats["images"] == {"entries": 0, "bytes": 0}
        assert stats["total"]["entries"] == 2
        assert stats["total"]["bytes"] == sum(
            stats[tier]["bytes"] for tier in TIERS
        )
