"""RunManifest: build, validate, round-trip, render."""

import json

import pytest

from repro.runtime.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    render_manifest,
    validate_manifest,
    vcs_describe,
)
from repro.runtime.telemetry import TelemetryRecorder


class FakeConfig:
    """Just enough of StudyConfig for RunManifest.from_recorder."""

    master_seed = 42
    n_subjects = 6
    matcher_name = "minutiae"
    n_workers = 0

    def fingerprint(self):
        return "deadbeefcafe"

    def describe(self):
        return "6 subjects, minutiae matcher, sequential"


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_recorder():
    clock = FakeClock()
    recorder = TelemetryRecorder(clock=clock)
    with recorder.span("scores.DMG"):
        clock.advance(1.5)
        recorder.count("matcher.invocations", 30)
        recorder.observe("matcher.match_seconds", 0.05)
    recorder.count("cache.hit", 3)
    recorder.count("cache.miss", 1)
    recorder.count("cache.store", 1)
    return recorder


def test_from_recorder_captures_everything():
    manifest = RunManifest.from_recorder(make_recorder(), FakeConfig())
    assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
    assert manifest.config["fingerprint"] == "deadbeefcafe"
    assert manifest.config["seed"] == 42
    assert manifest.spans["name"] == "run"
    assert manifest.spans["children"][0]["name"] == "scores.DMG"
    assert manifest.spans["children"][0]["seconds"] == pytest.approx(1.5)
    assert manifest.counters["matcher.invocations"] == 30
    assert manifest.histograms["matcher.match_seconds"]["count"] == 1
    assert manifest.cache == {
        "hits": 3,
        "misses": 1,
        "corrupt": 0,
        "stores": 1,
        "hit_rate": 0.75,
    }


def test_cache_hit_rate_none_when_untouched():
    recorder = TelemetryRecorder(clock=FakeClock())
    manifest = RunManifest.from_recorder(recorder, FakeConfig())
    assert manifest.cache["hit_rate"] is None


def test_write_load_round_trip(tmp_path):
    manifest = RunManifest.from_recorder(make_recorder(), FakeConfig())
    path = manifest.write(tmp_path / "nested" / "run.json")
    assert path.exists()
    loaded = RunManifest.load(path)
    assert loaded.to_dict() == manifest.to_dict()


def test_written_file_is_valid_json_and_schema(tmp_path):
    manifest = RunManifest.from_recorder(make_recorder(), FakeConfig())
    path = manifest.write(tmp_path / "run.json")
    validate_manifest(json.loads(path.read_text()))


def test_validate_rejects_missing_keys():
    with pytest.raises(ValueError, match="missing required key"):
        validate_manifest({"schema_version": 1})


def test_validate_rejects_wrong_types():
    data = RunManifest.from_recorder(make_recorder(), FakeConfig()).to_dict()
    data["spans"] = "not a tree"
    with pytest.raises(ValueError, match="manifest.spans"):
        validate_manifest(data)


def test_validate_recurses_into_span_children():
    data = RunManifest.from_recorder(make_recorder(), FakeConfig()).to_dict()
    data["spans"]["children"][0]["children"] = [{"name": "bad"}]
    with pytest.raises(ValueError, match=r"children\[0\]"):
        validate_manifest(data)


def test_validate_collects_all_errors():
    data = RunManifest.from_recorder(make_recorder(), FakeConfig()).to_dict()
    data["counters"] = []
    data["version"] = 3
    with pytest.raises(ValueError) as excinfo:
        validate_manifest(data)
    message = str(excinfo.value)
    assert "manifest.counters" in message and "manifest.version" in message


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        RunManifest.load(path)


def test_render_mentions_key_sections():
    text = render_manifest(RunManifest.from_recorder(make_recorder(), FakeConfig()))
    assert "spans (wall clock)" in text
    assert "scores.DMG" in text
    assert "matcher.invocations" in text
    assert "hit rate 75.0%" in text
    assert "deadbeefcafe" in text


def test_vcs_describe_returns_string_or_none():
    described = vcs_describe()
    assert described is None or (isinstance(described, str) and described)


class TestVcsDegradation:
    """The git probe records its own failure instead of raising."""

    def test_missing_git_degrades_to_unavailable(self, monkeypatch):
        import repro.runtime.manifest as manifest_mod

        def no_git(*args, **kwargs):
            raise FileNotFoundError("git: command not found")

        monkeypatch.setattr(manifest_mod.subprocess, "run", no_git)
        assert vcs_describe() == "unavailable"

    def test_hung_git_degrades_to_unavailable(self, monkeypatch):
        import subprocess

        import repro.runtime.manifest as manifest_mod

        def hung(*args, **kwargs):
            raise subprocess.TimeoutExpired(cmd="git", timeout=5)

        monkeypatch.setattr(manifest_mod.subprocess, "run", hung)
        assert vcs_describe() == "unavailable"

    def test_non_repository_yields_none(self, monkeypatch):
        from types import SimpleNamespace

        import repro.runtime.manifest as manifest_mod

        def not_a_repo(*args, **kwargs):
            return SimpleNamespace(returncode=128, stdout="")

        monkeypatch.setattr(manifest_mod.subprocess, "run", not_a_repo)
        assert vcs_describe() is None

    def test_unavailable_manifest_still_validates(self, monkeypatch):
        import repro.runtime.manifest as manifest_mod

        monkeypatch.setattr(
            manifest_mod.subprocess,
            "run",
            lambda *a, **k: (_ for _ in ()).throw(OSError("sandboxed")),
        )
        manifest = RunManifest.from_recorder(make_recorder(), FakeConfig())
        assert manifest.vcs_version == "unavailable"
        validate_manifest(manifest.to_dict())


class TestSupervisorRollup:
    def make_chaotic_recorder(self):
        recorder = make_recorder()
        recorder.count("supervisor.retries", 5)
        recorder.count("supervisor.requeued", 2)
        recorder.count("supervisor.timeouts", 1)
        recorder.count("supervisor.pool_restarts", 3)
        recorder.count("supervisor.skipped", 1)
        recorder.count("study.jobs.skipped", 64)
        recorder.count("study.checkpoint.stored", 4)
        recorder.count("study.checkpoint.resumed", 4)
        recorder.gauge("supervisor.degraded", 1.0)
        recorder.observe("supervisor.backoff_seconds", 0.25)
        recorder.observe("supervisor.backoff_seconds", 0.75)
        return recorder

    def test_rollup_captures_recovery_story(self):
        manifest = RunManifest.from_recorder(
            self.make_chaotic_recorder(), FakeConfig()
        )
        assert manifest.supervisor == {
            "retries": 5,
            "requeued": 2,
            "timeouts": 1,
            "pool_restarts": 3,
            "skipped": 1,
            "jobs_skipped": 64,
            "checkpoints_stored": 4,
            "checkpoints_resumed": 4,
            "degraded": True,
            "backoff_seconds_total": 1.0,
        }

    def test_healthy_run_rolls_up_to_zeros(self):
        manifest = RunManifest.from_recorder(make_recorder(), FakeConfig())
        assert manifest.supervisor["retries"] == 0
        assert manifest.supervisor["degraded"] is False
        assert manifest.supervisor["backoff_seconds_total"] == 0.0

    def test_rollup_round_trips_and_renders(self, tmp_path):
        manifest = RunManifest.from_recorder(
            self.make_chaotic_recorder(), FakeConfig()
        )
        loaded = RunManifest.load(manifest.write(tmp_path / "run.json"))
        assert loaded.supervisor == manifest.supervisor
        text = render_manifest(loaded)
        assert "supervisor: 5 retries, 2 requeued, 1 timeouts" in text
        assert "[degraded to serial]" in text
        assert "checkpoints: 4 stored, 4 resumed" in text
