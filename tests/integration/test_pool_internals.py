"""Process-pool internals, exercised explicitly.

``resolve_worker_count`` caps pools at the machine's CPU count, so on a
single-core runner the pool branches never engage on their own.  These
tests force them: the pure worker functions run in-process, and
``parallel_map`` runs with the resolver monkeypatched so a real
two-process pool spins up regardless of core count.
"""

import numpy as np
import pytest

import repro.runtime.parallel as parallel_module
from repro.core.scores import enumerate_dmg_jobs
from repro.core.study import (
    _init_score_worker,
    _run_job_chunk,
    _run_job_chunk_with_metrics,
)
from repro.runtime.parallel import parallel_map
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder


def _square(x):
    return x * x


class TestScoreWorkerFunctions:
    def test_worker_roundtrip_in_process(self, tiny_collection, tiny_config):
        """The initializer + chunk runner produce the same ScoreSet the
        sequential path does."""
        from repro.core.scores import run_jobs
        from repro.matcher import build_matcher

        jobs = enumerate_dmg_jobs(4)
        _init_score_worker(tiny_collection, "bioengine")
        worker_result = _run_job_chunk((jobs, "right_index", "DMG"))
        direct_result = run_jobs(
            jobs, tiny_collection, build_matcher("bioengine"), "right_index", "DMG"
        )
        np.testing.assert_array_equal(
            worker_result.scores, direct_result.scores
        )
        np.testing.assert_array_equal(
            worker_result.subject_gallery, direct_result.subject_gallery
        )


class TestWorkerTelemetry:
    def test_chunk_with_metrics_reports_exact_counts(
        self, tiny_collection, tiny_config
    ):
        """The telemetry variant returns the same ScoreSet plus a metrics
        snapshot whose matcher counts are exact for the chunk."""
        previous = get_recorder()
        try:
            jobs = enumerate_dmg_jobs(4)
            _init_score_worker(tiny_collection, "bioengine", telemetry_active=True)
            result, snapshot = _run_job_chunk_with_metrics(
                (jobs, "right_index", "DMG")
            )
            plain = _run_job_chunk((jobs, "right_index", "DMG"))
            np.testing.assert_array_equal(result.scores, plain.scores)
            assert snapshot["counters"]["matcher.invocations"] == len(jobs)
            assert snapshot["counters"]["matcher.invocations.DMG"] == len(jobs)
            # Snapshots from two chunks merge to the total — the parent-
            # side aggregation contract.
            parent = enable_telemetry()
            parent.merge_metrics(snapshot)
            parent.merge_metrics(snapshot)
            assert parent.metrics.counter_value("matcher.invocations") == 2 * len(
                jobs
            )
        finally:
            set_recorder(previous)

    def test_initializer_defaults_to_no_telemetry(
        self, tiny_collection, tiny_config
    ):
        previous = get_recorder()
        try:
            _init_score_worker(tiny_collection, "bioengine")
            result, snapshot = _run_job_chunk_with_metrics(
                (enumerate_dmg_jobs(4), "right_index", "DMG")
            )
            assert snapshot["counters"] == {}
            assert result.scores.size > 0
        finally:
            set_recorder(previous)


class TestForcedPool:
    def test_parallel_map_with_real_pool(self, monkeypatch):
        monkeypatch.setattr(
            parallel_module, "resolve_worker_count", lambda requested: 2
        )
        items = list(range(300))
        result = parallel_map(_square, items, n_workers=2, chunk_size=37)
        assert result == [x * x for x in items]

    def test_collection_is_picklable_for_pool_shipping(self, tiny_collection):
        """The study ships the whole collection to each worker via the
        pool initializer; it must round-trip through pickle."""
        import pickle

        blob = pickle.dumps(tiny_collection)
        restored = pickle.loads(blob)
        assert len(restored) == len(tiny_collection)
        sample = restored.get(0, "right_index", "D0", 0)
        original = tiny_collection.get(0, "right_index", "D0", 0)
        assert sample.template.minutiae == original.template.minutiae
