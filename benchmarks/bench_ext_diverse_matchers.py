"""X1 — §V further work: "the effects of diverse matchers on
interoperability ... examples where diverse matchers improve the
detection rates".

Runs the cross-device D0→D1 cell through both engines (the BioEngine
substitute and the alignment-free ridge-geometry matcher), fuses the
scores, and compares separability (d-prime) — fusion of diverse engines
should beat the weaker engine and typically the stronger one too.
"""

import numpy as np

from repro.api import (
    d_prime,
    GALLERY_SET,
    PROBE_SET,
    separability_weights,
    sum_fusion,
    weighted_sum_fusion,
)

CELL = ("D0", "D1")
N_IMPOSTORS = 300


def _cell_jobs(study):
    gallery_dev, probe_dev = CELL
    n = study.config.n_subjects
    genuine = [
        (s, gallery_dev, GALLERY_SET, s, probe_dev, PROBE_SET) for s in range(n)
    ]
    rng = np.random.default_rng(417)
    impostor = []
    while len(impostor) < N_IMPOSTORS:
        i, j = rng.integers(0, n, size=2)
        if i == j:
            continue
        job = (int(i), gallery_dev, GALLERY_SET, int(j), probe_dev, PROBE_SET)
        if job not in impostor:
            impostor.append(job)
    return genuine, impostor


def test_ext_diverse_matcher_fusion(benchmark, study, ridge_study, record_artifact):
    genuine_jobs, impostor_jobs = _cell_jobs(study)

    bio_gen = study.custom_scores("DDMG-x1gen", genuine_jobs).scores
    bio_imp = study.custom_scores("DDMI-x1imp", impostor_jobs).scores
    ridge_gen = ridge_study.custom_scores("DDMG-x1gen", genuine_jobs).scores
    ridge_imp = ridge_study.custom_scores("DDMI-x1imp", impostor_jobs).scores

    def fuse():
        weights = separability_weights([bio_gen, ridge_gen], [bio_imp, ridge_imp])
        return (
            weighted_sum_fusion([bio_gen, ridge_gen], weights),
            weighted_sum_fusion([bio_imp, ridge_imp], weights),
            weights,
        )

    fused_gen, fused_imp, weights = benchmark(fuse)

    d_bio = d_prime(bio_gen, bio_imp)
    d_ridge = d_prime(ridge_gen, ridge_imp)
    d_sum = d_prime(sum_fusion([bio_gen, ridge_gen]), sum_fusion([bio_imp, ridge_imp]))
    d_weighted = d_prime(fused_gen, fused_imp)

    text = "\n".join(
        [
            f"X1: diverse matchers on the cross-device cell {CELL[0]} -> {CELL[1]}",
            f"  bioengine  d' = {d_bio:6.2f}",
            f"  ridgecount d' = {d_ridge:6.2f}",
            f"  sum fusion d' = {d_sum:6.2f}",
            f"  weighted   d' = {d_weighted:6.2f}  (weights {np.round(weights, 2)})",
        ]
    )
    record_artifact(text)
    print("\n" + text)

    # Both engines separate; fusion beats the weaker engine.
    assert d_bio > 1.0 and d_ridge > 0.3
    assert d_weighted > min(d_bio, d_ridge)
