"""Geometric distortion models."""

import numpy as np
import pytest

from repro.sensors.distortion import (
    RigidPlacement,
    SmoothWarpField,
    device_signature_field,
    relative_warp_rms,
    sample_placement,
)


class TestRigidPlacement:
    def test_identity(self):
        placement = RigidPlacement(0, 0, 0)
        pts = np.array([[1.0, 2.0], [3.0, -4.0]])
        np.testing.assert_allclose(placement.apply(pts), pts)

    def test_pure_translation(self):
        placement = RigidPlacement(2.0, -1.0, 0.0)
        np.testing.assert_allclose(
            placement.apply(np.array([[0.0, 0.0]])), [[2.0, -1.0]]
        )

    def test_quarter_rotation(self):
        placement = RigidPlacement(0, 0, np.pi / 2)
        np.testing.assert_allclose(
            placement.apply(np.array([[1.0, 0.0]])), [[0.0, 1.0]], atol=1e-12
        )

    def test_angles_rotate(self):
        placement = RigidPlacement(0, 0, np.pi / 2)
        assert placement.apply_angles(np.array([0.0]))[0] == pytest.approx(np.pi / 2)

    def test_angles_wrap(self):
        placement = RigidPlacement(0, 0, np.pi)
        wrapped = placement.apply_angles(np.array([1.5 * np.pi]))[0]
        assert 0 <= wrapped < 2 * np.pi

    def test_preserves_distances(self):
        placement = sample_placement(np.random.default_rng(0), 2.0, 0.3)
        pts = np.random.default_rng(1).normal(size=(10, 2))
        moved = placement.apply(pts)
        orig_d = np.linalg.norm(pts[0] - pts[5])
        new_d = np.linalg.norm(moved[0] - moved[5])
        assert new_d == pytest.approx(orig_d)


class TestSmoothWarpField:
    def test_rms_matches_magnitude(self):
        field = SmoothWarpField(seed=1, magnitude_mm=0.5)
        probe = np.random.default_rng(0).uniform(-14, 14, size=(400, 2))
        rms = float(np.sqrt(np.mean(np.sum(field.displacement(probe) ** 2, axis=1))))
        assert rms == pytest.approx(0.5, rel=0.35)

    def test_zero_magnitude_is_identity(self):
        field = SmoothWarpField(seed=1, magnitude_mm=0.0)
        pts = np.array([[1.0, 2.0], [-3.0, 4.0]])
        np.testing.assert_allclose(field.apply(pts), pts)

    def test_deterministic_by_seed(self):
        a = SmoothWarpField(seed=7, magnitude_mm=0.4)
        b = SmoothWarpField(seed=7, magnitude_mm=0.4)
        pts = np.array([[1.0, 1.0]])
        np.testing.assert_allclose(a.displacement(pts), b.displacement(pts))

    def test_different_seeds_differ(self):
        a = SmoothWarpField(seed=7, magnitude_mm=0.4)
        b = SmoothWarpField(seed=8, magnitude_mm=0.4)
        pts = np.array([[1.0, 1.0]])
        assert not np.allclose(a.displacement(pts), b.displacement(pts))

    def test_smoothness(self):
        # Displacement must vary slowly: nearby points move nearly alike.
        field = SmoothWarpField(seed=3, magnitude_mm=0.6)
        base = field.displacement(np.array([[2.0, 2.0]]))[0]
        near = field.displacement(np.array([[2.3, 2.0]]))[0]
        assert np.linalg.norm(base - near) < 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            SmoothWarpField(seed=1, magnitude_mm=-0.1)
        with pytest.raises(ValueError):
            SmoothWarpField(seed=1, magnitude_mm=0.1, scale_mm=0)

    def test_local_rotation_finite_and_small(self):
        field = SmoothWarpField(seed=5, magnitude_mm=0.5)
        pts = np.random.default_rng(2).uniform(-10, 10, size=(50, 2))
        rotation = field.local_rotation(pts)
        assert np.all(np.isfinite(rotation))
        assert np.max(np.abs(rotation)) < 0.6  # radians; warps are gentle


class TestDeviceSignatures:
    def test_fixed_per_device(self):
        a = device_signature_field("D0", 0.5)
        b = device_signature_field("D0", 0.5)
        pts = np.array([[3.0, -2.0]])
        np.testing.assert_allclose(a.displacement(pts), b.displacement(pts))

    def test_devices_have_distinct_signatures(self):
        a = device_signature_field("D0", 0.5)
        b = device_signature_field("D1", 0.5)
        assert relative_warp_rms(a, b) > 0.2

    def test_relative_warp_zero_for_same_field(self):
        a = device_signature_field("D2", 0.5)
        assert relative_warp_rms(a, a) == 0.0

    def test_relative_warp_scales_with_magnitude(self):
        small = relative_warp_rms(
            device_signature_field("D0", 0.2), device_signature_field("D1", 0.2)
        )
        large = relative_warp_rms(
            device_signature_field("D0", 0.8), device_signature_field("D1", 0.8)
        )
        assert large > small * 2
