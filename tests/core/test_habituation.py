"""Habituation analysis (§V further work)."""

import numpy as np
import pytest

from repro.core.habituation import (
    FirstVsLastResult,
    first_vs_last,
    habituation_slope,
    quality_by_presentation,
    render_habituation,
)


class TestQualityByPresentation:
    def test_covers_all_presentations(self, tiny_collection):
        by_index = quality_by_presentation(tiny_collection)
        # 2 fingers x (4 live-scans x 2 sets + ink x 2) = 20 presentations.
        assert sorted(by_index) == list(range(20))

    def test_livescan_only_excludes_ink_indices(self, tiny_collection):
        full = quality_by_presentation(tiny_collection)
        livescan = quality_by_presentation(tiny_collection, livescan_only=True)
        assert len(livescan) < len(full)

    def test_utilities_in_range(self, tiny_collection):
        for value in quality_by_presentation(tiny_collection).values():
            assert 0.0 <= value <= 1.0


class TestFirstVsLast:
    def test_counts_cover_population(self, tiny_collection, tiny_config):
        result = first_vs_last(tiny_collection)
        assert result.n_subjects == tiny_config.n_subjects

    def test_control_improves_with_practice(self, medium_study):
        """The habituation mechanism: pressure control tightens over the
        session (high-signal view, directly from recorded conditions)."""
        from repro.core.habituation import control_by_presentation

        by_index = control_by_presentation(medium_study.collection())
        indices = sorted(by_index)
        early = np.mean([by_index[i] for i in indices[:4]])
        late = np.mean([by_index[i] for i in indices[-4:]])
        assert late < early

    def test_quality_trend_not_negative(self, medium_study):
        """The paper's open question at image-quality level: the effect
        is weak once device order is controlled for — assert it is at
        least not a deterioration."""
        result = first_vs_last(medium_study.collection())
        assert result.improved >= result.worsened - 5
        assert result.mean_delta > -0.02

    def test_p_value_valid(self, tiny_collection):
        result = first_vs_last(tiny_collection)
        assert 0.0 <= result.p_value <= 1.0

    def test_degenerate_result(self):
        result = FirstVsLastResult(0, 0, 5, 0.0, 1.0)
        assert result.n_subjects == 5


class TestSlope:
    def test_slope_sign_matches_first_vs_last(self, medium_study):
        collection = medium_study.collection()
        slope = habituation_slope(collection)
        result = first_vs_last(collection)
        if result.improved > result.worsened:
            assert slope > -1e-4  # consistent direction (allowing noise)

    def test_empty_collection(self):
        from repro.sensors.protocol import Collection

        assert habituation_slope(Collection()) == 0.0


class TestRender:
    def test_render_contains_summary(self, tiny_collection):
        text = render_habituation(tiny_collection)
        assert "presentation  0" in text
        assert "first vs last" in text
        assert "slope" in text
