"""The shared padded-slice neighbourhood and its consumers."""

import numpy as np
import pytest

from repro.imaging.extraction import (
    _annihilate_close_pairs,
    _annihilate_close_pairs_reference,
    _erode,
)
from repro.imaging.thinning import neighbourhood_planes


def _roll_planes(z):
    """The original np.roll chain (wraparound semantics), for reference."""
    p2 = np.roll(z, 1, axis=0)
    p3 = np.roll(np.roll(z, 1, axis=0), -1, axis=1)
    p4 = np.roll(z, -1, axis=1)
    p5 = np.roll(np.roll(z, -1, axis=0), -1, axis=1)
    p6 = np.roll(z, -1, axis=0)
    p7 = np.roll(np.roll(z, -1, axis=0), 1, axis=1)
    p8 = np.roll(z, 1, axis=1)
    p9 = np.roll(np.roll(z, 1, axis=0), 1, axis=1)
    return p2, p3, p4, p5, p6, p7, p8, p9


class TestNeighbourhoodPlanes:
    def test_matches_rolls_for_border_cleared_input(self):
        rng = np.random.Generator(np.random.PCG64(7))
        z = (rng.random((40, 50)) < 0.4).astype(np.uint8)
        z[0, :] = z[-1, :] = 0
        z[:, 0] = z[:, -1] = 0
        for ours, rolled in zip(neighbourhood_planes(z), _roll_planes(z)):
            np.testing.assert_array_equal(ours, rolled)

    def test_out_of_frame_reads_as_background(self):
        z = np.ones((3, 3), dtype=np.uint8)
        p2, p3, p4, p5, p6, p7, p8, p9 = neighbourhood_planes(z)
        # The pixel above row 0 is outside the frame: zero, not a wrap
        # to the bottom row (np.roll would give 1 here).
        assert p2[0, 1] == 0
        assert p6[2, 1] == 0
        assert p4[1, 2] == 0
        assert p8[1, 0] == 0
        assert p3[0, 2] == 0 and p5[2, 2] == 0 and p7[2, 0] == 0 and p9[0, 0] == 0

    def test_orientation(self):
        z = np.zeros((5, 5), dtype=np.uint8)
        z[1, 2] = 1  # above the centre
        p2 = neighbourhood_planes(z)[0]
        assert p2[2, 2] == 1

    def test_shapes_match_input(self):
        z = np.zeros((4, 7), dtype=np.uint8)
        for plane in neighbourhood_planes(z):
            assert plane.shape == z.shape


class TestErode:
    def test_interior_square_shrinks(self):
        mask = np.zeros((11, 11), dtype=bool)
        mask[2:9, 2:9] = True
        eroded = _erode(mask, 1)
        expected = np.zeros_like(mask)
        expected[3:8, 3:8] = True
        np.testing.assert_array_equal(eroded, expected)

    def test_full_frame_mask_erodes_from_the_border(self):
        # Regression: the roll-based erosion wrapped around, so an
        # all-True mask never shrank and border minutiae survived the
        # interior filter.
        mask = np.ones((10, 10), dtype=bool)
        eroded = _erode(mask, 2)
        assert not eroded[:2, :].any() and not eroded[-2:, :].any()
        assert not eroded[:, :2].any() and not eroded[:, -2:].any()
        assert eroded[2:-2, 2:-2].all()

    def test_zero_iterations_identity(self):
        mask = np.ones((5, 5), dtype=bool)
        np.testing.assert_array_equal(_erode(mask, 0), mask)


class TestAnnihilationParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_on_random_clouds(self, seed):
        rng = np.random.Generator(np.random.PCG64(seed))
        n = int(rng.integers(0, 120))
        points = [
            (int(y), int(x), float(a))
            for y, x, a in zip(
                rng.integers(0, 60, n),
                rng.integers(0, 60, n),
                rng.random(n),
            )
        ]
        for min_distance in (1.0, 4.0, 9.5):
            assert _annihilate_close_pairs(
                points, min_distance
            ) == _annihilate_close_pairs_reference(points, min_distance)

    def test_empty(self):
        assert _annihilate_close_pairs([], 5.0) == []

    def test_greedy_chain_semantics(self):
        # A-B close, B-C close, A-C far: A annihilates with B (its first
        # close partner), leaving C alive — not the all-pairs result
        # where all three would die.
        points = [(0, 0, 0.0), (0, 3, 0.0), (0, 6, 0.0)]
        assert _annihilate_close_pairs(points, 4.0) == [False, False, True]

    def test_far_points_all_survive(self):
        points = [(0, 0, 0.0), (0, 50, 0.0), (50, 0, 0.0)]
        assert _annihilate_close_pairs(points, 5.0) == [True, True, True]
