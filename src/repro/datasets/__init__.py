"""Dataset assembly: the synthetic WVU 2012 collection."""

from .summary import (
    DeviceSummary,
    render_collection_summary,
    summarize_collection,
)
from .wvu2012 import (
    build_collection,
    default_device_order,
    load_quality_arrays,
    subject_artifact_digest,
    subject_session,
    warm_artifacts,
)

__all__ = [
    "build_collection",
    "subject_session",
    "subject_artifact_digest",
    "load_quality_arrays",
    "warm_artifacts",
    "default_device_order",
    "DeviceSummary",
    "summarize_collection",
    "render_collection_summary",
]
