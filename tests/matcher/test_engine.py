"""End-to-end matcher behaviour on synthetic impressions."""

import numpy as np
import pytest

from repro.matcher.engine import BioEngineMatcher
from repro.matcher.types import KIND_ENDING, Minutia, Template


@pytest.fixture(scope="module")
def engine():
    return BioEngineMatcher()


def _rotate_template(template, theta, tx_mm, ty_mm):
    """Rigidly move a template (the matcher should undo this exactly)."""
    px_per_mm = template.pixels_per_mm
    c, s = np.cos(theta), np.sin(theta)
    minutiae = []
    for m in template.minutiae:
        x_mm, y_mm = m.x / px_per_mm, m.y / px_per_mm
        nx = c * x_mm - s * y_mm + tx_mm
        ny = s * x_mm + c * y_mm + ty_mm
        minutiae.append(
            Minutia(
                x=nx * px_per_mm,
                y=ny * px_per_mm,
                angle=float(np.mod(m.angle + theta, 2 * np.pi)),
                kind=m.kind,
                quality=m.quality,
            )
        )
    return Template(
        minutiae=tuple(minutiae),
        width_px=template.width_px,
        height_px=template.height_px,
        resolution_dpi=template.resolution_dpi,
    )


class TestGenuineVsImpostor:
    def test_genuine_beats_impostor(
        self, engine, genuine_template_pair, impostor_template_pair
    ):
        genuine = engine.match(*genuine_template_pair)
        impostor = engine.match(*impostor_template_pair)
        assert genuine > impostor + 5

    def test_impostors_stay_in_low_band(self, engine, tiny_collection):
        scores = []
        for i in range(8):
            for j in range(8):
                if i == j:
                    continue
                a = tiny_collection.get(i, "right_index", "D0", 0).template
                b = tiny_collection.get(j, "right_index", "D0", 1).template
                scores.append(engine.match(b, a))
        # The paper's landmark: impostor scores essentially never cross 7.
        assert np.mean(scores) < 3.0
        assert np.max(scores) < 8.5

    def test_self_match_is_maximal(self, engine, genuine_template_pair):
        template, other = genuine_template_pair
        self_score = engine.match(template, template)
        assert self_score >= engine.match(other, template)
        assert self_score > 15


class TestInvariance:
    def test_rigid_motion_barely_changes_score(self, engine, genuine_template_pair):
        probe, gallery = genuine_template_pair
        base = engine.match(probe, gallery)
        moved = _rotate_template(probe, theta=0.3, tx_mm=2.0, ty_mm=-1.5)
        rotated_score = engine.match(moved, gallery)
        assert rotated_score == pytest.approx(base, abs=2.5)

    def test_symmetric_enough(self, engine, genuine_template_pair):
        probe, gallery = genuine_template_pair
        forward = engine.match(probe, gallery)
        backward = engine.match(gallery, probe)
        assert forward == pytest.approx(backward, abs=3.0)


class TestDegenerateInputs:
    def test_empty_template_scores_zero(self, engine, genuine_template_pair):
        empty = Template(minutiae=(), width_px=800, height_px=750)
        assert engine.match(empty, genuine_template_pair[0]) == 0.0

    def test_tiny_template_scores_zero(self, engine, genuine_template_pair):
        tiny = Template(
            minutiae=(
                Minutia(100, 100, 0.5, KIND_ENDING, 50),
                Minutia(200, 150, 1.5, KIND_ENDING, 50),
            ),
            width_px=800,
            height_px=750,
        )
        assert engine.match(tiny, genuine_template_pair[0]) == 0.0

    def test_none_rejected(self, engine, genuine_template_pair):
        from repro.runtime.errors import MatcherError

        with pytest.raises(MatcherError):
            engine.match(None, genuine_template_pair[0])


class TestDiagnostics:
    def test_detailed_result_fields(self, engine, genuine_template_pair):
        result = engine.match_detailed(*genuine_template_pair)
        assert result.score == result.breakdown.score
        assert result.transform is not None
        assert result.pairing is not None
        assert result.breakdown.n_matched == result.pairing.n_matched

    def test_deterministic(self, engine, genuine_template_pair):
        a = engine.match(*genuine_template_pair)
        b = engine.match(*genuine_template_pair)
        assert a == b

    def test_descriptor_cache_does_not_change_result(self, genuine_template_pair):
        fresh = BioEngineMatcher()
        a = fresh.match(*genuine_template_pair)
        b = fresh.match(*genuine_template_pair)  # cached descriptors now
        assert a == b
