"""Interoperability error-rate matrices (Tables 5 and 6 machinery).

Rows are the enrollment (gallery) device, columns the verification
(probe) device, following the paper's Table 5 layout.  Helpers quantify
the paper's qualitative statements: diagonal dominance ("FNMR in
intra-device match scenarios were found to be lower than those in
inter-device matching") and its exceptions ("the exceptions are data
sets {D1,D1} and {D3,D3}").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sensors.registry import DEVICE_ORDER
from ..stats.roc import fnmr_at_fmr

#: The operating point of Table 5.
TABLE5_FMR = 1e-4  # "fixed FMR of 0.01%"

#: The operating point of Table 6.
TABLE6_FMR = 1e-3  # "fixed FMR of 0.1%"

#: Table 6 keeps images "with NFIQ quality < 3", i.e. levels 1-2.
TABLE6_MAX_NFIQ = 2


def fnmr_interoperability_matrix(
    study,
    target_fmr: float = TABLE5_FMR,
    max_nfiq: Optional[int] = None,
) -> np.ndarray:
    """FNMR at fixed FMR for every (gallery, probe) device cell.

    Parameters
    ----------
    study:
        An :class:`~repro.core.study.InteroperabilityStudy` (duck-typed:
        needs ``genuine_scores`` and ``impostor_scores``).
    target_fmr:
        The fixed false-match rate of the operating point.
    max_nfiq:
        If given, keep only comparisons where both images have NFIQ at
        or below this level (Table 6's filter).
    """
    n = len(DEVICE_ORDER)
    matrix = np.full((n, n), np.nan)
    for i, dev_g in enumerate(DEVICE_ORDER):
        for j, dev_p in enumerate(DEVICE_ORDER):
            genuine = study.genuine_scores(dev_g, dev_p)
            impostor = study.impostor_scores(dev_g, dev_p)
            if max_nfiq is not None:
                genuine = genuine.with_max_nfiq(max_nfiq)
                impostor = impostor.with_max_nfiq(max_nfiq)
            if len(genuine) == 0 or len(impostor) == 0:
                continue
            matrix[i, j] = fnmr_at_fmr(genuine.scores, impostor.scores, target_fmr)
    return matrix


def diagonal_dominance_violations(matrix: np.ndarray) -> List[str]:
    """Devices whose *diagonal* FNMR is not the best of their row.

    The paper found {D1, D1} and {D3, D3} violate diagonal dominance;
    this helper lets tests and benchmarks check which devices violate it
    in a reproduction run.  D4's column is excluded from the comparison
    because every device's worst partner is expected to be ink.
    """
    violations: List[str] = []
    for i, device in enumerate(DEVICE_ORDER):
        row = matrix[i, :]
        diagonal = row[i]
        if np.isnan(diagonal):
            continue
        off = [
            row[j]
            for j in range(len(DEVICE_ORDER))
            if j != i and DEVICE_ORDER[j] != "D4" and not np.isnan(row[j])
        ]
        if off and diagonal > min(off):
            violations.append(device)
    return violations


def mean_interoperability_penalty(matrix: np.ndarray) -> float:
    """Average FNMR increase of off-diagonal cells over their row diagonal.

    A single scalar summarizing "how much interoperability costs"; the
    ablation benchmark drives it toward zero by removing device
    signatures.
    """
    penalties = []
    for i in range(matrix.shape[0]):
        diagonal = matrix[i, i]
        if np.isnan(diagonal):
            continue
        for j in range(matrix.shape[1]):
            if i != j and not np.isnan(matrix[i, j]):
                penalties.append(matrix[i, j] - diagonal)
    return float(np.mean(penalties)) if penalties else float("nan")


def matrix_as_dict(matrix: np.ndarray) -> Dict[Tuple[str, str], float]:
    """Matrix cells keyed by (gallery device, probe device)."""
    return {
        (DEVICE_ORDER[i], DEVICE_ORDER[j]): float(matrix[i, j])
        for i in range(matrix.shape[0])
        for j in range(matrix.shape[1])
    }


__all__ = [
    "fnmr_interoperability_matrix",
    "diagonal_dominance_violations",
    "mean_interoperability_penalty",
    "matrix_as_dict",
    "TABLE5_FMR",
    "TABLE6_FMR",
    "TABLE6_MAX_NFIQ",
]
