"""Experiment-infrastructure substrate: seeding, parallelism, caching.

This package contains no biometrics; it is the plumbing that makes a
616,000-comparison empirical study deterministic, resumable and fast.
"""

from .artifacts import CODE_SALT, TIERS, ArtifactStore, canonical_digest
from .cache import NpzDirectory, ScoreCache
from .config import (
    DEFAULT_SUBJECT_COUNT,
    PAPER_DDMI_BUDGET,
    PAPER_DMI_BUDGET,
    PAPER_SUBJECT_COUNT,
    StudyConfig,
    resolve_worker_count,
)
from .errors import (
    AcquisitionError,
    CacheError,
    CalibrationError,
    ConfigurationError,
    MatcherError,
    PermanentError,
    ReproError,
    SynthesisError,
    TemplateFormatError,
    TransientError,
    classify_failure,
)
from .faults import Fault, FaultInjector, parse_faults
from .manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    render_manifest,
    validate_manifest,
)
from .parallel import (
    chunk_indices,
    parallel_map,
    parallel_map_batched,
    sequential_map,
)
from .progress import NullProgress, ProgressReporter
from .rng import SeedTree, derive_seed
from .supervisor import RetryPolicy, supervised_map_batched
from .shm import SharedTemplateStore, SharedTemplateView, StoreHandle
from .wal import (
    WalCorruptionError,
    WalError,
    WalFollower,
    WalRecord,
    WriteAheadLog,
)
from .telemetry import (
    MetricsRegistry,
    NullRecorder,
    Span,
    TelemetryRecorder,
    configure_logging,
    disable_telemetry,
    enable_telemetry,
    get_logger,
    get_recorder,
    set_recorder,
)

__all__ = [
    "ScoreCache",
    "NpzDirectory",
    "ArtifactStore",
    "canonical_digest",
    "CODE_SALT",
    "TIERS",
    "StudyConfig",
    "resolve_worker_count",
    "DEFAULT_SUBJECT_COUNT",
    "PAPER_SUBJECT_COUNT",
    "PAPER_DMI_BUDGET",
    "PAPER_DDMI_BUDGET",
    "ReproError",
    "ConfigurationError",
    "SynthesisError",
    "AcquisitionError",
    "MatcherError",
    "TemplateFormatError",
    "CalibrationError",
    "CacheError",
    "TransientError",
    "PermanentError",
    "classify_failure",
    "Fault",
    "FaultInjector",
    "parse_faults",
    "RetryPolicy",
    "supervised_map_batched",
    "WriteAheadLog",
    "WalFollower",
    "WalRecord",
    "WalError",
    "WalCorruptionError",
    "parallel_map",
    "parallel_map_batched",
    "sequential_map",
    "chunk_indices",
    "SharedTemplateStore",
    "SharedTemplateView",
    "StoreHandle",
    "ProgressReporter",
    "NullProgress",
    "SeedTree",
    "derive_seed",
    "MetricsRegistry",
    "Span",
    "TelemetryRecorder",
    "NullRecorder",
    "get_recorder",
    "set_recorder",
    "enable_telemetry",
    "disable_telemetry",
    "configure_logging",
    "get_logger",
    "RunManifest",
    "MANIFEST_SCHEMA",
    "validate_manifest",
    "render_manifest",
]
