"""Geometric distortion models for fingerprint acquisition.

The paper attributes interoperability loss to "different arrangements of
sensing elements [that] introduce variations and distortions in the
biometric data" (Section I) and cites Ross & Nadgir's finding that the
*relative distortion* between devices is the quantity to compensate.

This module supplies the geometry toolbox:

* :class:`RigidPlacement` — how the finger lands on the platen
  (translation + rotation), removed later by the matcher's alignment;
* :class:`SmoothWarpField` — a smooth nonrigid displacement field built
  from Gaussian radial basis functions on a control grid.  Two uses:

  - each *device* owns a fixed signature field (its sensing-element
    arrangement).  Same-device comparisons share the signature, so it
    cancels; cross-device comparisons see the difference of two
    signatures — the causal mechanism of the study;
  - each *impression* draws a fresh low-magnitude elastic field
    (skin elasticity under pressure).

A rigid transform cannot absorb these fields (they vary over the pad at
a ~6 mm correlation length), which is exactly why cross-device genuine
scores drop.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..runtime.rng import derive_seed


@dataclass(frozen=True)
class RigidPlacement:
    """Finger placement on the platen: rotation then translation.

    Attributes
    ----------
    dx, dy:
        Translation, millimetres in platen coordinates.
    rotation:
        Rotation about the pad centre, radians.
    """

    dx: float
    dy: float
    rotation: float

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Map finger-space points (n, 2) into platen space."""
        pts = np.asarray(points, dtype=np.float64)
        c, s = np.cos(self.rotation), np.sin(self.rotation)
        rot = np.array([[c, -s], [s, c]])
        return pts @ rot.T + np.array([self.dx, self.dy])

    def apply_angles(self, angles: np.ndarray) -> np.ndarray:
        """Rotate minutia directions by the placement rotation."""
        return np.mod(np.asarray(angles, dtype=np.float64) + self.rotation,
                      2.0 * np.pi)


def sample_placement(
    rng: np.random.Generator,
    translation_sigma_mm: float,
    rotation_sigma_rad: float,
) -> RigidPlacement:
    """Draw a placement; sloppier captures use larger sigmas."""
    return RigidPlacement(
        dx=float(rng.normal(0.0, translation_sigma_mm)),
        dy=float(rng.normal(0.0, translation_sigma_mm)),
        rotation=float(rng.normal(0.0, rotation_sigma_rad)),
    )


class SmoothWarpField:
    """A smooth 2-D displacement field from RBF-interpolated control vectors.

    Control points sit on a regular grid covering ``extent_mm``; each
    carries an i.i.d. Gaussian displacement vector.  The field at any
    point is the Gaussian-kernel-weighted sum of control displacements,
    normalized so the requested ``magnitude_mm`` is the field's RMS
    displacement over the extent.

    Parameters
    ----------
    seed:
        Integer seed; fields are pure functions of their parameters.
    magnitude_mm:
        Target RMS displacement magnitude.
    scale_mm:
        Correlation length (grid spacing and kernel width).
    extent_mm:
        Half-width of the covered square region.
    """

    def __init__(
        self,
        seed: int,
        magnitude_mm: float,
        scale_mm: float = 6.0,
        extent_mm: float = 24.0,
    ) -> None:
        if magnitude_mm < 0:
            raise ValueError("magnitude_mm must be non-negative")
        if scale_mm <= 0:
            raise ValueError("scale_mm must be positive")
        self.magnitude_mm = float(magnitude_mm)
        self.scale_mm = float(scale_mm)
        self.extent_mm = float(extent_mm)
        rng = np.random.Generator(np.random.PCG64(seed))
        coords = np.arange(-extent_mm, extent_mm + scale_mm / 2.0, scale_mm)
        gx, gy = np.meshgrid(coords, coords)
        self._centers = np.column_stack([gx.ravel(), gy.ravel()])
        self._vectors = rng.normal(0.0, 1.0, size=self._centers.shape)
        self._normalize()

    def replace_control_vectors(self, vectors: np.ndarray) -> None:
        """Install externally-constructed control vectors, renormalized.

        Used by :func:`device_signature_field` to give the study devices
        mutually orthogonal signatures; ``vectors`` must match the
        control-grid shape.
        """
        if vectors.shape != self._vectors.shape:
            raise ValueError(
                f"control vector shape {vectors.shape} != grid shape "
                f"{self._vectors.shape}"
            )
        self._vectors = np.array(vectors, dtype=np.float64)
        self._normalize()

    def _normalize(self) -> None:
        """Scale control vectors so the field RMS equals ``magnitude_mm``."""
        if self.magnitude_mm == 0.0:
            self._vectors = np.zeros_like(self._vectors)
            return
        probe = np.linspace(-self.extent_mm * 0.6, self.extent_mm * 0.6, 9)
        px, py = np.meshgrid(probe, probe)
        pts = np.column_stack([px.ravel(), py.ravel()])
        disp = self._raw_displacement(pts)
        rms = float(np.sqrt(np.mean(np.sum(disp**2, axis=1))))
        if rms > 0:
            self._vectors *= self.magnitude_mm / rms

    def _raw_displacement(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=np.float64)
        diff = pts[:, None, :] - self._centers[None, :, :]
        dist_sq = np.sum(diff**2, axis=2)
        weights = np.exp(-dist_sq / (2.0 * self.scale_mm**2))
        return weights @ self._vectors

    def displacement(self, points: np.ndarray) -> np.ndarray:
        """Displacement vectors (n, 2) at ``points`` (n, 2), millimetres."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return self._raw_displacement(pts)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Warp ``points``: ``p + displacement(p)``."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return pts + self._raw_displacement(pts)

    def local_rotation(self, points: np.ndarray, step_mm: float = 0.5) -> np.ndarray:
        """Approximate local rotation (radians) induced by the warp.

        Estimated from the curl of the displacement field by finite
        differences; used to perturb minutia *directions* consistently
        with the positional warp.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        ex = np.array([step_mm, 0.0])
        ey = np.array([0.0, step_mm])
        duy_dx = (self.displacement(pts + ex)[:, 1] - self.displacement(pts - ex)[:, 1]) / (2 * step_mm)
        dux_dy = (self.displacement(pts + ey)[:, 0] - self.displacement(pts - ey)[:, 0]) / (2 * step_mm)
        return 0.5 * (duy_dx - dux_dy)


#: Devices whose signature fields are mutually orthogonalized.
_STUDY_DEVICES = ("D0", "D1", "D2", "D3", "D4")


def _orthogonal_signature_vectors(scale_mm: float) -> dict:
    """Orthonormal control-vector sets for the five study devices.

    The sensing-element arrangements of different vendors are unrelated,
    so their systematic warps should be uncorrelated as *functions*.  A
    random draw only achieves that in expectation — an unlucky pair of
    devices can share a large field component, which would silently
    understate the interoperability effect for that pair.  Instead the
    five raw draws are QR-orthogonalized over the shared control grid,
    making every pairwise field correlation exactly zero by
    construction.
    """
    template = SmoothWarpField(seed=0, magnitude_mm=1.0, scale_mm=scale_mm)
    centers = template._centers
    n_centers = centers.shape[0]

    # Field-space sampling operator: displacement at probe points is
    # linear in the control vectors, f = W v (per component), so
    # Gram-Schmidt with field-space inner products but control-space
    # updates yields *exactly* orthogonal displacement fields.
    probe = np.linspace(-14.0, 14.0, 15)
    px, py = np.meshgrid(probe, probe)
    pts = np.column_stack([px.ravel(), py.ravel()])
    diff = pts[:, None, :] - centers[None, :, :]
    weights = np.exp(-np.sum(diff**2, axis=2) / (2.0 * scale_mm**2))

    def field_samples(vectors: np.ndarray) -> np.ndarray:
        return (weights @ vectors).ravel()

    control: dict = {}
    fields: list = []
    for device_id in _STUDY_DEVICES:
        seed = derive_seed(0x5E0501, "device-signature", device_id)
        rng = np.random.Generator(np.random.PCG64(seed))
        v = rng.normal(0.0, 1.0, size=(n_centers, 2))
        f = field_samples(v)
        for prev_v, prev_f in fields:
            coeff = float(np.dot(f, prev_f) / np.dot(prev_f, prev_f))
            v = v - coeff * prev_v
            f = f - coeff * prev_f
        fields.append((v, f))
        control[device_id] = v
    return control


_SIGNATURE_VECTOR_CACHE: dict = {}


def device_signature_field(
    device_id: str, magnitude_mm: float, scale_mm: float = 6.5
) -> SmoothWarpField:
    """The fixed systematic warp of a device's sensing-element arrangement.

    Depends only on the device identity — not on the study seed — because
    it is a property of the hardware: every impression ever taken on
    device ``device_id`` shares it.  The five study devices receive
    mutually *orthogonal* fields (see
    :func:`_orthogonal_signature_vectors`); unknown device ids fall back
    to an independent hash-seeded draw.
    """
    field = SmoothWarpField(
        seed=derive_seed(0x5E0501, "device-signature", device_id),
        magnitude_mm=magnitude_mm,
        scale_mm=scale_mm,
    )
    if device_id in _STUDY_DEVICES:
        if scale_mm not in _SIGNATURE_VECTOR_CACHE:
            _SIGNATURE_VECTOR_CACHE[scale_mm] = _orthogonal_signature_vectors(scale_mm)
        field.replace_control_vectors(_SIGNATURE_VECTOR_CACHE[scale_mm][device_id])
    return field


def relative_warp_rms(
    field_a: SmoothWarpField,
    field_b: SmoothWarpField,
    extent_mm: float = 12.0,
    n_probe: int = 13,
) -> float:
    """RMS of the displacement *difference* between two fields.

    This is the quantity Ross & Nadgir's calibration model targets; the
    ablation benchmark uses it to show cross-device genuine-score loss
    scales with it.
    """
    probe = np.linspace(-extent_mm, extent_mm, n_probe)
    px, py = np.meshgrid(probe, probe)
    pts = np.column_stack([px.ravel(), py.ravel()])
    diff = field_a.displacement(pts) - field_b.displacement(pts)
    return float(np.sqrt(np.mean(np.sum(diff**2, axis=1))))


__all__ = [
    "RigidPlacement",
    "sample_placement",
    "SmoothWarpField",
    "device_signature_field",
    "relative_warp_rms",
]
