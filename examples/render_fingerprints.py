#!/usr/bin/env python3
"""Visualize the synthetic fingerprints behind the study.

Synthesizes master fingers of each Galton-Henry pattern class, renders
their ridge images, and writes PGM files plus terminal previews.  Also
shows a dry-skin rendering — the quality effect that drives the NFIQ
analysis of Section IV.D.

Run:
    python examples/render_fingerprints.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.api import (
    ascii_preview,
    PatternClass,
    render_ridge_image,
    synthesize_master_finger,
    write_pgm,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("fingerprint_renders")
    out_dir.mkdir(parents=True, exist_ok=True)

    rng = np.random.default_rng(2013)
    for pattern in PatternClass:
        finger = synthesize_master_finger(rng, pattern=pattern)
        image = render_ridge_image(finger, pixels_per_mm=8.0)
        path = out_dir / f"{pattern.value}.pgm"
        write_pgm(image, path)
        print(f"=== {pattern.value} "
              f"({finger.n_minutiae} minutiae, "
              f"{len(finger.fld.singularities)} singularities) -> {path}")
        print(ascii_preview(image, max_width=64))
        print()

    # Dry skin: same finger, degraded ridges.
    finger = synthesize_master_finger(rng, pattern=PatternClass.RIGHT_LOOP)
    dry = render_ridge_image(
        finger, pixels_per_mm=8.0, dryness=0.8, rng=np.random.default_rng(1)
    )
    write_pgm(dry, out_dir / "right_loop_dry_skin.pgm")
    print("=== right loop with dry skin (NFIQ-degrading speckle)")
    print(ascii_preview(dry, max_width=64))


if __name__ == "__main__":
    main()
