"""Thin-plate-spline inter-sensor compensation."""

import numpy as np
import pytest

from repro.calibration.tps import (
    MIN_CONTROL_POINTS,
    apply_tps_to_template,
    control_points_from_matches,
    fit_tps,
)
from repro.runtime.errors import CalibrationError
from repro.sensors.distortion import SmoothWarpField


@pytest.fixture()
def warped_correspondences():
    """Control points related by a smooth synthetic warp."""
    rng = np.random.default_rng(0)
    source = rng.uniform(-12, 12, size=(60, 2))
    warp = SmoothWarpField(seed=5, magnitude_mm=0.6)
    return source, warp.apply(source), warp


class TestFit:
    def test_interpolates_smooth_warp(self, warped_correspondences):
        source, target, warp = warped_correspondences
        spline = fit_tps(source[:40], target[:40], regularization=0.1)
        held_out = source[40:]
        predicted = spline.transform(held_out)
        truth = warp.apply(held_out)
        rms = float(np.sqrt(np.mean(np.sum((predicted - truth) ** 2, axis=1))))
        # Residual after compensation must be much smaller than the warp.
        assert rms < 0.25

    def test_identity_mapping(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(-10, 10, size=(30, 2))
        spline = fit_tps(pts, pts)
        np.testing.assert_allclose(spline.transform(pts), pts, atol=1e-6)
        assert spline.bending_energy_proxy() < 0.05

    def test_affine_mapping_recovered(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(-10, 10, size=(30, 2))
        theta = 0.2
        rot = np.array(
            [[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]]
        )
        target = pts @ rot.T + np.array([1.0, -2.0])
        spline = fit_tps(pts, target, regularization=0.01)
        probe = rng.uniform(-8, 8, size=(10, 2))
        np.testing.assert_allclose(
            spline.transform(probe), probe @ rot.T + np.array([1.0, -2.0]),
            atol=0.05,
        )

    def test_too_few_points(self):
        pts = np.zeros((MIN_CONTROL_POINTS - 1, 2))
        with pytest.raises(CalibrationError, match="control points"):
            fit_tps(pts, pts)

    def test_shape_mismatch(self):
        with pytest.raises(CalibrationError):
            fit_tps(np.zeros((10, 2)), np.zeros((9, 2)))


class TestPipelineIntegration:
    def test_control_points_from_genuine_matches(self, tiny_collection, matcher):
        probes, galleries = [], []
        for sid in range(10):
            probes.append(tiny_collection.get(sid, "right_index", "D1", 1).template)
            galleries.append(tiny_collection.get(sid, "right_index", "D0", 0).template)
        source, target = control_points_from_matches(matcher, probes, galleries)
        assert source.shape == target.shape
        assert source.shape[0] >= MIN_CONTROL_POINTS
        # Residuals are bounded by the pairing tolerance.
        residuals = np.sqrt(np.sum((source - target) ** 2, axis=1))
        assert residuals.max() < 1.0

    def test_apply_to_template_preserves_structure(self, tiny_collection):
        template = tiny_collection.get(0, "right_index", "D0", 0).template
        rng = np.random.default_rng(3)
        pts = rng.uniform(-10, 10, size=(20, 2))
        spline = fit_tps(pts, pts)  # identity
        moved = apply_tps_to_template(template, spline)
        assert len(moved) == len(template)
        np.testing.assert_allclose(
            moved.positions_mm(), template.positions_mm(), atol=1e-4
        )
        assert moved.minutiae[0].angle == template.minutiae[0].angle

    def test_compensation_improves_cross_device_scores(
        self, tiny_collection, matcher
    ):
        """The headline claim of Ross & Nadgir, on our pipeline."""
        train_probes, train_galleries = [], []
        for sid in range(6):
            train_probes.append(
                tiny_collection.get(sid, "right_index", "D4", 0).template
            )
            train_galleries.append(
                tiny_collection.get(sid, "right_index", "D0", 0).template
            )
        source, target = control_points_from_matches(
            matcher, train_probes, train_galleries, max_pairs=200
        )
        spline = fit_tps(source, target, regularization=0.5)

        raw, compensated = [], []
        for sid in range(6, 10):
            probe = tiny_collection.get(sid, "right_index", "D4", 0).template
            gallery = tiny_collection.get(sid, "right_index", "D0", 0).template
            raw.append(matcher.match(probe, gallery))
            compensated.append(
                matcher.match(apply_tps_to_template(probe, spline), gallery)
            )
        # The spline learned (part of) the D4->D0 systematic warp.  With
        # only 6 training and 4 test subjects the improvement is noisy, so
        # this asserts the conservative property: compensation must not
        # systematically destroy the scores.  The benchmark
        # (bench_ext_tps_calibration) asserts the improvement at a
        # statistically meaningful scale.
        assert np.mean(compensated) >= np.mean(raw) - 1.5
