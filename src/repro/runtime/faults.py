"""Deterministic fault injection — the chaos harness behind the supervisor.

A fault-tolerant execution layer is only trustworthy if its failure
paths are *exercised*, and real crashes are rare and unreproducible.
This module injects them on demand, deterministically:

* ``REPRO_FAULTS="crash:0.1,hang:1"`` names the faults of a run.  A
  value below ``1.0`` is a per-task probability (decided by a seeded
  hash of the task key, so the same tasks fail on every replay); an
  integer value is an exact fire count claimed first-come across all
  worker processes.
* Every fault fires **at most once per task**, recorded as a marker
  file in a shared ledger directory — so a retried task succeeds, which
  is exactly the contract the supervisor needs to converge.
* ``kind@substring`` restricts a fault to task keys containing
  ``substring`` (``permanent@DMG-chunk0003:1`` kills one known chunk),
  which makes targeted chaos tests trivial to write.

Fault kinds
-----------
``crash``
    ``os._exit(17)`` in the worker — the parent sees a broken pool.
``hang``
    Sleep past any reasonable batch timeout (param: seconds, default
    3600) — the parent must detect the stall and kill the pool.
``transient`` / ``permanent``
    Raise :class:`~repro.runtime.errors.TransientError` /
    :class:`~repro.runtime.errors.PermanentError` from the task.
``corrupt``
    Truncate a just-written cache entry (applied by
    :meth:`~repro.runtime.cache.NpzDirectory.store` through
    :func:`corrupt_hook`), exercising corruption-as-miss recovery.
``wal_torn``
    Tear the frame a write-ahead log just appended — truncate it
    mid-frame and fail the append, exactly what a crash between
    ``write()`` and ``fsync()`` leaves behind.  Replay must truncate
    the torn tail; the caller must *not* have acked.
``wal_corrupt``
    Flip a byte inside a just-appended (and acked) WAL frame,
    simulating latent media corruption.  Replay must *refuse* the
    record once later appends make it mid-log — corruption-as-truth is
    never an option, and the refusal is loud by design.
``wal_stall``
    Sleep inside the WAL fsync path (param: seconds, default 1.0),
    surfacing slow-disk behavior in append latency and metrics.

Faults are injected only inside supervised pool workers (and the cache
write hook); library code never calls :func:`perturb` on its own hot
path when ``REPRO_FAULTS`` is unset — the check is one environment
lookup.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from .errors import ConfigurationError, PermanentError, TransientError

#: Environment variable naming the fault plan, e.g. ``"crash:0.1,hang:1"``.
ENV_SPEC = "REPRO_FAULTS"

#: Environment variable pointing at the shared once-only marker ledger.
ENV_LEDGER = "REPRO_FAULTS_DIR"

#: Environment variable seeding the probability decisions (default 0).
ENV_SEED = "REPRO_FAULTS_SEED"

#: Fault kinds applied inside a task (``corrupt`` instead hooks writes).
TASK_FAULT_KINDS = ("crash", "hang", "transient", "permanent")

#: Fault kinds hooked into the write-ahead log (:mod:`repro.runtime.wal`).
WAL_FAULT_KINDS = ("wal_torn", "wal_corrupt", "wal_stall")

#: All recognised kinds.
FAULT_KINDS = TASK_FAULT_KINDS + ("corrupt",) + WAL_FAULT_KINDS

#: Default sleep of a ``hang`` fault — far past any batch timeout.
DEFAULT_HANG_SECONDS = 3600.0

#: Default sleep of a ``wal_stall`` fault — long enough to show up in
#: append latency, short enough for chaos tests.
DEFAULT_WAL_STALL_SECONDS = 1.0

#: Exit status of an injected ``crash`` (distinctive in worker logs).
CRASH_EXIT_STATUS = 17


@dataclass(frozen=True)
class Fault:
    """One entry of a fault plan.

    ``rate`` below 1.0 is a per-task probability; 1.0 or more is an
    exact integer fire count.  ``target`` is a task-key substring filter
    (empty matches every task); ``param`` is kind-specific (the sleep
    seconds of ``hang``).
    """

    kind: str
    rate: float
    target: str = ""
    param: Optional[float] = None

    @property
    def is_count(self) -> bool:
        """Whether this fault fires an exact number of times."""
        return self.rate >= 1.0

    @property
    def count(self) -> int:
        """The fire budget of a count-style fault."""
        return int(self.rate)


def parse_faults(spec: str) -> Tuple[Fault, ...]:
    """Parse a ``REPRO_FAULTS`` plan string.

    Grammar: comma-separated ``kind[@target]:rate[:param]`` entries.
    Raises :class:`ConfigurationError` on unknown kinds or unparsable
    numbers, naming the offending entry — a typo in a chaos run must
    fail loudly, not silently inject nothing.
    """
    faults = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ConfigurationError(
                f"fault entry {entry!r} is not 'kind[@target]:rate[:param]'"
            )
        kind, _, target = parts[0].partition("@")
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r} in {entry!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        try:
            rate = float(parts[1])
        except ValueError as exc:
            raise ConfigurationError(
                f"fault entry {entry!r}: rate {parts[1]!r} is not a number"
            ) from exc
        if rate <= 0:
            raise ConfigurationError(f"fault entry {entry!r}: rate must be > 0")
        param: Optional[float] = None
        if len(parts) == 3:
            try:
                param = float(parts[2])
            except ValueError as exc:
                raise ConfigurationError(
                    f"fault entry {entry!r}: param {parts[2]!r} is not a number"
                ) from exc
        faults.append(Fault(kind=kind, rate=rate, target=target, param=param))
    return tuple(faults)


def digest_fraction(seed: int, *parts: object) -> float:
    """Deterministic uniform [0, 1) from a seed and arbitrary parts.

    The one randomness primitive of the robustness layer: fault
    decisions and retry-backoff jitter both hash their identifying key
    through it, so replays are bit-identical.
    """
    payload = ("\x1f".join(str(p) for p in (seed,) + parts)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


def _marker_token(*parts: object) -> str:
    """Short filesystem-safe token for a ledger marker."""
    payload = ("\x1f".join(str(p) for p in parts)).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=10).hexdigest()


class FaultInjector:
    """Applies a fault plan deterministically, once per (fault, task).

    The ledger directory is the cross-process coordination point: a
    fault claims a marker file with ``O_CREAT | O_EXCL`` *before* it
    fires, so a crash-then-retry of the same task finds the marker and
    proceeds cleanly.  All decisions derive from ``(seed, kind, task
    key)`` — replaying a run with the same plan, seed and a fresh ledger
    injects the identical faults.
    """

    def __init__(
        self, faults: Tuple[Fault, ...], ledger: os.PathLike, seed: int = 0
    ) -> None:
        self.faults = faults
        self.ledger = Path(ledger)
        self.seed = seed

    @classmethod
    def from_environment(cls) -> Optional["FaultInjector"]:
        """The injector named by ``REPRO_FAULTS``, or ``None`` when unset.

        Requires ``REPRO_FAULTS_DIR`` to point at the marker ledger; the
        supervisor creates one (and exports the variable to its workers)
        via :func:`ensure_ledger` before the first pool starts.
        """
        spec = os.environ.get(ENV_SPEC)
        if not spec:
            return None
        ledger = os.environ.get(ENV_LEDGER)
        if not ledger:
            return None
        seed = int(os.environ.get(ENV_SEED, "0"))
        return cls(parse_faults(spec), ledger, seed=seed)

    def _claim(self, marker: str) -> bool:
        """Atomically claim a marker; False when already claimed."""
        self.ledger.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                self.ledger / marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _should_fire(self, fault: Fault, task_key: str) -> bool:
        """Decide-and-claim one fault for one task."""
        if fault.target and fault.target not in task_key:
            return False
        if fault.is_count:
            # Claim the next free slot of the fire budget; losing every
            # race means the budget is spent.
            token = _marker_token(fault.kind, fault.target, task_key)
            if (self.ledger / f"{fault.kind}-task-{token}").exists():
                return False
            for slot in range(fault.count):
                if self._claim(f"{fault.kind}{fault.target}-slot{slot}"):
                    self._claim(f"{fault.kind}-task-{token}")
                    return True
            return False
        if digest_fraction(self.seed, fault.kind, task_key) >= fault.rate:
            return False
        token = _marker_token(fault.kind, fault.target, task_key)
        return self._claim(f"{fault.kind}-task-{token}")

    def perturb(self, task_key: str) -> None:
        """Fire the task-scoped faults due for ``task_key`` (if any)."""
        for fault in self.faults:
            if fault.kind not in TASK_FAULT_KINDS:
                continue
            if not self._should_fire(fault, task_key):
                continue
            if fault.kind == "crash":
                os._exit(CRASH_EXIT_STATUS)
            if fault.kind == "hang":
                time.sleep(fault.param or DEFAULT_HANG_SECONDS)
                continue
            if fault.kind == "transient":
                raise TransientError(
                    f"injected transient fault for task {task_key!r}"
                )
            raise PermanentError(
                f"injected permanent fault for task {task_key!r}"
            )

    def wal_tear(
        self, path: os.PathLike, frame_offset: int, frame_length: int, key: str
    ) -> bool:
        """Tear a just-appended WAL frame (``wal_torn`` faults).

        Truncates the log so only the first half of the frame survives —
        the on-disk state of a crash between write and fsync.  Returns
        whether a tear fired; the WAL raises so the op is never acked.
        """
        for fault in self.faults:
            if fault.kind != "wal_torn":
                continue
            if not self._should_fire(fault, key):
                continue
            keep = frame_offset + max(1, frame_length // 2)
            with open(path, "r+b") as handle:
                handle.truncate(keep)
            return True
        return False

    def wal_corrupt(
        self, path: os.PathLike, frame_offset: int, frame_length: int, key: str
    ) -> bool:
        """Flip one byte inside an appended WAL frame (``wal_corrupt``).

        The frame header stays intact (length still parses) but the
        payload no longer matches its CRC — the latent-media-corruption
        shape replay must refuse once the record is mid-log.
        """
        for fault in self.faults:
            if fault.kind != "wal_corrupt":
                continue
            if not self._should_fire(fault, key):
                continue
            position = frame_offset + frame_length // 2
            with open(path, "r+b") as handle:
                handle.seek(position)
                byte = handle.read(1)
                handle.seek(position)
                handle.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")
            return True
        return False

    def wal_stall(self, key: str) -> float:
        """Seconds a ``wal_stall`` fault delays this fsync (0.0 = none)."""
        for fault in self.faults:
            if fault.kind != "wal_stall":
                continue
            if not self._should_fire(fault, key):
                continue
            return fault.param or DEFAULT_WAL_STALL_SECONDS
        return 0.0

    def corrupt_file(self, path: os.PathLike, key: str) -> bool:
        """Truncate a freshly written store entry (``corrupt`` faults).

        Returns whether a corruption fired; at most once per key so the
        rewrite after the corruption is detected survives.
        """
        for fault in self.faults:
            if fault.kind != "corrupt":
                continue
            if not self._should_fire(fault, key):
                continue
            target = Path(path)
            size = target.stat().st_size
            with open(target, "r+b") as handle:
                handle.truncate(max(1, size // 2))
            return True
        return False


def faults_requested() -> bool:
    """Whether the environment names a fault plan at all."""
    return bool(os.environ.get(ENV_SPEC))


def ensure_ledger() -> Optional[str]:
    """Make sure a requested fault plan has a ledger directory.

    Called by the supervisor in the *parent* before starting a pool, so
    workers inherit ``REPRO_FAULTS_DIR`` and share one set of markers.
    Returns the ledger path, or ``None`` when no faults are requested.
    """
    if not faults_requested():
        return None
    ledger = os.environ.get(ENV_LEDGER)
    if not ledger:
        ledger = tempfile.mkdtemp(prefix="repro-faults-")
        os.environ[ENV_LEDGER] = ledger
    return ledger


def perturb(task_key: str) -> None:
    """Apply the environment's fault plan to one task (worker-side)."""
    injector = FaultInjector.from_environment()
    if injector is not None:
        injector.perturb(task_key)


def corrupt_hook(path: os.PathLike, key: str) -> bool:
    """Apply any ``corrupt`` fault to a just-written store entry."""
    if not faults_requested():
        return False
    injector = FaultInjector.from_environment()
    if injector is None:
        return False
    return injector.corrupt_file(path, key)


def wal_torn_hook(
    path: os.PathLike, frame_offset: int, frame_length: int, key: str
) -> bool:
    """Apply any ``wal_torn`` fault to a just-appended WAL frame."""
    if not faults_requested():
        return False
    injector = FaultInjector.from_environment()
    if injector is None:
        return False
    return injector.wal_tear(path, frame_offset, frame_length, key)


def wal_corrupt_hook(
    path: os.PathLike, frame_offset: int, frame_length: int, key: str
) -> bool:
    """Apply any ``wal_corrupt`` fault to a just-appended WAL frame."""
    if not faults_requested():
        return False
    injector = FaultInjector.from_environment()
    if injector is None:
        return False
    return injector.wal_corrupt(path, frame_offset, frame_length, key)


def wal_stall_hook(key: str) -> float:
    """Seconds any ``wal_stall`` fault delays this WAL fsync."""
    if not faults_requested():
        return 0.0
    injector = FaultInjector.from_environment()
    if injector is None:
        return 0.0
    return injector.wal_stall(key)


__all__ = [
    "Fault",
    "FaultInjector",
    "digest_fraction",
    "parse_faults",
    "perturb",
    "corrupt_hook",
    "wal_torn_hook",
    "wal_corrupt_hook",
    "wal_stall_hook",
    "ensure_ledger",
    "faults_requested",
    "ENV_SPEC",
    "ENV_LEDGER",
    "ENV_SEED",
    "FAULT_KINDS",
    "WAL_FAULT_KINDS",
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_WAL_STALL_SECONDS",
    "CRASH_EXIT_STATUS",
]
