"""Persistent gallery index: quality gate, CRUD, restart recovery."""

import json

import numpy as np
import pytest

from repro.core.prefilter import DESCRIPTOR_DIM, descriptor_vector
from repro.matcher.types import template_from_arrays
from repro.runtime.errors import ConfigurationError
from repro.service.gallery import (
    DEFAULT_MAX_NFIQ_LEVEL,
    EnrollmentRejected,
    GalleryIndex,
    GalleryRecord,
    UnknownIdentityError,
)

FINGER = "right_index"


def _low_quality_template():
    """Four low-confidence minutiae huddled in a corner: NFIQ level 5."""
    return template_from_arrays(
        positions_px=[[10.0, 10.0], [14.0, 12.0], [11.0, 16.0], [15.0, 15.0]],
        angles=[0.1, 1.0, 2.0, 3.0],
        kinds=[1, 2, 1, 2],
        qualities=[10, 12, 9, 11],
        width_px=300,
        height_px=400,
    )


@pytest.fixture()
def gallery(tmp_path):
    return GalleryIndex(tmp_path / "gallery")


class TestEnroll:
    def test_enroll_and_get(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        record = gallery.enroll("subject-0", template, device="D0")
        assert isinstance(record, GalleryRecord)
        assert record.identity == "subject-0"
        assert record.device == "D0"
        assert 1 <= record.nfiq_level <= DEFAULT_MAX_NFIQ_LEVEL
        assert 0.0 < record.nfiq_utility <= 1.0
        assert gallery.get("subject-0", device="D0").template == template
        assert ("D0", "subject-0") in gallery
        assert len(gallery) == 1

    def test_reenroll_replaces(self, gallery, tiny_collection):
        first = tiny_collection.get(0, FINGER, "D0", 0).template
        second = tiny_collection.get(0, FINGER, "D0", 1).template
        gallery.enroll("subject-0", first, device="D0")
        gallery.enroll("subject-0", second, device="D0")
        assert len(gallery) == 1
        assert gallery.get("subject-0", device="D0").template == second

    def test_quality_gate_rejects_level_5(self, gallery):
        with pytest.raises(EnrollmentRejected) as excinfo:
            gallery.enroll("mushy", _low_quality_template())
        assert excinfo.value.identity == "mushy"
        assert excinfo.value.level == 5
        assert excinfo.value.max_level == DEFAULT_MAX_NFIQ_LEVEL
        assert len(gallery) == 0

    def test_permissive_ceiling_admits_level_5(self, tmp_path):
        lax = GalleryIndex(tmp_path / "lax", max_nfiq_level=5)
        record = lax.enroll("mushy", _low_quality_template())
        assert record.nfiq_level == 5

    def test_invalid_names_rejected(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        with pytest.raises(ConfigurationError):
            gallery.enroll("no spaces", template)
        with pytest.raises(ConfigurationError):
            gallery.enroll("fine", template, device="../escape")
        with pytest.raises(ConfigurationError):
            gallery.enroll("", template)

    def test_invalid_ceiling_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            GalleryIndex(tmp_path / "bad", max_nfiq_level=0)
        with pytest.raises(ConfigurationError):
            GalleryIndex(tmp_path / "bad", max_nfiq_level=6)


class TestDelete:
    def test_delete_removes(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        gallery.enroll("subject-0", template, device="D0")
        gallery.delete("subject-0", device="D0")
        assert len(gallery) == 0
        with pytest.raises(UnknownIdentityError):
            gallery.get("subject-0", device="D0")

    def test_delete_unknown_raises(self, gallery):
        with pytest.raises(UnknownIdentityError) as excinfo:
            gallery.delete("ghost", device="D9")
        assert excinfo.value.identity == "ghost"
        assert excinfo.value.device == "D9"


class TestLookups:
    @pytest.fixture()
    def populated(self, gallery, tiny_collection):
        for device in ("D0", "D1"):
            for sid in range(3):
                gallery.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, device, 0).template,
                    device=device,
                )
        return gallery

    def test_devices_and_identities(self, populated):
        assert populated.devices() == ["D0", "D1"]
        assert populated.identities("D0") == [
            "subject-0", "subject-1", "subject-2",
        ]
        assert populated.identities() == [
            "subject-0", "subject-1", "subject-2",
        ]

    def test_candidates_per_device_uses_bare_keys(self, populated):
        candidates = populated.candidates(device="D0")
        assert sorted(candidates) == ["subject-0", "subject-1", "subject-2"]

    def test_candidates_cross_device_qualifies_keys(self, populated):
        candidates = populated.candidates()
        assert len(candidates) == 6
        assert "D0/subject-0" in candidates and "D1/subject-0" in candidates

    def test_stats_shape(self, populated):
        stats = populated.stats()
        assert stats["enrolled"] == 6
        assert stats["devices"] == {"D0": 3, "D1": 3}
        assert stats["max_nfiq_level"] == DEFAULT_MAX_NFIQ_LEVEL
        assert stats["disk"]["entries"] == 6
        assert stats["disk"]["bytes"] > 0


class TestPersistence:
    def test_survives_restart(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        first = GalleryIndex(root)
        for sid in range(3):
            first.enroll(
                f"subject-{sid}",
                tiny_collection.get(sid, FINGER, "D0", 0).template,
                device="D0",
            )
        original = first.get("subject-1", device="D0")

        reborn = GalleryIndex(root)
        assert len(reborn) == 3
        restored = reborn.get("subject-1", device="D0")
        assert restored.nfiq_level == original.nfiq_level
        assert restored.nfiq_utility == pytest.approx(original.nfiq_utility)
        np.testing.assert_array_equal(
            restored.template.positions_px(), original.template.positions_px()
        )
        np.testing.assert_array_equal(
            restored.template.angles(), original.template.angles()
        )
        assert restored.template.width_px == original.template.width_px

    def test_restored_templates_score_identically(
        self, tmp_path, tiny_collection, matcher
    ):
        root = tmp_path / "gallery"
        enrolled = tiny_collection.get(2, FINGER, "D0", 0).template
        GalleryIndex(root).enroll("subject-2", enrolled, device="D0")
        probe = tiny_collection.get(2, FINGER, "D0", 1).template
        restored = GalleryIndex(root).get("subject-2", device="D0").template
        assert matcher.match(probe, restored) == matcher.match(probe, enrolled)

    def test_corrupt_record_healed_from_wal(self, tmp_path, tiny_collection):
        # A torn shard is dropped at reload, but the enrollment is still
        # in the WAL, so replay re-materializes it: nothing acked is lost.
        root = tmp_path / "gallery"
        first = GalleryIndex(root)
        for sid in range(2):
            first.enroll(
                f"subject-{sid}",
                tiny_collection.get(sid, FINGER, "D0", 0).template,
                device="D0",
            )
        victim = root / "D0" / "subject-0.npz"
        assert victim.exists()
        victim.write_bytes(b"torn mid-write")

        reborn = GalleryIndex(root)
        assert len(reborn) == 2
        assert ("D0", "subject-0") in reborn
        assert reborn.corrupt_dropped == 1

    def test_corrupt_record_dropped_and_counted_without_wal(
        self, tmp_path, tiny_collection
    ):
        # Once the WAL no longer covers a record (compacted away), a
        # corrupt shard is dropped — and counted, not just logged.
        import shutil

        root = tmp_path / "gallery"
        first = GalleryIndex(root)
        for sid in range(2):
            first.enroll(
                f"subject-{sid}",
                tiny_collection.get(sid, FINGER, "D0", 0).template,
                device="D0",
            )
        (root / "D0" / "subject-0.npz").write_bytes(b"torn mid-write")
        shutil.rmtree(root / "__wal__")

        reborn = GalleryIndex(root)
        assert len(reborn) == 1
        assert ("D0", "subject-1") in reborn
        assert ("D0", "subject-0") not in reborn
        assert reborn.corrupt_dropped == 1
        assert reborn.stats()["corrupt_dropped"] == 1

    def test_foreign_files_ignored_at_reload(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        GalleryIndex(root).enroll(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 0).template,
            device="D0",
        )
        (root / "D0" / "notes.txt").write_text("not a record")
        (root / "has space").mkdir()
        assert len(GalleryIndex(root)) == 1


class TestDescriptorIndex:
    """Tentpole: the per-shard descriptor matrix behind two-stage identify."""

    @pytest.fixture()
    def populated(self, gallery, tiny_collection):
        for device in ("D0", "D1"):
            for sid in range(3):
                gallery.enroll(
                    f"subject-{sid}",
                    tiny_collection.get(sid, FINGER, device, 0).template,
                    device=device,
                )
        return gallery

    def test_enroll_stores_descriptor_on_record(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        record = gallery.enroll("subject-0", template, device="D0")
        assert record.descriptor.shape == (DESCRIPTOR_DIM,)
        np.testing.assert_allclose(record.descriptor, descriptor_vector(template))

    def test_matrix_tracks_enrollment(self, populated):
        matrix = populated.descriptor_matrix("D0")
        assert matrix.shape == (3, DESCRIPTOR_DIM)
        assert np.isfinite(matrix).all()
        stats = populated.stats()
        assert stats["index"]["descriptor_dim"] == DESCRIPTOR_DIM
        assert stats["index"]["indexed"] == {"D0": 3, "D1": 3}

    def test_prefilter_ranks_the_mate_first_by_construction(
        self, populated, tiny_collection
    ):
        # Probing with the exact enrolled impression: distance 0 to its
        # own descriptor, so rank 1 is guaranteed, not just likely.
        probe = tiny_collection.get(1, FINGER, "D0", 0).template
        survivors = populated.prefilter(probe, device="D0", k=2)
        assert survivors[0].key == "subject-1"
        assert survivors[0].rank == 1
        assert survivors[0].distance == pytest.approx(0.0, abs=1e-9)

    def test_prefilter_cross_shard_prefixes_keys(self, populated, tiny_collection):
        probe = tiny_collection.get(1, FINGER, "D0", 0).template
        survivors = populated.prefilter(probe, device=None, k=4)
        assert survivors[0].key == "D0/subject-1"
        assert all("/" in c.key for c in survivors)
        assert [c.rank for c in survivors] == [1, 2, 3, 4]

    def test_delete_shrinks_the_index(self, populated, tiny_collection):
        populated.delete("subject-1", device="D0")
        assert populated.descriptor_matrix("D0").shape == (2, DESCRIPTOR_DIM)
        probe = tiny_collection.get(1, FINGER, "D0", 0).template
        keys = {c.key for c in populated.prefilter(probe, device="D0", k=3)}
        assert keys == {"subject-0", "subject-2"}

    def test_reenroll_replaces_descriptor(self, gallery, tiny_collection):
        first = tiny_collection.get(0, FINGER, "D0", 0).template
        second = tiny_collection.get(0, FINGER, "D0", 1).template
        gallery.enroll("subject-0", first, device="D0")
        gallery.enroll("subject-0", second, device="D0")
        assert gallery.descriptor_matrix("D0").shape == (1, DESCRIPTOR_DIM)
        np.testing.assert_allclose(
            gallery.descriptor_matrix("D0")[0], descriptor_vector(second)
        )

    def test_reserved_index_names_rejected(self, gallery, tiny_collection):
        template = tiny_collection.get(0, FINGER, "D0", 0).template
        with pytest.raises(ConfigurationError):
            gallery.enroll("__index__", template)
        with pytest.raises(ConfigurationError):
            gallery.enroll("fine", template, device="__index__")


class TestDescriptorPersistence:
    """The matrix survives restart, rebuilds from corruption, and never
    blocks gallery recovery."""

    def _populate(self, root, tiny_collection, n=3):
        gallery = GalleryIndex(root)
        for sid in range(n):
            gallery.enroll(
                f"subject-{sid}",
                tiny_collection.get(sid, FINGER, "D0", 0).template,
                device="D0",
            )
        gallery.flush_indexes()
        return gallery

    def test_index_flush_is_deferred(self, tmp_path, tiny_collection):
        # Enrolls dirty the in-memory index; the O(gallery) matrix write
        # happens once at flush/close, not once per write.
        root = tmp_path / "gallery"
        gallery = GalleryIndex(root)
        gallery.enroll(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 0).template,
            device="D0",
        )
        assert not (root / "__index__" / "D0.npz").exists()
        assert gallery.flush_indexes() == 1
        assert (root / "__index__" / "D0.npz").exists()
        assert gallery.flush_indexes() == 0  # clean: nothing rewritten

    def test_close_flushes_dirty_index(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        with GalleryIndex(root) as gallery:
            gallery.enroll(
                "subject-0",
                tiny_collection.get(0, FINGER, "D0", 0).template,
                device="D0",
            )
        assert (root / "__index__" / "D0.npz").exists()

    def test_matrix_persisted_and_adopted_on_restart(self, tmp_path, tiny_collection):
        root = tmp_path / "gallery"
        first = self._populate(root, tiny_collection)
        assert (root / "__index__" / "D0.npz").exists()

        reborn = GalleryIndex(root)
        np.testing.assert_array_equal(
            reborn.descriptor_matrix("D0"), first.descriptor_matrix("D0")
        )

    def test_corrupt_matrix_file_rebuilds_from_records(
        self, tmp_path, tiny_collection
    ):
        root = tmp_path / "gallery"
        first = self._populate(root, tiny_collection)
        expected = first.descriptor_matrix("D0")
        (root / "__index__" / "D0.npz").write_bytes(b"garbage")

        reborn = GalleryIndex(root)
        assert len(reborn) == 3
        np.testing.assert_allclose(reborn.descriptor_matrix("D0"), expected)

    def test_stale_matrix_detected_and_rebuilt(self, tmp_path, tiny_collection):
        # Simulate a crash between record write and index persist: the
        # persisted matrix names fewer identities than the records.
        root = tmp_path / "gallery"
        self._populate(root, tiny_collection, n=2)
        stale = (root / "__index__" / "D0.npz").read_bytes()
        gallery = GalleryIndex(root)
        gallery.enroll(
            "subject-2",
            tiny_collection.get(2, FINGER, "D0", 0).template,
            device="D0",
        )
        gallery.flush_indexes()
        (root / "__index__" / "D0.npz").write_bytes(stale)

        reborn = GalleryIndex(root)
        assert reborn.descriptor_matrix("D0").shape == (3, DESCRIPTOR_DIM)
        probe = tiny_collection.get(2, FINGER, "D0", 0).template
        assert reborn.prefilter(probe, device="D0", k=1)[0].key == "subject-2"

    def test_missing_index_dir_rebuilds_silently(self, tmp_path, tiny_collection):
        import shutil

        root = tmp_path / "gallery"
        self._populate(root, tiny_collection)
        shutil.rmtree(root / "__index__")

        reborn = GalleryIndex(root)
        assert reborn.descriptor_matrix("D0").shape == (3, DESCRIPTOR_DIM)

    def test_record_without_descriptor_recomputed_at_load(
        self, tmp_path, tiny_collection
    ):
        # Records enrolled before this PR have no stored descriptor —
        # the loader recomputes instead of failing or skipping.
        root = tmp_path / "gallery"
        self._populate(root, tiny_collection, n=1)
        path = root / "D0" / "subject-0.npz"
        with np.load(path, allow_pickle=False) as handle:
            arrays = {name: handle[name] for name in handle.files}
        arrays.pop("descriptor", None)
        meta = json.loads(arrays.pop("__meta__").tobytes().decode("utf-8"))
        meta.pop("descriptor_version", None)
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)

        reborn = GalleryIndex(root)
        record = reborn.get("subject-0", device="D0")
        np.testing.assert_allclose(
            record.descriptor, descriptor_vector(record.template)
        )
        assert reborn.descriptor_matrix("D0").shape == (1, DESCRIPTOR_DIM)
