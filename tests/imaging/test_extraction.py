"""Image-domain minutiae extraction."""

import numpy as np
import pytest

from repro.imaging import (
    ExtractionSettings,
    RenderSettings,
    binarize,
    extract_template,
    recovery_metrics,
    render_finger,
)
from repro.matcher import BioEngineMatcher
from repro.synthesis import synthesize_master_finger


@pytest.fixture(scope="module")
def finger():
    return synthesize_master_finger(np.random.default_rng(3))


@pytest.fixture(scope="module")
def rendered(finger):
    return render_finger(finger, RenderSettings(pixels_per_mm=8.0))


@pytest.fixture(scope="module")
def extracted(rendered):
    return extract_template(rendered.image, rendered.pixels_per_mm, rendered.mask)


class TestBinarize:
    def test_dark_is_ridge(self):
        image = np.array([[0.1, 0.9], [0.4, 0.6]])
        np.testing.assert_array_equal(
            binarize(image), [[True, False], [True, False]]
        )


class TestExtraction:
    def test_plausible_count(self, finger, extracted):
        # The extractor finds most planted minutiae plus a few artifacts.
        assert 0.5 * finger.n_minutiae <= len(extracted) <= 2.0 * finger.n_minutiae

    def test_recovery_quality(self, rendered, extracted):
        precision, recall = recovery_metrics(
            extracted, rendered.minutiae_px, rendered.pixels_per_mm
        )
        # Classical extractors on clean synthetic prints: most detections
        # are real and most planted minutiae are found.
        assert precision > 0.6
        assert recall > 0.5

    def test_both_kinds_detected(self, extracted):
        kinds = set(extracted.kinds().tolist())
        assert kinds == {1, 2}

    def test_angles_valid(self, extracted):
        angles = extracted.angles()
        assert np.all((angles >= 0) & (angles < 2 * np.pi + 1e-9))

    def test_template_scaled_to_500dpi(self, extracted):
        assert extracted.resolution_dpi == 500

    def test_empty_image_gives_empty_template(self):
        blank = np.ones((80, 80))
        template = extract_template(blank, pixels_per_mm=8.0)
        assert len(template) == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            extract_template(np.ones(10), pixels_per_mm=8.0)

    def test_degradation_reduces_recall(self, finger, rendered):
        degraded = render_finger(
            finger,
            RenderSettings(pixels_per_mm=8.0, moisture=0.9, noise_std=0.1, seed=2),
        )
        clean_template = extract_template(
            rendered.image, rendered.pixels_per_mm, rendered.mask
        )
        dirty_template = extract_template(
            degraded.image, degraded.pixels_per_mm, degraded.mask
        )
        __, clean_recall = recovery_metrics(
            clean_template, rendered.minutiae_px, rendered.pixels_per_mm
        )
        __, dirty_recall = recovery_metrics(
            dirty_template, degraded.minutiae_px, degraded.pixels_per_mm
        )
        assert dirty_recall < clean_recall


class TestRecoveryMetrics:
    def test_perfect_recovery(self, rendered, extracted):
        # Extracted template scored against its own positions: perfect.
        scale = (extracted.resolution_dpi / 25.4) / rendered.pixels_per_mm
        own = extracted.positions_px() / scale
        precision, recall = recovery_metrics(
            extracted, own, rendered.pixels_per_mm
        )
        assert precision == 1.0 and recall == 1.0

    def test_empty_extraction(self, rendered):
        from repro.matcher.types import Template

        empty = Template(minutiae=(), width_px=10, height_px=10)
        precision, recall = recovery_metrics(
            empty, rendered.minutiae_px, rendered.pixels_per_mm
        )
        assert precision == 0.0 and recall == 0.0


class TestEndToEndMatching:
    """The whole point: image-extracted templates still separate
    genuine from impostor through the standard matcher."""

    def test_genuine_beats_impostor_via_images(self):
        rng = np.random.default_rng(5)
        finger_a = synthesize_master_finger(rng)
        finger_b = synthesize_master_finger(rng)
        matcher = BioEngineMatcher()

        def impression(finger, seed, moisture):
            r = render_finger(
                finger,
                RenderSettings(
                    pixels_per_mm=8.0, moisture=moisture, noise_std=0.04, seed=seed
                ),
            )
            return extract_template(r.image, r.pixels_per_mm, r.mask)

        a1 = impression(finger_a, seed=1, moisture=0.5)
        a2 = impression(finger_a, seed=2, moisture=0.62)
        b1 = impression(finger_b, seed=3, moisture=0.5)
        genuine = matcher.match(a2, a1)
        impostor = matcher.match(b1, a1)
        assert genuine > impostor + 4
        assert genuine > 8
