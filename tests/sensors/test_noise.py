"""Presentation conditions, contact, detection and spurious processes."""

import numpy as np
import pytest

from repro.sensors.noise import (
    contact_radii_mm,
    detection_probability,
    minutia_quality_values,
    quality_conditions_factor,
    sample_conditions,
    spurious_count,
)
from repro.synthesis.subject import SubjectTraits


@pytest.fixture()
def traits():
    return SubjectTraits(
        skin_dryness=0.4,
        pressure_mean=0.7,
        pressure_spread=0.08,
        placement_sloppiness=0.5,
        habituation_rate=0.4,
    )


class TestConditions:
    def test_ranges(self, traits, rng):
        for __ in range(100):
            c = sample_conditions(traits, rng)
            assert 0.25 <= c.pressure <= 1.1
            assert 0.0 <= c.moisture <= 1.0
            assert 0.02 <= c.sloppiness <= 1.0

    def test_habituation_reduces_sloppiness(self, traits):
        rng_first = np.random.default_rng(0)
        rng_late = np.random.default_rng(0)
        first = [
            sample_conditions(traits, rng_first, presentation_index=0).sloppiness
            for __ in range(200)
        ]
        late = [
            sample_conditions(traits, rng_late, presentation_index=15).sloppiness
            for __ in range(200)
        ]
        assert np.mean(late) < np.mean(first)

    def test_dry_trait_raises_moisture_value(self, rng):
        dry = SubjectTraits(0.95, 0.7, 0.08, 0.5, 0.4)
        wet = SubjectTraits(0.05, 0.7, 0.08, 0.5, 0.4)
        dry_m = np.mean([sample_conditions(dry, rng).moisture for __ in range(200)])
        wet_m = np.mean([sample_conditions(wet, rng).moisture for __ in range(200)])
        assert dry_m > wet_m


class TestContact:
    def test_monotone_in_pressure(self):
        low = contact_radii_mm(9.0, 12.0, 0.3)
        high = contact_radii_mm(9.0, 12.0, 1.0)
        assert low[0] < high[0] and low[1] < high[1]

    def test_never_exceeds_pad(self):
        rx, ry = contact_radii_mm(9.0, 12.0, 1.1)
        assert rx <= 9.0 and ry <= 12.0


class TestClarity:
    def test_peaks_at_ideal_moisture(self):
        ideal = quality_conditions_factor(0.5, 0.8)
        dry = quality_conditions_factor(0.95, 0.8)
        wet = quality_conditions_factor(0.05, 0.8)
        assert ideal > dry and ideal > wet

    def test_light_pressure_hurts(self):
        assert quality_conditions_factor(0.5, 0.25) < quality_conditions_factor(0.5, 0.9)

    def test_bounded(self):
        for moisture in np.linspace(0, 1, 11):
            for pressure in np.linspace(0.25, 1.1, 10):
                value = quality_conditions_factor(moisture, pressure)
                assert 0.05 <= value <= 1.0


class TestDetection:
    def test_probability_bounds(self):
        p = detection_probability(np.array([0.2, 0.9, 1.0]), 0.8, 0.95)
        assert np.all((p >= 0) & (p <= 1))

    def test_monotone_in_all_factors(self):
        rob = np.array([0.8])
        assert detection_probability(rob, 0.9, 0.95) > detection_probability(rob, 0.3, 0.95)
        assert detection_probability(rob, 0.8, 0.99) > detection_probability(rob, 0.8, 0.80)
        assert (
            detection_probability(np.array([0.9]), 0.8, 0.9)
            > detection_probability(np.array([0.4]), 0.8, 0.9)
        )


class TestSpurious:
    def test_zero_rate_gives_zero(self, rng):
        assert spurious_count(rng, clarity=0.5, device_spurious_rate=0.0) == 0

    def test_poor_clarity_generates_more(self):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        clean = np.mean([spurious_count(rng_a, 0.95, 2.0) for __ in range(300)])
        dirty = np.mean([spurious_count(rng_b, 0.2, 2.0) for __ in range(300)])
        assert dirty > clean


class TestMinutiaQuality:
    def test_range_and_dtype(self, rng):
        q = minutia_quality_values(rng, np.array([0.5, 0.9, 0.2]), 0.8)
        assert q.dtype == np.int64
        assert np.all((q >= 1) & (q <= 100))

    def test_scales_with_clarity(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        rob = np.full(200, 0.8)
        sharp = minutia_quality_values(rng_a, rob, 0.95).mean()
        blurry = minutia_quality_values(rng_b, rob, 0.35).mean()
        assert sharp > blurry
