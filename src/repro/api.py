"""The stable public API of the reproduction.

``repro.api`` is the one import surface downstream code — the CLI, the
examples, the benchmark suite, notebooks — should use.  It provides:

* **Study entry points**: :func:`run_study`, :func:`load_scores` and
  :func:`compare_devices`, which cover the common workflows (run the
  experiment, reuse cached scores, interrogate one device pair) without
  reaching into :mod:`repro.core.study` internals;
* **Curated re-exports** of every class, function and constant the
  workflows compose with (configuration, sensors, matcher, statistics,
  report renderers), so one ``from repro.api import ...`` line replaces
  a half-dozen deep-module imports.

Deep imports (``repro.core.study``, ``repro.stats.roc``, ...) keep
working — they are the implementation, not the contract — but only the
names exported here are covered by the deprecation policy: anything
re-exported from ``repro.api`` survives internal refactors.

Legacy top-level imports (``from repro import InteroperabilityStudy``)
still work but emit :class:`DeprecationWarning`; see ``docs/api.md`` for
the migration table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

# --- configuration / runtime ------------------------------------------------
from .runtime.artifacts import ArtifactStore, canonical_digest
from .runtime.cache import ScoreCache
from .runtime.config import (
    DEFAULT_SUBJECT_COUNT,
    PAPER_SUBJECT_COUNT,
    StudyConfig,
    resolve_worker_count,
)
from .runtime.errors import (
    ConfigurationError,
    MatcherError,
    PermanentError,
    ReproError,
    TransientError,
    classify_failure,
)
from .runtime.faults import FaultInjector, parse_faults
from .runtime.manifest import RunManifest, render_manifest, validate_manifest
from .runtime.parallel import parallel_map, parallel_map_batched
from .runtime.progress import ProgressReporter
from .runtime.rng import SeedTree
from .runtime.shm import SharedTemplateStore, SharedTemplateView
from .runtime.supervisor import RetryPolicy, supervised_map_batched
from .runtime.telemetry import (
    TelemetryRecorder,
    TraceContext,
    configure_logging,
    current_trace,
    disable_telemetry,
    enable_telemetry,
    get_recorder,
    new_request_id,
    trace_request,
)

# --- study engine -----------------------------------------------------------
from .core.error_rates import (
    TABLE5_FMR,
    TABLE6_FMR,
    TABLE6_MAX_NFIQ,
    diagonal_dominance_violations,
    fnmr_interoperability_matrix,
    mean_interoperability_penalty,
)
from .core.habituation import (
    control_by_presentation,
    first_vs_last,
    render_habituation,
)
from .core.identification import (
    DEFAULT_CANDIDATE_K,
    IDENTIFY_MODES,
    SearchReport,
    TwoStageIdentifier,
    cross_device_cmc,
    open_set_rates,
    rank_candidates,
    rank_candidates_scalar,
)
from .core.prefilter import (
    DESCRIPTOR_DIM,
    PrefilterIndex,
    descriptor_vector,
)
from .core.kendall_analysis import (
    asymmetry_count,
    kendall_matrix,
    pvalue_matrix,
)
from .core.prediction import FnmrPredictor
from .core.quality_analysis import (
    low_score_quality_surface,
    quality_filtered_fnmr_matrix,
)
from .core.report import (
    render_figure1,
    render_figure4,
    render_figure5,
    render_fnmr_matrix,
    render_score_histograms,
    render_table1,
    render_table3,
    render_table4,
)
from .core.scores import (
    GALLERY_SET,
    PROBE_SET,
    SCENARIOS,
    ScoreSet,
    enumerate_ddmg_jobs,
    enumerate_dmg_jobs,
    expected_counts,
)
from .core.study import InteroperabilityStudy

# --- data and models --------------------------------------------------------
from .calibration import (
    DeviceInferenceModel,
    apply_tps_to_template,
    control_points_from_matches,
    d_prime,
    fit_tps,
    separability_weights,
    sum_fusion,
    weighted_sum_fusion,
)
from .datasets import (
    build_collection,
    load_quality_arrays,
    render_collection_summary,
    subject_artifact_digest,
    summarize_collection,
    warm_artifacts,
)
from .imaging import (
    ImagePipeline,
    RenderSettings,
    extract_template,
    recovery_metrics,
    render_finger,
    to_uint8,
)
from .io.incits378 import RecordMetadata, decode, encode
from .matcher import (
    BioEngineMatcher,
    Minutia,
    RidgeGeometryMatcher,
    Template,
    build_matcher,
)
from .matcher.alignment import candidate_pairs, estimate_alignments
from .matcher.descriptors import build_descriptors, similarity_matrix
from .matcher.pairing import pair_minutiae
from .matcher.scoring import compute_score
from .pipeline import (
    EnrolledRecord,
    InteropAwareVerifier,
    TemplateDatabase,
    Verifier,
)
from .pipeline.verifier import train_interop_verifier_from_study
from .quality import (
    QualityFeatures,
    assess_template,
    nfiq_level,
    template_quality_features,
)
from .service import (
    BatchingConfig,
    EnrollmentRejected,
    GalleryIndex,
    GalleryReadOnlyError,
    GalleryRecord,
    MicroBatcher,
    RequestLog,
    ServerStartupError,
    ServiceClient,
    ServiceClientError,
    ServiceStats,
    UnknownIdentityError,
    VerificationServer,
    WorkerPool,
    WorkerPoolConfig,
    WorkerPoolDegradedError,
    encode_template,
    iter_reqlog,
    parse_exposition,
    render_exposition,
    shard_of,
)
from .sensors import (
    DEVICE_ORDER,
    DEVICE_PROFILES,
    LIVESCAN_DEVICES,
    Impression,
    InkCardSensor,
    OpticalSensor,
    ProtocolSettings,
    build_sensor,
)
from .stats import (
    det_points,
    fnmr_at_fmr,
    score_histogram,
    summarize,
    threshold_at_fmr,
    wilson_interval,
)
from .stats.comparison import render_det
from .synthesis import (
    FINGER_POSITION_CODES,
    PatternClass,
    Population,
    ascii_preview,
    read_pgm,
    render_ridge_image,
    synthesize_master_finger,
    write_pgm,
)


# ---------------------------------------------------------------------------
# Facade entry points
# ---------------------------------------------------------------------------
@dataclass
class StudyResult:
    """Outcome of :func:`run_study`: scores plus the analyses over them.

    Holds the four Table 2 score sets and the study they came from; the
    analysis methods delegate to the study engine, so everything stays
    lazy and cache-backed.
    """

    config: StudyConfig
    score_sets: Dict[str, ScoreSet]
    study: InteroperabilityStudy = field(repr=False)

    def genuine_scores(self, gallery_device: str, probe_device: str) -> ScoreSet:
        """Genuine scores of one (gallery, probe) device cell."""
        return self.study.genuine_scores(gallery_device, probe_device)

    def impostor_scores(self, gallery_device: str, probe_device: str) -> ScoreSet:
        """Impostor scores of one (gallery, probe) device cell."""
        return self.study.impostor_scores(gallery_device, probe_device)

    def fnmr_matrix(
        self, target_fmr: float = TABLE5_FMR, max_nfiq: Optional[int] = None
    ) -> np.ndarray:
        """Tables 5/6: FNMR at fixed FMR for every device cell."""
        return self.study.fnmr_matrix(target_fmr, max_nfiq)

    def kendall_matrix(self):
        """Table 4: Kendall rank-correlation tests per device pair."""
        return self.study.kendall_matrix()

    def demographics(self) -> Dict[str, Dict[str, int]]:
        """Figure 1: population demographics histograms."""
        return self.study.demographics()


@dataclass(frozen=True)
class DeviceComparison:
    """One (gallery, probe) cell of the interoperability analysis."""

    gallery_device: str
    probe_device: str
    genuine: ScoreSet
    impostor: ScoreSet
    mean_genuine_score: float
    mean_impostor_score: float
    fnmr: float
    target_fmr: float

    @property
    def cross_device(self) -> bool:
        """Whether enrollment and verification devices differ."""
        return self.gallery_device != self.probe_device


def run_study(
    config: Optional[StudyConfig] = None,
    *,
    protocol: Optional[ProtocolSettings] = None,
    cache: Optional[ScoreCache] = None,
    artifacts: Optional[ArtifactStore] = None,
    progress_factory: Optional[Callable] = None,
) -> StudyResult:
    """Run the paper's experiment and return its scores and analyses.

    The one-call entry point: builds (or loads from cache) the four
    Table 2 score sets for ``config`` and returns a :class:`StudyResult`
    whose methods expose the per-table analyses.

    Parameters
    ----------
    config:
        Scale, seed, matcher and parallelism settings; defaults to
        ``StudyConfig()``.
    protocol:
        Collection-protocol switches (quality gating, device order).
    cache:
        Score-cache override; by default ``config.cache_dir`` decides.
    artifacts:
        Artifact-store override for the acquisition pipeline; by default
        ``config.artifact_dir`` decides.  Pre-warm it once with
        :func:`warm_artifacts` and every subsequent ``run_study`` (or
        fresh process) loads the collection instead of re-acquiring it.
    progress_factory:
        Optional ``(total, label) -> ProgressReporter`` hook.
    """
    effective = config if config is not None else StudyConfig()
    kwargs: Dict[str, object] = {}
    if protocol is not None:
        kwargs["protocol"] = protocol
    if cache is not None:
        kwargs["cache"] = cache
    if artifacts is not None:
        kwargs["artifacts"] = artifacts
    if progress_factory is not None:
        kwargs["progress_factory"] = progress_factory
    study = InteroperabilityStudy(effective, **kwargs)
    return StudyResult(
        config=effective, score_sets=study.score_sets(), study=study
    )


def load_scores(
    config: StudyConfig,
    scenario: Optional[str] = None,
    *,
    protocol: Optional[ProtocolSettings] = None,
):
    """Load cached score sets for ``config`` without computing anything.

    With ``scenario`` (``"DMG"`` / ``"DMI"`` / ``"DDMG"`` / ``"DDMI"``)
    returns that scenario's :class:`ScoreSet`, or ``None`` when any of
    its cache shards is missing.  Without ``scenario`` returns a dict of
    every fully cached scenario (possibly empty).  Use :func:`run_study`
    when computing on a miss is acceptable.
    """
    kwargs: Dict[str, object] = {}
    if protocol is not None:
        kwargs["protocol"] = protocol
    study = InteroperabilityStudy(config, **kwargs)
    if scenario is not None:
        return study.cached_score_set(scenario)
    loaded: Dict[str, ScoreSet] = {}
    for name in SCENARIOS:
        cached = study.cached_score_set(name)
        if cached is not None:
            loaded[name] = cached
    return loaded


def compare_devices(
    result: StudyResult,
    gallery_device: str,
    probe_device: str,
    target_fmr: float = TABLE5_FMR,
) -> DeviceComparison:
    """Summarize one enrollment/verification device pairing.

    Answers the paper's operational question for a single cell: what do
    genuine and impostor scores look like, and what FNMR does the pair
    pay at the ``target_fmr`` operating point?  Accepts the
    :class:`StudyResult` of :func:`run_study` (or any object exposing
    ``genuine_scores``/``impostor_scores``).
    """
    genuine = result.genuine_scores(gallery_device, probe_device)
    impostor = result.impostor_scores(gallery_device, probe_device)
    return DeviceComparison(
        gallery_device=gallery_device,
        probe_device=probe_device,
        genuine=genuine,
        impostor=impostor,
        mean_genuine_score=float(genuine.scores.mean()) if len(genuine) else float("nan"),
        mean_impostor_score=float(impostor.scores.mean()) if len(impostor) else float("nan"),
        fnmr=fnmr_at_fmr(genuine.scores, impostor.scores, target_fmr),
        target_fmr=target_fmr,
    )


__all__ = [
    # facade entry points
    "run_study",
    "load_scores",
    "compare_devices",
    "StudyResult",
    "DeviceComparison",
    # study engine
    "InteroperabilityStudy",
    "ScoreSet",
    "SCENARIOS",
    "GALLERY_SET",
    "PROBE_SET",
    "enumerate_dmg_jobs",
    "enumerate_ddmg_jobs",
    "expected_counts",
    "FnmrPredictor",
    "fnmr_interoperability_matrix",
    "quality_filtered_fnmr_matrix",
    "low_score_quality_surface",
    "kendall_matrix",
    "pvalue_matrix",
    "asymmetry_count",
    "diagonal_dominance_violations",
    "mean_interoperability_penalty",
    "TABLE5_FMR",
    "TABLE6_FMR",
    "TABLE6_MAX_NFIQ",
    "cross_device_cmc",
    "open_set_rates",
    "rank_candidates",
    "rank_candidates_scalar",
    "DEFAULT_CANDIDATE_K",
    "IDENTIFY_MODES",
    "SearchReport",
    "TwoStageIdentifier",
    "DESCRIPTOR_DIM",
    "PrefilterIndex",
    "descriptor_vector",
    "control_by_presentation",
    "first_vs_last",
    "render_habituation",
    # report renderers
    "render_table1",
    "render_table3",
    "render_table4",
    "render_figure1",
    "render_figure4",
    "render_figure5",
    "render_fnmr_matrix",
    "render_score_histograms",
    "render_det",
    # configuration / runtime
    "StudyConfig",
    "DEFAULT_SUBJECT_COUNT",
    "PAPER_SUBJECT_COUNT",
    "resolve_worker_count",
    "ScoreCache",
    "ArtifactStore",
    "canonical_digest",
    "SeedTree",
    "ProgressReporter",
    "RunManifest",
    "render_manifest",
    "validate_manifest",
    "TelemetryRecorder",
    "enable_telemetry",
    "disable_telemetry",
    "get_recorder",
    "configure_logging",
    "TraceContext",
    "current_trace",
    "new_request_id",
    "trace_request",
    "parallel_map",
    "parallel_map_batched",
    "supervised_map_batched",
    "RetryPolicy",
    "SharedTemplateStore",
    "SharedTemplateView",
    "FaultInjector",
    "parse_faults",
    "ReproError",
    "ConfigurationError",
    "MatcherError",
    "TransientError",
    "PermanentError",
    "classify_failure",
    # data and models
    "build_collection",
    "warm_artifacts",
    "subject_artifact_digest",
    "load_quality_arrays",
    "summarize_collection",
    "render_collection_summary",
    "Population",
    "PatternClass",
    "FINGER_POSITION_CODES",
    "synthesize_master_finger",
    "render_ridge_image",
    "ascii_preview",
    "read_pgm",
    "write_pgm",
    "RenderSettings",
    "render_finger",
    "extract_template",
    "recovery_metrics",
    "to_uint8",
    "ImagePipeline",
    "BioEngineMatcher",
    "RidgeGeometryMatcher",
    "build_matcher",
    "Template",
    "Minutia",
    "candidate_pairs",
    "estimate_alignments",
    "build_descriptors",
    "similarity_matrix",
    "pair_minutiae",
    "compute_score",
    "QualityFeatures",
    "nfiq_level",
    "assess_template",
    "template_quality_features",
    # online serving layer
    "VerificationServer",
    "ServiceClient",
    "ServiceClientError",
    "ServiceStats",
    "GalleryIndex",
    "GalleryReadOnlyError",
    "GalleryRecord",
    "BatchingConfig",
    "MicroBatcher",
    "EnrollmentRejected",
    "UnknownIdentityError",
    "ServerStartupError",
    "encode_template",
    "RequestLog",
    "iter_reqlog",
    "render_exposition",
    "parse_exposition",
    "WorkerPool",
    "WorkerPoolConfig",
    "WorkerPoolDegradedError",
    "shard_of",
    "Impression",
    "ProtocolSettings",
    "build_sensor",
    "OpticalSensor",
    "InkCardSensor",
    "DEVICE_ORDER",
    "DEVICE_PROFILES",
    "LIVESCAN_DEVICES",
    "RecordMetadata",
    "decode",
    "encode",
    "EnrolledRecord",
    "TemplateDatabase",
    "Verifier",
    "InteropAwareVerifier",
    "train_interop_verifier_from_study",
    "DeviceInferenceModel",
    "d_prime",
    "separability_weights",
    "sum_fusion",
    "weighted_sum_fusion",
    "fit_tps",
    "apply_tps_to_template",
    "control_points_from_matches",
    # statistics
    "summarize",
    "wilson_interval",
    "threshold_at_fmr",
    "fnmr_at_fmr",
    "det_points",
    "score_histogram",
]
