"""Minutiae extraction from ridge images.

The image-domain feature extractor: binarize → skeletonize → detect
candidate minutiae via the crossing number → filter artifacts →
estimate directions by skeleton tracing.  Output is a standard
:class:`~repro.matcher.types.Template`, so image-extracted minutiae go
through the exact same matcher as the ground-truth pipeline.

Filtering rules (the classical post-processing set):

* border minutiae (skeleton ends at the foreground boundary) removed;
* *spur* endings — skeleton branches shorter than half a ridge period —
  removed;
* opposing-pair artifacts — an ending and a bifurcation (or two
  endings) closer than one ridge period — removed as broken-ridge noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..matcher.types import KIND_BIFURCATION, KIND_ENDING, Template, template_from_arrays
from ..synthesis.master import RIDGE_PERIOD_MM
from .thinning import crossing_number, neighbourhood_planes, skeletonize

#: 8-neighbourhood offsets (dy, dx).
_OFFSETS = ((-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1))


@dataclass(frozen=True)
class ExtractionSettings:
    """Extractor tuning.

    Attributes
    ----------
    binarize_threshold:
        Ridge pixels are ``image < threshold`` (ridges are dark).
    border_margin_px:
        Minutiae closer than this to the mask boundary are discarded.
    trace_steps:
        Skeleton steps walked to estimate a minutia's direction.
    """

    binarize_threshold: float = 0.5
    border_margin_px: int = 8
    trace_steps: int = 6


def binarize(image: np.ndarray, threshold: float = 0.5) -> np.ndarray:
    """Dark-ridge binarization: True where the image is ridge."""
    return np.asarray(image) < threshold


def _erode(mask: np.ndarray, iterations: int) -> np.ndarray:
    """Binary erosion with a 3x3 structuring element.

    Built on the shared zero-padded neighbourhood planes of
    :func:`repro.imaging.thinning.neighbourhood_planes`: out-of-frame
    pixels count as background, so foreground touching the image border
    erodes away like any other boundary.  (A roll-based erosion would
    wrap around instead, and a mask spanning the full frame would never
    shrink — leaving border minutiae to the downstream filters.)
    """
    out = np.asarray(mask).astype(bool)
    for __ in range(iterations):
        shrunk = out.copy()
        for plane in neighbourhood_planes(out):
            shrunk &= plane
        out = shrunk
    return out


def _trace_direction(
    skeleton: np.ndarray, y: int, x: int, steps: int, min_walk: int = 3
) -> Optional[float]:
    """Walk the skeleton from (y, x) and return the inbound ridge angle.

    The minutia direction convention: the angle points from the minutia
    *along the ridge* it terminates (for endings) — i.e. toward the
    traced interior point.  Walks shorter than ``min_walk`` pixels mark
    *spurs* — specks and hair branches from binarization noise — and
    return ``None`` so the caller discards the candidate.
    """
    height, width = skeleton.shape
    visited = {(y, x)}
    cy, cx = y, x
    walked = 0
    for __ in range(steps):
        next_pixel = None
        for dy, dx in _OFFSETS:
            ny, nx = cy + dy, cx + dx
            if 0 <= ny < height and 0 <= nx < width:
                if skeleton[ny, nx] and (ny, nx) not in visited:
                    next_pixel = (ny, nx)
                    break
        if next_pixel is None:
            break
        visited.add(next_pixel)
        cy, cx = next_pixel
        walked += 1
    if walked < min(min_walk, steps):
        return None
    return float(np.mod(np.arctan2(cy - y, cx - x), 2.0 * np.pi))


def extract_template(
    image: np.ndarray,
    pixels_per_mm: float,
    mask: Optional[np.ndarray] = None,
    settings: ExtractionSettings = ExtractionSettings(),
    resolution_dpi: int = 500,
) -> Template:
    """Extract a minutiae template from a rendered ridge image.

    Parameters
    ----------
    image:
        (H, W) float image in [0, 1], dark ridges.
    pixels_per_mm:
        The image's geometric scale (used for distance-based filtering
        and for converting output coordinates to the template's dpi).
    mask:
        Optional foreground mask; defaults to the whole frame.
    settings:
        Extractor tuning.
    resolution_dpi:
        The dpi stamped on the output template (positions are scaled so
        downstream mm-geometry is correct regardless of render scale).
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("extract_template expects a 2-D image")
    height, width = img.shape
    if mask is None:
        mask = np.ones_like(img, dtype=bool)

    ridge = binarize(img, settings.binarize_threshold) & mask
    skeleton = skeletonize(ridge)
    cn = crossing_number(skeleton)

    margin = max(1, settings.border_margin_px)
    interior = _erode(mask, margin)

    candidate_endings = np.argwhere((cn == 1) & interior)
    candidate_bifurcations = np.argwhere((cn >= 3) & interior)

    period_px = RIDGE_PERIOD_MM * pixels_per_mm

    # Spur removal: endings whose traced branch dies within half a period.
    endings: List[Tuple[int, int, float]] = []
    for y, x in candidate_endings:
        angle = _trace_direction(skeleton, int(y), int(x), settings.trace_steps)
        if angle is None:
            continue
        endings.append((int(y), int(x), angle))
    bifurcations: List[Tuple[int, int, float]] = []
    for y, x in candidate_bifurcations:
        angle = _trace_direction(skeleton, int(y), int(x), settings.trace_steps)
        if angle is None:
            angle = 0.0
        bifurcations.append((int(y), int(x), angle))

    # Opposing-pair artifact removal: any two candidates within one ridge
    # period annihilate (broken-ridge / bridge noise).
    all_pts = endings + bifurcations
    keep = _annihilate_close_pairs(all_pts, min_distance=period_px)
    kept = [pt for pt, ok in zip(all_pts, keep) if ok]
    kinds = [KIND_ENDING] * len(endings) + [KIND_BIFURCATION] * len(bifurcations)
    kept_kinds = [k for k, ok in zip(kinds, keep) if ok]

    if not kept:
        return Template(minutiae=(), width_px=width, height_px=height,
                        resolution_dpi=resolution_dpi)

    # Convert to the template's dpi scale so positions_mm() is faithful.
    scale = (resolution_dpi / 25.4) / pixels_per_mm
    positions = np.array([[x * scale, y * scale] for y, x, __ in kept])
    angles = np.array([angle for __, ___, angle in kept])
    qualities = np.full(len(kept), 60, dtype=np.int64)
    return template_from_arrays(
        positions_px=positions,
        angles=angles,
        kinds=np.array(kept_kinds),
        qualities=qualities,
        width_px=int(np.ceil(width * scale)),
        height_px=int(np.ceil(height * scale)),
        resolution_dpi=resolution_dpi,
    )


def _annihilate_close_pairs(
    points: List[Tuple[int, int, float]], min_distance: float
) -> List[bool]:
    """Mark points that survive mutual-annihilation filtering.

    Greedy scan in index order: each still-alive point annihilates with
    the *first* still-alive later point within ``min_distance``.  (This
    is deliberately not all-pairs annihilation — in a chain A–B–C where
    only the adjacent distances are short, A and B annihilate and C
    survives.)  The O(n²) distance evaluations are a single broadcast;
    the scan that consumes the precomputed adjacency stays sequential
    because each kill changes which later points are still alive.
    """
    n = len(points)
    if n == 0:
        return []
    coords = np.array([(y, x) for y, x, __ in points], dtype=np.float64)
    diff = coords[:, None, :] - coords[None, :, :]
    close = (diff**2).sum(axis=2) < min_distance**2
    keep = np.ones(n, dtype=bool)
    for i in range(n):
        if not keep[i]:
            continue
        partners = np.flatnonzero(close[i] & keep)
        partners = partners[partners > i]
        if partners.size:
            keep[i] = False
            keep[partners[0]] = False
    return keep.tolist()


def _annihilate_close_pairs_reference(
    points: List[Tuple[int, int, float]], min_distance: float
) -> List[bool]:
    """Pure-Python reference of :func:`_annihilate_close_pairs`.

    Kept as the executable specification of the greedy semantics; the
    parity test drives both implementations over random point clouds.
    """
    n = len(points)
    keep = [True] * n
    for i in range(n):
        if not keep[i]:
            continue
        yi, xi, __ = points[i]
        for j in range(i + 1, n):
            if not keep[j]:
                continue
            yj, xj, __ = points[j]
            if (yi - yj) ** 2 + (xi - xj) ** 2 < min_distance**2:
                keep[i] = False
                keep[j] = False
                break
    return keep


def recovery_metrics(
    extracted: Template,
    planted_px: np.ndarray,
    pixels_per_mm: float,
    tolerance_periods: float = 1.5,
) -> Tuple[float, float]:
    """(precision, recall) of extracted minutiae against planted ones.

    A planted minutia counts as recovered when an extracted minutia lies
    within ``tolerance_periods`` ridge periods; each extraction may claim
    one planted point (greedy nearest assignment).
    """
    if len(extracted) == 0:
        return (0.0, 0.0) if len(planted_px) else (0.0, 1.0)
    if len(planted_px) == 0:
        return 0.0, 1.0
    scale = (extracted.resolution_dpi / 25.4) / pixels_per_mm
    positions = extracted.positions_px() / scale
    tolerance = tolerance_periods * RIDGE_PERIOD_MM * pixels_per_mm
    diff = positions[:, None, :] - planted_px[None, :, :]
    dist = np.sqrt((diff**2).sum(axis=2))
    matched_planted = set()
    matched_extracted = set()
    order = np.argsort(dist, axis=None)
    for flat in order:
        i, j = np.unravel_index(flat, dist.shape)
        if dist[i, j] > tolerance:
            break
        if i in matched_extracted or j in matched_planted:
            continue
        matched_extracted.add(i)
        matched_planted.add(j)
    precision = len(matched_extracted) / len(positions)
    recall = len(matched_planted) / len(planted_px)
    return precision, recall


__all__ = [
    "ExtractionSettings",
    "binarize",
    "extract_template",
    "recovery_metrics",
]
