"""Operational verification pipeline — the paper's §V architecture.

Couples the enrollment database, the matcher, and the calibration
toolbox into deployable verification engines: a device-blind baseline
(:class:`Verifier`) and the mitigated :class:`InteropAwareVerifier`
(device inference + TPS compensation + per-pair score normalization).
"""

from .database import EnrolledRecord, EnrollmentError, TemplateDatabase
from .decision import AuditLog, VerificationDecision
from .verifier import (
    InteropAwareVerifier,
    Verifier,
    train_interop_verifier_from_study,
)

__all__ = [
    "TemplateDatabase",
    "EnrolledRecord",
    "EnrollmentError",
    "AuditLog",
    "VerificationDecision",
    "Verifier",
    "InteropAwareVerifier",
    "train_interop_verifier_from_study",
]
