"""Parallel map semantics."""

import pytest

from repro.runtime.parallel import chunk_indices, parallel_map, sequential_map


def _square(x):
    return x * x


def _fail_on_seven(x):
    if x == 7:
        raise ValueError("seven")
    return x


class TestChunkIndices:
    def test_covers_everything_once(self):
        chunks = chunk_indices(10, 3)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(10))

    def test_exact_division(self):
        assert [len(c) for c in chunk_indices(9, 3)] == [3, 3, 3]

    def test_empty(self):
        assert chunk_indices(0, 4) == []

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestParallelMap:
    def test_sequential_path(self):
        assert parallel_map(_square, [1, 2, 3], n_workers=0) == [1, 4, 9]

    def test_small_workload_stays_sequential(self):
        # Fewer than the pool threshold: must not spawn processes.
        assert parallel_map(_square, list(range(10)), n_workers=8) == [
            x * x for x in range(10)
        ]

    def test_pool_preserves_order(self):
        items = list(range(300))
        result = parallel_map(_square, items, n_workers=2, chunk_size=17)
        assert result == [x * x for x in items]

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="seven"):
            parallel_map(_fail_on_seven, list(range(300)), n_workers=2)

    def test_empty_items(self):
        assert parallel_map(_square, [], n_workers=4) == []


class TestSequentialMap:
    def test_basic(self):
        assert sequential_map(_square, range(4)) == [0, 1, 4, 9]
