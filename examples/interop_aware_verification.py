#!/usr/bin/env python3
"""The paper's §V architecture question, answered in code.

"What advice can we prescribe for an overall architecture of fingerprint
recognition that employs diverse sensors, and/or improves
interoperability?"

This example deploys two verification systems over the same enrollment
gallery (everyone enrolled on the Guardian R2) and runs the same stream
of genuine and impostor verification attempts from *all five* devices
through both:

* a baseline verifier — raw matcher score, fixed threshold, blind to
  devices (what the paper's measurements characterize);
* an interoperability-aware verifier — per-device-pair score
  normalization, TPS inter-sensor compensation for ink cards, and GMM
  device inference for probes that don't declare their capture device.

Run:
    python examples/interop_aware_verification.py
"""

import numpy as np

from repro.api import (
    DEVICE_ORDER,
    EnrolledRecord,
    InteroperabilityStudy,
    StudyConfig,
    TemplateDatabase,
    train_interop_verifier_from_study,
    Verifier,
)

ENROLL_DEVICE = "D0"


def main() -> None:
    config = StudyConfig.from_environment(n_subjects=30, n_workers=4)
    study = InteroperabilityStudy(config)
    study.score_sets()
    collection = study.collection()
    n = config.n_subjects

    database = TemplateDatabase()
    for sid in range(n):
        imp = collection.get(sid, "right_index", ENROLL_DEVICE, 0)
        database.enroll(
            EnrolledRecord(
                identity=f"subject-{sid}",
                template=imp.template,
                device_id=ENROLL_DEVICE,
                nfiq=imp.nfiq,
            )
        )

    baseline = Verifier(database, threshold=7.5)
    aware = train_interop_verifier_from_study(
        study,
        database,
        threshold=3.0,
        calibrate_pairs=[(ENROLL_DEVICE, "D4"), (ENROLL_DEVICE, "D1")],
    )

    rng = np.random.default_rng(5)
    genuine_results = {"baseline": [], "aware": []}
    impostor_results = {"baseline": [], "aware": []}
    genuine_decisions = []  # aware-system genuine attempts, for the matrix
    for device in DEVICE_ORDER:
        for sid in range(n):
            imp = collection.get(sid, "right_index", device, 1)
            # Genuine attempt.
            genuine_results["baseline"].append(
                baseline.verify(f"subject-{sid}", imp.template, device).accepted
            )
            aware_decision = aware.verify(f"subject-{sid}", imp.template, device)
            genuine_results["aware"].append(aware_decision.accepted)
            genuine_decisions.append(aware_decision)
            # Impostor attempt against a random other identity.
            other = int(rng.integers(0, n))
            if other == sid:
                other = (other + 1) % n
            impostor_results["baseline"].append(
                baseline.verify(f"subject-{other}", imp.template, device).accepted
            )
            impostor_results["aware"].append(
                aware.verify(f"subject-{other}", imp.template, device).accepted
            )

    print("Same gallery (enrolled on the Guardian R2), probes from all devices")
    print(f"{'system':<12}{'FNMR (genuine rejected)':>26}{'FMR (impostor accepted)':>26}")
    for system in ("baseline", "aware"):
        fnmr = 1.0 - float(np.mean(genuine_results[system]))
        fmr = float(np.mean(impostor_results[system]))
        print(f"{system:<12}{fnmr:>26.3f}{fmr:>26.3f}")
    print()

    print("Per-device-pair rejection rates (genuine attempts), aware system:")
    by_pair = {}
    for decision in genuine_decisions:
        key = (decision.gallery_device, decision.probe_device)
        by_pair.setdefault(key, []).append(decision.accepted)
    for (gallery_device, probe_device), accepted in sorted(by_pair.items()):
        rate = 1.0 - float(np.mean(accepted))
        print(f"  {gallery_device} <- {probe_device}: {rate:.3f}")
    print()
    print(aware.audit.render(limit=5))
    print()
    print(
        "The device-aware architecture holds one global threshold across"
        " all five probe sources — the prescription the paper's §V asks"
        " for."
    )


if __name__ == "__main__":
    main()
