"""Shared-memory template store for score-generation worker pools.

Pickling the whole :class:`~repro.sensors.protocol.Collection` into every
pool worker re-serializes ~n_subjects x fingers x devices x sets
impressions per worker — most of a worker's start-up cost and a full
copy of the template data in every worker's RSS.  This module packs the
parts score generation actually needs (minutia arrays, image metadata
and the NFIQ level of each impression) into one
``multiprocessing.shared_memory`` block that workers *map* instead of
copy:

* the parent calls :meth:`SharedTemplateStore.pack` once and passes the
  small picklable :class:`StoreHandle` (block name + index) to the pool
  initializer;
* each worker calls :meth:`SharedTemplateView.attach` and reconstructs
  templates lazily, memoizing per key — the numeric payload never
  travels through pickle;
* the parent calls :meth:`SharedTemplateStore.destroy` after the pool
  exits (the store is also a context manager).

Reconstruction is exact: minutia fields are stored as float64 and
rebuilt through the same :func:`~repro.matcher.types.template_from_arrays`
constructor the sensors use, so a view-served template is value-identical
to the original and matcher scores are unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Tuple

import numpy as np

from .errors import ConfigurationError
from .telemetry import get_recorder

#: One minutia row in the block: x_px, y_px, angle, kind, quality.
_ROW_FIELDS = 5

#: Index entry: (row_offset, n_minutiae, width_px, height_px, dpi, nfiq).
_Entry = Tuple[int, int, int, int, int, int]

#: Addressing key, mirroring ``Collection.get`` arguments.
_Key = Tuple[int, str, str, int]


@dataclass(frozen=True)
class StoreHandle:
    """Everything a worker needs to attach: block name plus the index.

    The index maps impression keys to row offsets inside the block; it is
    tiny (a few ints per impression) and travels through the pool
    initializer by pickle, unlike the template payload itself.
    """

    name: str
    n_rows: int
    index: Dict[_Key, _Entry]
    #: Pid of the packing process — attaches in the creator itself (the
    #: sequential fallback, tests) must keep the tracker registration.
    creator_pid: int


def _destroy_block(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one owned block; tolerates a racing unlink.

    Module-level so :mod:`weakref` finalizers can call it without
    keeping the store object alive.
    """
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass
    except OSError:  # pragma: no cover - interpreter teardown
        pass


def _unregister_from_tracker(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from this process's resource tracker.

    Attaching registers the segment with the resource tracker, which
    would unlink it when the *worker* exits — destroying the block while
    the parent and sibling workers still use it (and spewing warnings).
    Ownership stays with the creating process only.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except (AttributeError, KeyError, ValueError):  # pragma: no cover
        pass


def _tracker_is_shared_with_creator() -> bool:
    """Whether this process inherited the creator's resource tracker.

    Fork children share the parent's tracker process, so their
    attach-time registration is an idempotent no-op in the parent's name
    set — unregistering there would strip the *parent's* entry (and the
    second sibling's unregister would error inside the tracker).  Only a
    process with a private tracker (spawn children, unrelated processes)
    must unregister to keep its tracker from unlinking the block at
    exit.
    """
    return (
        multiprocessing.parent_process() is not None
        and multiprocessing.get_start_method(allow_none=True) == "fork"
    )


class SharedTemplateStore:
    """Parent-side owner of a packed template block.

    Use as a context manager so the block is always released::

        with SharedTemplateStore.pack(collection) as store:
            handle = store.handle()
            ...  # run the pool, initializer attaches via the handle
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, handle
    ) -> None:
        self._shm = shm
        self._handle = handle
        # Leak guard: a store dropped without destroy() (an exception
        # between pack and the pool, a crashed server teardown path)
        # must not strand a /dev/shm block until reboot.  destroy() is
        # idempotent, so the explicit call and the finalizer compose.
        self._finalizer = weakref.finalize(self, _destroy_block, shm)

    @classmethod
    def pack(cls, collection) -> "SharedTemplateStore":
        """Serialize every impression of ``collection`` into shared memory."""
        index: Dict[_Key, _Entry] = {}
        blocks = []
        offset = 0
        for impression in collection:
            template = impression.template
            n = len(template)
            rows = np.empty((n, _ROW_FIELDS), dtype=np.float64)
            if n:
                rows[:, 0:2] = template.positions_px()
                rows[:, 2] = template.angles()
                rows[:, 3] = template.kinds()
                rows[:, 4] = template.qualities()
            blocks.append(rows)
            key = (
                impression.subject_id,
                impression.finger_label,
                impression.device_id,
                impression.set_index,
            )
            index[key] = (
                offset,
                n,
                template.width_px,
                template.height_px,
                template.resolution_dpi,
                impression.nfiq,
            )
            offset += n
        payload = (
            np.concatenate(blocks, axis=0)
            if blocks
            else np.zeros((0, _ROW_FIELDS), dtype=np.float64)
        )
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, payload.nbytes)
        )
        if payload.size:
            target = np.ndarray(
                payload.shape, dtype=np.float64, buffer=shm.buf
            )
            target[:] = payload
        recorder = get_recorder()
        if recorder.active:
            recorder.gauge("shm.templates", float(len(index)))
            recorder.gauge("shm.bytes", float(payload.nbytes))
        handle = StoreHandle(
            name=shm.name, n_rows=offset, index=index, creator_pid=os.getpid()
        )
        return cls(shm, handle)

    def handle(self) -> StoreHandle:
        """The picklable attachment token for pool initializers."""
        return self._handle

    def destroy(self) -> None:
        """Close the parent mapping and unlink the block (idempotent)."""
        if self._shm is None:
            return
        self._finalizer.detach()
        _destroy_block(self._shm)
        self._shm = None

    def __enter__(self) -> "SharedTemplateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()


class SharedTemplateView:
    """Worker-side read-only view over a packed template block.

    Duck-types the slice of the ``Collection`` interface score generation
    uses: ``get(subject, finger, device, set)`` returning an object with
    ``.template`` and ``.nfiq``.  Templates are reconstructed lazily and
    memoized, so each worker pays the rebuild cost at most once per
    impression it actually touches.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: StoreHandle
    ) -> None:
        self._shm = shm
        self._rows = np.ndarray(
            (handle.n_rows, _ROW_FIELDS), dtype=np.float64, buffer=shm.buf
        )
        self._index = handle.index
        self._templates: Dict[_Key, "StoredImpression"] = {}

    @classmethod
    def attach(cls, handle: StoreHandle) -> "SharedTemplateView":
        """Map the block named by ``handle`` (read side)."""
        shm = shared_memory.SharedMemory(name=handle.name)
        if (
            os.getpid() != handle.creator_pid
            and not _tracker_is_shared_with_creator()
        ):
            _unregister_from_tracker(shm)
        return cls(shm, handle)

    def get(
        self, subject_id: int, finger: str, device_id: str, set_index: int
    ) -> "StoredImpression":
        """Fetch one impression view; raises with the key when absent."""
        key = (subject_id, finger, device_id, set_index)
        cached = self._templates.get(key)
        if cached is not None:
            return cached
        entry = self._index.get(key)
        if entry is None:
            raise ConfigurationError(f"no shared impression for key {key}")
        # Local import: runtime is the bottom layer and matcher imports
        # from it, so the template constructor resolves at call time.
        from ..matcher.types import template_from_arrays

        offset, n, width_px, height_px, dpi, nfiq = entry
        rows = self._rows[offset : offset + n]
        template = template_from_arrays(
            positions_px=rows[:, 0:2],
            angles=rows[:, 2],
            kinds=rows[:, 3].astype(np.int64),
            qualities=rows[:, 4].astype(np.int64),
            width_px=width_px,
            height_px=height_px,
            resolution_dpi=dpi,
        )
        impression = StoredImpression(template=template, nfiq=nfiq)
        self._templates[key] = impression
        return impression

    def __len__(self) -> int:
        return len(self._index)

    def close(self) -> None:
        """Drop this process's mapping (the block itself lives on)."""
        if self._shm is not None:
            self._rows = None
            self._shm.close()
            self._shm = None


@dataclass(frozen=True)
class StoredImpression:
    """The slice of an :class:`~repro.sensors.base.Impression` scoring needs."""

    template: Any  # :class:`~repro.matcher.types.Template`
    nfiq: int


#: Gallery index entry: (row_offset, n_minutiae, width_px, height_px,
#: dpi, descriptor_row).
_GalleryEntry = Tuple[int, int, int, int, int, int]

#: Gallery addressing key: (device, identity).
_GalleryKey = Tuple[str, str]


@dataclass(frozen=True)
class GalleryStoreHandle:
    """Attachment token of a packed serving gallery.

    Same idea as :class:`StoreHandle`, but keyed by (device, identity)
    and carrying the descriptor-matrix geometry: the block holds the
    minutia rows of every record followed by one contiguous
    ``(n_records, descriptor_dim)`` float64 matrix, so a sharded worker
    can rebuild both its templates *and* its
    :class:`~repro.core.prefilter.PrefilterIndex` slice without any
    payload travelling through pickle.
    """

    name: str
    n_rows: int
    n_records: int
    descriptor_dim: int
    index: Dict[_GalleryKey, _GalleryEntry]
    creator_pid: int


class SharedGalleryStore(SharedTemplateStore):
    """Parent-side owner of a packed serving-gallery block.

    The serving sibling of :meth:`SharedTemplateStore.pack`: instead of
    a synthesized collection it packs the live
    :class:`~repro.service.gallery.GalleryIndex` records — minutia rows
    plus each record's prefilter descriptor — into one block the worker
    pool maps.  Lifecycle (context manager, idempotent :meth:`destroy`,
    GC leak guard) is inherited.
    """

    @classmethod
    def pack_gallery(
        cls, records: Dict[_GalleryKey, Any]
    ) -> "SharedGalleryStore":
        """Pack ``{(device, identity): record}`` into shared memory.

        Records need ``.template`` and ``.descriptor`` (the
        :class:`~repro.service.gallery.GalleryRecord` surface).  Keys are
        packed in sorted order so the block layout is deterministic for
        a given gallery state.
        """
        index: Dict[_GalleryKey, _GalleryEntry] = {}
        blocks = []
        descriptors = []
        offset = 0
        dim = 0
        for position, key in enumerate(sorted(records)):
            record = records[key]
            template = record.template
            descriptor = np.asarray(record.descriptor, dtype=np.float64).ravel()
            if dim == 0:
                dim = descriptor.size
            if descriptor.size != dim:
                raise ConfigurationError(
                    f"descriptor of {key!r} has dim {descriptor.size}, "
                    f"expected {dim}"
                )
            n = len(template)
            rows = np.empty((n, _ROW_FIELDS), dtype=np.float64)
            if n:
                rows[:, 0:2] = template.positions_px()
                rows[:, 2] = template.angles()
                rows[:, 3] = template.kinds()
                rows[:, 4] = template.qualities()
            blocks.append(rows)
            descriptors.append(descriptor)
            index[key] = (
                offset,
                n,
                template.width_px,
                template.height_px,
                template.resolution_dpi,
                position,
            )
            offset += n
        rows_payload = (
            np.concatenate(blocks, axis=0)
            if blocks
            else np.zeros((0, _ROW_FIELDS), dtype=np.float64)
        )
        matrix_payload = (
            np.stack(descriptors)
            if descriptors
            else np.zeros((0, max(1, dim)), dtype=np.float64)
        )
        size = max(1, rows_payload.nbytes + matrix_payload.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=size)
        if rows_payload.size:
            target = np.ndarray(
                rows_payload.shape, dtype=np.float64, buffer=shm.buf
            )
            target[:] = rows_payload
        if matrix_payload.size:
            target = np.ndarray(
                matrix_payload.shape,
                dtype=np.float64,
                buffer=shm.buf,
                offset=rows_payload.nbytes,
            )
            target[:] = matrix_payload
        recorder = get_recorder()
        if recorder.active:
            recorder.gauge("shm.gallery.records", float(len(index)))
            recorder.gauge(
                "shm.gallery.bytes",
                float(rows_payload.nbytes + matrix_payload.nbytes),
            )
        handle = GalleryStoreHandle(
            name=shm.name,
            n_rows=offset,
            n_records=len(index),
            descriptor_dim=dim,
            index=index,
            creator_pid=os.getpid(),
        )
        return cls(shm, handle)

    def handle(self) -> GalleryStoreHandle:
        """The picklable attachment token for worker processes."""
        return self._handle


class SharedGalleryView:
    """Worker-side read-only view over a packed gallery block.

    Serves the base snapshot of one worker's shard: templates are
    reconstructed lazily (memoized per key, exactly as
    :class:`SharedTemplateView` does) and descriptor rows are zero-copy
    slices of the shared matrix, ready to seed a per-device
    :class:`~repro.core.prefilter.PrefilterIndex`.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, handle: GalleryStoreHandle
    ) -> None:
        self._shm = shm
        self._rows = np.ndarray(
            (handle.n_rows, _ROW_FIELDS), dtype=np.float64, buffer=shm.buf
        )
        self._matrix = np.ndarray(
            (handle.n_records, max(1, handle.descriptor_dim)),
            dtype=np.float64,
            buffer=shm.buf,
            offset=handle.n_rows * _ROW_FIELDS * 8,
        )
        self._index = handle.index
        self._templates: Dict[_GalleryKey, Any] = {}

    @classmethod
    def attach(cls, handle: GalleryStoreHandle) -> "SharedGalleryView":
        """Map the block named by ``handle`` (read side)."""
        shm = shared_memory.SharedMemory(name=handle.name)
        if (
            os.getpid() != handle.creator_pid
            and not _tracker_is_shared_with_creator()
        ):
            _unregister_from_tracker(shm)
        return cls(shm, handle)

    def keys(self):
        """Every packed (device, identity) key."""
        return self._index.keys()

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: _GalleryKey) -> bool:
        return key in self._index

    def template(self, device: str, identity: str):
        """Rebuild one record's template (memoized); raises when absent."""
        key = (device, identity)
        cached = self._templates.get(key)
        if cached is not None:
            return cached
        entry = self._index.get(key)
        if entry is None:
            raise ConfigurationError(f"no shared gallery record for {key}")
        from ..matcher.types import template_from_arrays

        offset, n, width_px, height_px, dpi, _position = entry
        rows = self._rows[offset : offset + n]
        template = template_from_arrays(
            positions_px=rows[:, 0:2],
            angles=rows[:, 2],
            kinds=rows[:, 3].astype(np.int64),
            qualities=rows[:, 4].astype(np.int64),
            width_px=width_px,
            height_px=height_px,
            resolution_dpi=dpi,
        )
        self._templates[key] = template
        return template

    def descriptor(self, device: str, identity: str) -> np.ndarray:
        """One record's descriptor row (a copy, safe to keep)."""
        entry = self._index.get((device, identity))
        if entry is None:
            raise ConfigurationError(
                f"no shared gallery record for {(device, identity)}"
            )
        return np.array(self._matrix[entry[5]], dtype=np.float64)

    def close(self) -> None:
        """Drop this process's mapping (the block itself lives on)."""
        if self._shm is not None:
            self._rows = None
            self._matrix = None
            self._shm.close()
            self._shm = None


__all__ = [
    "SharedTemplateStore",
    "SharedTemplateView",
    "SharedGalleryStore",
    "SharedGalleryView",
    "StoreHandle",
    "GalleryStoreHandle",
    "StoredImpression",
]
