"""Thin-plate-spline inter-sensor compensation (Ross & Nadgir).

Section II of the paper summarizes Ross & Nadgir's calibration model:
"an inter-sensor compensation model which computes the relative
distortion between images acquired using different devices", modeled by
"a thin-plate spline in which parameters rely on control points".

This module implements exactly that pipeline:

1. **learn** — given matched minutia pairs between a source device and a
   target device (obtained from genuine cross-device matches of a
   training cohort), fit a 2-D thin-plate spline mapping source
   coordinates to target coordinates;
2. **apply** — warp a probe template's minutiae through the spline before
   matching, removing the systematic inter-device distortion while
   leaving per-impression elastic noise untouched.

The TPS solve is the standard augmented linear system with kernel
``U(r) = r^2 log r`` and an optional regularization that keeps the
mapping smooth when control points are noisy (they always are — they
come from matcher correspondences, not hand labeling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..matcher.types import Minutia, Template
from ..runtime.errors import CalibrationError

#: Minimum control points for a stable 2-D TPS fit.
MIN_CONTROL_POINTS = 8


def _tps_kernel(r_sq: np.ndarray) -> np.ndarray:
    """U(r) = r^2 log r, evaluated safely at r = 0 (limit 0)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        out = 0.5 * r_sq * np.log(r_sq)
    return np.where(r_sq > 0.0, out, 0.0)


@dataclass(frozen=True)
class ThinPlateSpline:
    """A fitted 2-D thin-plate spline ``f: R^2 -> R^2``.

    Attributes
    ----------
    control_points:
        (n, 2) source control points.
    weights:
        (n + 3, 2) kernel weights plus the affine part, per output
        dimension.
    """

    control_points: np.ndarray
    weights: np.ndarray

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Map (m, 2) points through the spline."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        diff = pts[:, None, :] - self.control_points[None, :, :]
        r_sq = np.sum(diff**2, axis=2)
        kernel = _tps_kernel(r_sq)
        design = np.hstack([kernel, np.ones((len(pts), 1)), pts])
        return design @ self.weights

    def bending_energy_proxy(self, extent_mm: float = 12.0, n_probe: int = 9) -> float:
        """RMS displacement the spline applies over a probe grid.

        A cheap magnitude diagnostic: zero for the identity mapping,
        growing with the inter-device distortion the spline models.
        """
        grid = np.linspace(-extent_mm, extent_mm, n_probe)
        gx, gy = np.meshgrid(grid, grid)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        moved = self.transform(pts)
        return float(np.sqrt(np.mean(np.sum((moved - pts) ** 2, axis=1))))


def fit_tps(
    source_points: np.ndarray,
    target_points: np.ndarray,
    regularization: float = 0.5,
) -> ThinPlateSpline:
    """Fit a TPS mapping ``source -> target``.

    Parameters
    ----------
    source_points, target_points:
        Matched (n, 2) coordinate arrays, n >= :data:`MIN_CONTROL_POINTS`.
    regularization:
        Added to the kernel diagonal; trades exact interpolation for
        smoothness under noisy correspondences.
    """
    src = np.asarray(source_points, dtype=np.float64)
    dst = np.asarray(target_points, dtype=np.float64)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 2:
        raise CalibrationError(
            f"control point arrays must both be (n, 2); got {src.shape} vs {dst.shape}"
        )
    n = src.shape[0]
    if n < MIN_CONTROL_POINTS:
        raise CalibrationError(
            f"TPS needs >= {MIN_CONTROL_POINTS} control points, got {n}"
        )

    diff = src[:, None, :] - src[None, :, :]
    kernel = _tps_kernel(np.sum(diff**2, axis=2))
    kernel += regularization * np.eye(n)

    ones = np.ones((n, 1))
    p = np.hstack([ones, src])
    system = np.zeros((n + 3, n + 3))
    system[:n, :n] = kernel
    system[:n, n:] = p
    system[n:, :n] = p.T

    rhs = np.zeros((n + 3, 2))
    rhs[:n] = dst
    try:
        weights = np.linalg.solve(system, rhs)
    except np.linalg.LinAlgError as exc:
        raise CalibrationError(f"TPS system is singular: {exc}") from exc
    return ThinPlateSpline(control_points=src.copy(), weights=weights)


def control_points_from_matches(
    matcher,
    probe_templates: Sequence[Template],
    gallery_templates: Sequence[Template],
    max_pairs: int = 400,
) -> Tuple[np.ndarray, np.ndarray]:
    """Harvest TPS control points from genuine cross-device matches.

    For each genuine (probe, gallery) template pair of a training
    cohort, run the matcher, rigidly align the probe, and collect the
    matched minutia coordinate pairs.  The *residual* (post-rigid)
    displacement field is exactly the relative inter-device distortion
    Ross & Nadgir's model targets.
    """
    sources: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    total = 0
    for probe, gallery in zip(probe_templates, gallery_templates):
        result = matcher.match_detailed(probe, gallery)
        if result.pairing is None or result.transform is None:
            continue
        if result.pairing.n_matched == 0:
            continue
        moved = result.transform.apply(probe.positions_mm())
        pairs = result.pairing.pairs
        sources.append(moved[pairs[:, 0]])
        targets.append(gallery.positions_mm()[pairs[:, 1]])
        total += len(pairs)
        if total >= max_pairs:
            break
    if not sources:
        raise CalibrationError("no genuine matches produced control points")
    return np.vstack(sources)[:max_pairs], np.vstack(targets)[:max_pairs]


def apply_tps_to_template(template: Template, spline: ThinPlateSpline) -> Template:
    """Warp a template's minutiae through a fitted spline (mm domain)."""
    if len(template) == 0:
        return template
    moved_mm = spline.transform(template.positions_mm())
    moved_px = moved_mm * template.pixels_per_mm
    minutiae = tuple(
        Minutia(
            x=float(moved_px[i, 0]),
            y=float(moved_px[i, 1]),
            angle=m.angle,
            kind=m.kind,
            quality=m.quality,
        )
        for i, m in enumerate(template.minutiae)
    )
    return Template(
        minutiae=minutiae,
        width_px=template.width_px,
        height_px=template.height_px,
        resolution_dpi=template.resolution_dpi,
    )


__all__ = [
    "ThinPlateSpline",
    "fit_tps",
    "control_points_from_matches",
    "apply_tps_to_template",
    "MIN_CONTROL_POINTS",
]
