"""Collection protocol: session structure, D4 rules, quality gating."""

from types import SimpleNamespace

import pytest

from repro.quality.nfiq import MAX_REACQUISITIONS
from repro.runtime import SeedTree
from repro.runtime.errors import AcquisitionError
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder
from repro.sensors.inkcard import InkCardSensor
from repro.sensors.optical import OpticalSensor
from repro.sensors.protocol import (
    Collection,
    ProtocolSettings,
    _acquire_with_policy,
    acquire_subject_session,
    build_sensor,
)
from repro.sensors.registry import DEVICE_ORDER


@pytest.fixture(scope="module")
def sensors():
    return {d: build_sensor(d) for d in DEVICE_ORDER}


class TestBuildSensor:
    def test_families(self):
        assert isinstance(build_sensor("D0"), OpticalSensor)
        assert isinstance(build_sensor("D4"), InkCardSensor)


class TestSettings:
    def test_livescan_sets(self):
        settings = ProtocolSettings()
        for device in ("D0", "D1", "D2", "D3"):
            assert settings.sets_for(device) == 2

    def test_ink_card_two_impressions_one_collection(self):
        # One physical card: rolled (set 0) + slap (set 1).
        assert ProtocolSettings().sets_for("D4") == 2


class TestSession:
    def test_impression_count(self, tiny_population, sensors):
        subject = tiny_population.subject(0)
        impressions = acquire_subject_session(
            subject, sensors, SeedTree(1).child("s", 0), ["right_index"]
        )
        # 4 live-scans x 2 sets + ink x 2 impressions = 10 per finger.
        assert len(impressions) == 10

    def test_two_fingers_doubles(self, tiny_population, sensors):
        subject = tiny_population.subject(1)
        impressions = acquire_subject_session(
            subject, sensors, SeedTree(1).child("s", 1),
            ["right_index", "right_middle"],
        )
        assert len(impressions) == 20

    def test_presentation_counter_monotone(self, tiny_population, sensors):
        subject = tiny_population.subject(2)
        impressions = acquire_subject_session(
            subject, sensors, SeedTree(1).child("s", 2), ["right_index"]
        )
        indices = [imp.presentation_index for imp in impressions]
        assert indices == sorted(indices)
        assert indices[0] == 0

    def test_device_order_is_fixed_ink_last(self, tiny_population, sensors):
        subject = tiny_population.subject(3)
        impressions = acquire_subject_session(
            subject, sensors, SeedTree(1).child("s", 3), ["right_index"]
        )
        devices = [imp.device_id for imp in impressions]
        assert devices[-2:] == ["D4", "D4"]
        assert devices[0] == "D0"

    def test_missing_sensor_raises(self, tiny_population):
        subject = tiny_population.subject(0)
        with pytest.raises(AcquisitionError, match="D1"):
            acquire_subject_session(
                subject, {"D0": build_sensor("D0")}, SeedTree(1), ["right_index"]
            )

    def test_deterministic(self, tiny_population, sensors):
        subject = tiny_population.subject(4)
        a = acquire_subject_session(
            subject, sensors, SeedTree(9).child("s", 4), ["right_index"]
        )
        b = acquire_subject_session(
            subject, sensors, SeedTree(9).child("s", 4), ["right_index"]
        )
        assert [x.template.minutiae for x in a] == [x.template.minutiae for x in b]


class TestQualityGating:
    def test_gating_never_worsens_quality(self, tiny_population, sensors):
        settings_off = ProtocolSettings(quality_gating=False)
        settings_on = ProtocolSettings(quality_gating=True)
        worst_off, worst_on = [], []
        for sid in range(8):
            subject = tiny_population.subject(sid)
            tree = SeedTree(33).child("s", sid)
            off = acquire_subject_session(
                subject, sensors, tree, ["right_index"], settings_off
            )
            on = acquire_subject_session(
                subject, sensors, tree, ["right_index"], settings_on
            )
            worst_off.append(max(i.nfiq for i in off))
            worst_on.append(max(i.nfiq for i in on))
        assert sum(worst_on) <= sum(worst_off)


class _ScriptedSensor:
    """Stub whose acquisitions return a scripted NFIQ sequence."""

    device_id = "DX"

    def __init__(self, levels):
        self._levels = iter(levels)
        self.calls = 0

    def acquire(self, subject, finger, rng, *, set_index,
                presentation_index, signature_override=None):
        self.calls += 1
        return SimpleNamespace(nfiq=next(self._levels))


def _acquire_scripted(levels, *, quality_gating=True):
    sensor = _ScriptedSensor(levels)
    impression = _acquire_with_policy(
        sensor,
        subject=None,
        finger="right_index",
        session_tree=SeedTree(1).child("s", 0),
        set_index=0,
        presentation_counter=0,
        settings=ProtocolSettings(quality_gating=quality_gating),
    )
    return impression, sensor


class TestReacquisitionRule:
    """NIST SP 800-76 retry rule inside ``_acquire_with_policy``."""

    @pytest.fixture()
    def recorder(self):
        previous = get_recorder()
        live = enable_telemetry()
        yield live
        set_recorder(previous)

    def test_good_first_impression_is_not_retried(self):
        impression, sensor = _acquire_scripted([2])
        assert impression.nfiq == 2
        assert sensor.calls == 1

    def test_retries_are_bounded(self):
        # All-poor quality: the rule allows MAX_REACQUISITIONS retries
        # on top of the initial presentation, then gives up.
        impression, sensor = _acquire_scripted([5, 5, 5, 5, 5])
        assert sensor.calls == MAX_REACQUISITIONS + 1
        assert impression.nfiq == 5

    def test_best_impression_is_retained(self):
        # Quality worsens across retries; the first (best) impression
        # must be the one kept, not the last acquired.
        impression, sensor = _acquire_scripted([4, 5, 5, 5])
        assert sensor.calls == MAX_REACQUISITIONS + 1
        assert impression.nfiq == 4

    def test_gating_off_returns_first_acquisition(self):
        impression, sensor = _acquire_scripted([5, 1], quality_gating=False)
        assert impression.nfiq == 5
        assert sensor.calls == 1

    def test_telemetry_counts_attempts_and_reacquisitions(self, recorder):
        _acquire_scripted([4, 5, 5, 5])
        assert recorder.counter_value("acquisition.attempts") == 4
        assert recorder.counter_value("acquisition.reacquisitions") == 3

    def test_telemetry_quiet_without_retries(self, recorder):
        _acquire_scripted([2])
        assert recorder.counter_value("acquisition.attempts") == 1
        assert recorder.counter_value("acquisition.reacquisitions") == 0


class TestCollection:
    def test_add_get_roundtrip(self, tiny_population, sensors):
        subject = tiny_population.subject(5)
        collection = Collection()
        for imp in acquire_subject_session(
            subject, sensors, SeedTree(1).child("s", 5), ["right_index"]
        ):
            collection.add(imp)
        fetched = collection.get(5, "right_index", "D2", 1)
        assert fetched.device_id == "D2"
        assert fetched.set_index == 1
        assert collection.has(5, "right_index", "D0", 0)
        assert not collection.has(5, "right_index", "D0", 7)
        assert collection.subjects() == [5]

    def test_duplicate_rejected(self, tiny_collection):
        imp = next(iter(tiny_collection))
        with pytest.raises(AcquisitionError, match="duplicate"):
            tiny_collection.add(imp)

    def test_missing_key_raises_with_key(self):
        with pytest.raises(AcquisitionError, match="999"):
            Collection().get(999, "right_index", "D0", 0)

    def test_merge(self, tiny_population, sensors):
        a, b = Collection(), Collection()
        imps = acquire_subject_session(
            tiny_population.subject(6), sensors, SeedTree(1).child("s", 6),
            ["right_index"],
        )
        for imp in imps[:5]:
            a.add(imp)
        for imp in imps[5:]:
            b.add(imp)
        a.merge(b)
        assert len(a) == len(imps)

    def test_tiny_collection_complete(self, tiny_collection, tiny_config):
        # 10 subjects x 2 fingers x 10 impressions.
        assert len(tiny_collection) == tiny_config.n_subjects * 2 * 10
