"""Optical live-scan sensor model (devices D0–D3).

All four live-scan devices in the study are optical: a glass platen, a
laser light source and a CCD/CMOS camera (Section III.A).  The generic
pipeline in :class:`~repro.sensors.base.Sensor` already covers the
optical family; this subclass exists to make the family explicit in the
type system and to model one optical-specific effect: a faint barrel
distortion from the prism/lens assembly, folded into the device
signature magnitude (optical devices differ mostly through geometry, not
through contact physics).
"""

from __future__ import annotations

import numpy as np

from .base import Sensor
from .registry import DeviceProfile, get_profile


class OpticalSensor(Sensor):
    """A glass-platen optical live-scan device."""

    def __init__(self, profile: DeviceProfile) -> None:
        if profile.family != "optical":
            raise ValueError(
                f"OpticalSensor requires an optical profile, got {profile.family!r}"
            )
        super().__init__(profile)

    @classmethod
    def from_id(cls, device_id: str) -> "OpticalSensor":
        """Construct the optical sensor registered as ``device_id``."""
        return cls(get_profile(device_id))

    def _extra_angle_noise_rad(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Optical devices add no family-specific direction noise."""
        return np.zeros(n, dtype=np.float64)


__all__ = ["OpticalSensor"]
