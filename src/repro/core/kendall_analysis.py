"""Table 4 machinery: Kendall rank-correlation across sensor scenarios.

The paper "compares the scenario in which the gallery and probe are
acquired using the same device (DX vs. DX) to the scenario where gallery
and probe images are acquired using different devices (DX vs. DY)" with
Kendall's rank correlation over the per-subject genuine score vectors.

Reading the matrix (following the paper's own convention):

* a p-value near zero means the two scenarios *rank subjects the same
  way* — the cross-device scenario preserves the same-device ordering;
* a large p-value (the paper's {D2,D1}, {D3,D1}, {D3,D2} cells) means
  the cross-device ranking is unrelated — the device change scrambled
  which subjects score high;
* the diagonal correlates a vector with itself (tau = 1), giving the
  ~1e-242 p-values the paper reports at n = 494;
* the matrix is asymmetric by construction: cell (row, col) tests
  (row,row) against (row,col), and swapping gallery and probe devices is
  a different experiment — the asymmetry the paper calls "interesting
  and surprising" is structural.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..sensors.registry import DEVICE_ORDER, LIVESCAN_DEVICES
from ..stats.kendall import KendallResult, kendall_tau

#: Row devices of Table 4 (live-scans only; ten-print cards never enroll).
TABLE4_ROWS = LIVESCAN_DEVICES

#: Column devices of Table 4 (all five sources as probes).
TABLE4_COLS = DEVICE_ORDER

#: Significance level used when classifying cells.
ALPHA = 0.01


def kendall_matrix(study) -> Dict[Tuple[str, str], KendallResult]:
    """All Table 4 cells: Kendall test of (row,row) vs (row,col) vectors."""
    results: Dict[Tuple[str, str], KendallResult] = {}
    for row in TABLE4_ROWS:
        base = study.genuine_vector(row, row)
        for col in TABLE4_COLS:
            other = study.genuine_vector(row, col)
            results[(row, col)] = kendall_tau(base, other)
    return results


def pvalue_matrix(results: Dict[Tuple[str, str], KendallResult]) -> np.ndarray:
    """P-values as a (rows x cols) array in Table 4 order."""
    matrix = np.full((len(TABLE4_ROWS), len(TABLE4_COLS)), np.nan)
    for i, row in enumerate(TABLE4_ROWS):
        for j, col in enumerate(TABLE4_COLS):
            matrix[i, j] = results[(row, col)].p_value
    return matrix


def insignificant_pairs(
    results: Dict[Tuple[str, str], KendallResult], alpha: float = ALPHA
) -> Tuple[Tuple[str, str], ...]:
    """Cells whose rankings decorrelate (p > alpha), excluding the diagonal.

    The paper's statistically *different* scenarios — its {D2,D1},
    {D3,D1}, {D3,D2} finding — are exactly these cells.
    """
    pairs = [
        (row, col)
        for (row, col), result in results.items()
        if row != col and result.p_value > alpha
    ]
    return tuple(sorted(pairs))


def asymmetry_count(
    results: Dict[Tuple[str, str], KendallResult], alpha: float = ALPHA
) -> int:
    """How many (A,B)/(B,A) cell pairs disagree on significance.

    Quantifies the paper's observation that "the results of Kendall's
    rank test are not symmetric".
    """
    count = 0
    for i, a in enumerate(TABLE4_ROWS):
        for b in TABLE4_ROWS[i + 1 :]:
            sig_ab = results[(a, b)].p_value <= alpha
            sig_ba = results[(b, a)].p_value <= alpha
            if sig_ab != sig_ba:
                count += 1
    return count


__all__ = [
    "kendall_matrix",
    "pvalue_matrix",
    "insignificant_pairs",
    "asymmetry_count",
    "TABLE4_ROWS",
    "TABLE4_COLS",
    "ALPHA",
]
