"""Image-quality feature vector.

NIST's NFIQ predicts matcher performance from features computed on the
fingerprint image (minutiae count and quality, ridge clarity, usable
area, ...).  Our acquisition pipeline never rasterizes full images for
the quantitative experiments, but it knows the *ground truth* of every
factor those image features estimate, so the quality features here are
the ideal versions of NFIQ's inputs:

========================  ====================================================
feature                   image-domain analogue
========================  ====================================================
minutiae_count            number of detected minutiae
contact_area_fraction     usable foreground area / pad area
mean_coherence            orientation-field coherence (ridge clarity)
dryness_artifact          broken-ridge speckle from dry skin
noise_level               sensor noise + spurious detail
mean_minutia_quality      average per-minutia quality (0-1)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QualityFeatures:
    """Quality evidence for one impression (all factors in [0, 1] except count)."""

    minutiae_count: int
    contact_area_fraction: float
    mean_coherence: float
    dryness_artifact: float
    noise_level: float
    mean_minutia_quality: float

    def __post_init__(self) -> None:
        if self.minutiae_count < 0:
            raise ValueError("minutiae_count cannot be negative")
        for name in ("contact_area_fraction", "mean_coherence",
                     "dryness_artifact", "noise_level", "mean_minutia_quality"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def as_vector(self) -> np.ndarray:
        """Feature vector for classifiers (device inference, Poh et al.).

        The count is squashed to [0, 1] via a soft saturation at 60
        minutiae so all entries share a scale.
        """
        return np.array(
            [
                np.tanh(self.minutiae_count / 60.0),
                self.contact_area_fraction,
                self.mean_coherence,
                self.dryness_artifact,
                self.noise_level,
                self.mean_minutia_quality,
            ],
            dtype=np.float64,
        )


#: Length of :meth:`QualityFeatures.as_vector`.
FEATURE_DIM = 6


__all__ = ["QualityFeatures", "FEATURE_DIM"]
