"""End-to-end reconstruction of the paper's WVU 2012 dataset.

``build_collection`` runs the full collection campaign for a
configuration: synthesize the population, march every subject through
the fixed-order protocol, and return the complete
:class:`~repro.sensors.protocol.Collection`.

The collection is a *pure function of the configuration* — the same
``StudyConfig`` always reproduces the identical dataset.  That purity
pays twice:

* **Persistence.**  Each subject's session is addressed by a
  content digest (:func:`subject_artifact_digest`) of everything that
  determines its bytes — population seed, the subject's sampled traits,
  the device profiles, the protocol settings and the pipeline's
  code-version salt.  With an :class:`~repro.runtime.artifacts.ArtifactStore`
  configured, ``build_collection`` becomes *load-or-build*: warm
  subjects are decoded from the ``impressions`` tier, only the misses
  are acquired, and freshly built sessions stream back into the store
  (plus a compact ``quality`` tier bundle for analyses that never need
  minutiae).

* **Parallelism.**  Misses fan out over
  :func:`~repro.runtime.parallel.parallel_map_batched`: workers are
  seeded once with ``(config, settings)`` by an initializer, each batch
  acquires a shard of subjects, and ``on_result`` streams completed
  sessions into the store as they arrive.  Results are identical to the
  serial path because every impression's randomness comes from the
  subject's own seed-tree node.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.artifacts import ArtifactStore, canonical_digest
from ..runtime.config import StudyConfig, resolve_worker_count
from ..runtime.parallel import parallel_map_batched
from ..runtime.progress import NullProgress, ProgressReporter
from ..runtime.rng import SeedTree
from ..runtime.telemetry import get_logger, get_recorder
from ..sensors.base import Impression
from ..sensors.codec import (
    impressions_from_arrays,
    impressions_to_arrays,
    quality_to_arrays,
)
from ..sensors.protocol import (
    Collection,
    ProtocolSettings,
    acquire_subject_session,
    build_sensor,
)
from ..sensors.registry import DEVICE_ORDER, get_profile
from ..synthesis.population import Population

#: Per-process sensor instances (signature fields are pure device state).
_SENSOR_CACHE: dict = {}

#: Worker-process state seeded by :func:`_init_acquire_worker`.
_WORKER_STATE: dict = {}

_log = get_logger("datasets")


def _sensors_for(device_order: Sequence[str]) -> dict:
    key = tuple(device_order)
    if key not in _SENSOR_CACHE:
        _SENSOR_CACHE[key] = {d: build_sensor(d) for d in device_order}
    return _SENSOR_CACHE[key]


def subject_session(
    config: StudyConfig,
    subject_id: int,
    settings: ProtocolSettings = ProtocolSettings(),
) -> List[Impression]:
    """All impressions of one subject's collection session.

    Module-level and driven purely by ``(config, subject_id, settings)``
    so it can run in a worker process.
    """
    population = Population(config)
    subject = population.subject(subject_id)
    tree = SeedTree(config.master_seed).child("session", subject_id)
    sensors = _sensors_for(settings.device_order)
    return acquire_subject_session(
        subject,
        sensors,
        tree,
        finger_labels=population.finger_labels,
        settings=settings,
    )


def subject_artifact_digest(
    config: StudyConfig,
    subject_id: int,
    settings: ProtocolSettings = ProtocolSettings(),
    population: Optional[Population] = None,
) -> str:
    """Content address of one subject's acquired session.

    The digest covers every input that determines the session's bytes:
    the population seed, the subject's sampled traits (cheap — no master
    fingers are synthesized), the finger labels captured, the complete
    device profiles in capture order, and the protocol settings.  The
    code-version salt of :mod:`repro.runtime.artifacts` is folded in by
    :func:`~repro.runtime.artifacts.canonical_digest`, so a pipeline
    change reads every existing store as cold.
    """
    if population is None:
        population = Population(config)
    payload = {
        "population_seed": config.master_seed,
        "subject": subject_id,
        "traits": population.traits(subject_id),
        "fingers": list(population.finger_labels),
        "devices": [get_profile(d) for d in settings.device_order],
        "protocol": settings,
    }
    return canonical_digest(payload)


def _init_acquire_worker(config: StudyConfig, settings: ProtocolSettings) -> None:
    """Pool initializer: pin the acquisition context in this process."""
    _WORKER_STATE["config"] = config
    _WORKER_STATE["settings"] = settings


def _acquire_subject_shard(
    subject_ids: Sequence[int],
) -> List[Tuple[int, List[Impression]]]:
    """Worker body: acquire one shard of subjects (module-level, picklable)."""
    config = _WORKER_STATE["config"]
    settings = _WORKER_STATE["settings"]
    return [(sid, subject_session(config, sid, settings)) for sid in subject_ids]


def _load_cached_subjects(
    artifacts: ArtifactStore,
    digests: Dict[int, str],
    recorder,
) -> Dict[int, List[Impression]]:
    """Decode every warm subject session; undecodable bundles are misses."""
    loaded: Dict[int, List[Impression]] = {}
    for sid, digest in digests.items():
        arrays = artifacts.load("impressions", digest)
        if arrays is None:
            continue
        try:
            loaded[sid] = impressions_from_arrays(arrays)
        except (KeyError, ValueError):
            # A bundle that deserializes but fails structural validation
            # is as useless as a torn npz: drop it and rebuild from seeds.
            artifacts.invalidate("impressions", digest)
            if recorder.active:
                recorder.count("artifacts.corrupt")
    return loaded


def _store_subject(
    artifacts: ArtifactStore,
    config: StudyConfig,
    digest: str,
    subject_id: int,
    impressions: List[Impression],
) -> None:
    """Persist one freshly acquired session (impressions + quality tiers)."""
    meta = {
        "subject": subject_id,
        "config_fingerprint": config.fingerprint(),
        "impressions": len(impressions),
    }
    artifacts.store(
        "impressions", digest, impressions_to_arrays(impressions), meta=meta
    )
    artifacts.store("quality", digest, quality_to_arrays(impressions), meta=meta)


def build_collection(
    config: StudyConfig,
    settings: ProtocolSettings = ProtocolSettings(),
    progress: Optional[ProgressReporter] = None,
    artifacts: Optional[ArtifactStore] = None,
) -> Collection:
    """Acquire (or warm-load) the whole campaign for ``config``.

    With ``artifacts`` enabled (explicitly, or via ``config.artifact_dir``),
    each subject session is first looked up by content digest; only the
    misses are acquired, fanned out over ``config.n_workers`` processes,
    and streamed back into the store.  The returned collection is
    bit-identical across cold, warm and parallel builds: impressions are
    assembled in subject order and every impression's randomness derives
    from its own seed-tree node.
    """
    if artifacts is None:
        artifacts = ArtifactStore(config.artifact_dir)
    if progress is None:
        progress = NullProgress(total=config.n_subjects, label="collection")
    recorder = get_recorder()
    subject_ids = list(range(config.n_subjects))
    per_subject: Dict[int, List[Impression]] = {}
    with recorder.span("acquisition"):
        population = Population(config)
        digests: Dict[int, str] = {}
        if artifacts.enabled:
            with recorder.span("acquisition.digest"):
                digests = {
                    sid: subject_artifact_digest(
                        config, sid, settings, population=population
                    )
                    for sid in subject_ids
                }
            with recorder.span("acquisition.load"):
                per_subject = _load_cached_subjects(artifacts, digests, recorder)
            for _ in per_subject:
                progress.update()
        missing = [sid for sid in subject_ids if sid not in per_subject]
        if recorder.active:
            recorder.count("acquisition.subjects_loaded",
                           len(subject_ids) - len(missing))
            recorder.count("acquisition.subjects_built", len(missing))
        if missing:
            _acquire_missing(
                config, settings, artifacts, digests, missing,
                per_subject, progress, recorder,
            )
    collection = Collection()
    for sid in subject_ids:
        _tally_impressions(recorder, collection, per_subject[sid])
    progress.finish()
    _log.info(
        "collection acquired",
        extra={"data": {"subjects": config.n_subjects,
                        "loaded": config.n_subjects - len(missing),
                        "built": len(missing),
                        "impressions": len(collection)}},
    )
    return collection


def _acquire_missing(
    config: StudyConfig,
    settings: ProtocolSettings,
    artifacts: ArtifactStore,
    digests: Dict[int, str],
    missing: List[int],
    per_subject: Dict[int, List[Impression]],
    progress: ProgressReporter,
    recorder,
) -> None:
    """Acquire the cold subjects, parallel when configured, and store them."""

    def _collect(shard: List[Tuple[int, List[Impression]]]) -> None:
        for sid, impressions in shard:
            per_subject[sid] = impressions
            if artifacts.enabled:
                _store_subject(artifacts, config, digests[sid], sid, impressions)
            progress.update()

    workers = resolve_worker_count(config.n_workers)
    start = time.perf_counter()
    with recorder.span("acquisition.build"):
        if workers > 1 and len(missing) >= 8:
            shard_size = max(1, len(missing) // (workers * 4))
            shards = [
                missing[i : i + shard_size]
                for i in range(0, len(missing), shard_size)
            ]
            parallel_map_batched(
                _acquire_subject_shard,
                shards,
                n_workers=workers,
                initializer=_init_acquire_worker,
                initargs=(config, settings),
                on_result=_collect,
            )
            if recorder.active:
                recorder.count("acquire.parallel.subjects", len(missing))
                recorder.observe(
                    "acquire.parallel.seconds", time.perf_counter() - start
                )
        else:
            _init_acquire_worker(config, settings)
            _collect([(sid, subject_session(config, sid, settings))
                      for sid in missing])
            if recorder.active:
                recorder.count("acquire.serial.subjects", len(missing))
                recorder.observe(
                    "acquire.serial.seconds", time.perf_counter() - start
                )


def load_quality_arrays(
    config: StudyConfig,
    settings: ProtocolSettings = ProtocolSettings(),
    artifacts: Optional[ArtifactStore] = None,
) -> Optional[Dict[str, np.ndarray]]:
    """Warm-load the whole campaign's quality evidence, minutiae-free.

    Returns the concatenated per-impression quality arrays
    (``subject_id``, ``finger``, ``device``, ``set_index``, ``nfiq``,
    ``features``, ``feature_counts`` — see
    :func:`repro.sensors.codec.quality_to_arrays`) when **every** subject
    is warm in the ``quality`` tier, else ``None``: quality analyses
    either get the complete picture cheaply or fall back to a full
    ``build_collection``.
    """
    if artifacts is None:
        artifacts = ArtifactStore(config.artifact_dir)
    if not artifacts.enabled:
        return None
    population = Population(config)
    bundles = []
    for sid in range(config.n_subjects):
        digest = subject_artifact_digest(config, sid, settings, population=population)
        arrays = artifacts.load("quality", digest)
        if arrays is None:
            return None
        bundles.append(arrays)
    return {
        name: np.concatenate([bundle[name] for bundle in bundles])
        for name in bundles[0]
    }


def warm_artifacts(
    config: StudyConfig,
    settings: ProtocolSettings = ProtocolSettings(),
    progress: Optional[ProgressReporter] = None,
    artifacts: Optional[ArtifactStore] = None,
) -> Dict[str, Dict[str, int]]:
    """Populate the artifact store for ``config`` and report its stats.

    A thin wrapper over :func:`build_collection` for pre-warming (the
    ``repro warm`` CLI command and scheduled cache-priming jobs): builds
    whatever is cold, discards the in-memory collection, and returns the
    store's per-tier footprint.
    """
    if artifacts is None:
        artifacts = ArtifactStore(config.artifact_dir)
    build_collection(config, settings, progress=progress, artifacts=artifacts)
    return artifacts.stats()


def _tally_impressions(recorder, collection: Collection, impressions) -> None:
    """Add a session's impressions, keeping the NFIQ tally counters."""
    for impression in impressions:
        collection.add(impression)
    if recorder.active:
        recorder.count("acquisition.impressions", len(impressions))
        for impression in impressions:
            recorder.count(f"acquisition.nfiq.level.{impression.nfiq}")


def default_device_order() -> Sequence[str]:
    """The fixed capture order of the paper's protocol."""
    return DEVICE_ORDER


__all__ = [
    "build_collection",
    "subject_session",
    "subject_artifact_digest",
    "load_quality_arrays",
    "warm_artifacts",
    "default_device_order",
]
