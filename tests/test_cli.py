"""Command-line interface."""

import io
import json

import pytest

from repro.cli import ARTIFACTS, GENERIC_ERROR_EXIT, build_parser, exit_code_for, main
from repro.runtime.errors import (
    AcquisitionError,
    CacheError,
    CalibrationError,
    ConfigurationError,
    MatcherError,
    PermanentError,
    ReproError,
    SynthesisError,
    TemplateFormatError,
    TransientError,
)
from repro.runtime.manifest import validate_manifest
from repro.runtime.telemetry import NullRecorder, get_recorder


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_only_validates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--only", "table99"])

    def test_run_resume_and_fail_fast_flags(self):
        args = build_parser().parse_args(["run"])
        assert args.resume is False
        assert args.fail_fast is True
        args = build_parser().parse_args(["run", "--resume", "--no-fail-fast"])
        assert args.resume is True
        assert args.fail_fast is False
        args = build_parser().parse_args(["run", "--fail-fast"])
        assert args.fail_fast is True


class TestExitCodes:
    """Every error family maps to a distinct, stable exit code."""

    @pytest.mark.parametrize(
        ("exc", "code"),
        [
            (ConfigurationError("x"), 2),
            (TemplateFormatError("x"), 3),
            (MatcherError("x"), 4),
            (AcquisitionError("x"), 5),
            (SynthesisError("x"), 5),
            (CalibrationError("x"), 6),
            (CacheError("x"), 7),
            (PermanentError("x"), 8),
            (TransientError("x"), 9),
            (ReproError("x"), GENERIC_ERROR_EXIT),
        ],
    )
    def test_mapping(self, exc, code):
        assert exit_code_for(exc) == code

    def test_codes_never_collide_with_success_or_argparse(self):
        # 0 is success and argparse exits with 2 only for usage errors;
        # library failures start at 2 as well (config errors read the
        # same to a shell) but never use 0 or 1.
        codes = {
            exit_code_for(exc)
            for exc in (
                ConfigurationError("x"), TemplateFormatError("x"),
                MatcherError("x"), AcquisitionError("x"), SynthesisError("x"),
                CalibrationError("x"), CacheError("x"), PermanentError("x"),
                TransientError("x"), ReproError("x"),
            )
        }
        assert 0 not in codes and 1 not in codes


class TestInfo:
    def test_lists_devices(self):
        code, out = run_cli(["info"])
        assert code == 0
        for model in ("Guardian R2", "digID Mini", "TouchPrint", "Seek II"):
            assert model in out


class TestAcquireInspectMatch:
    @pytest.fixture()
    def fmr_files(self, tmp_path):
        paths = {}
        for name, argv in {
            "a": ["acquire", "--subject", "0", "--device", "D0",
                  "--out", str(tmp_path / "a.fmr")],
            "b": ["acquire", "--subject", "0", "--device", "D0", "--set", "1",
                  "--out", str(tmp_path / "b.fmr")],
            "other": ["acquire", "--subject", "1", "--device", "D0",
                      "--out", str(tmp_path / "other.fmr")],
        }.items():
            code, out = run_cli(argv)
            assert code == 0
            assert "wrote" in out
            paths[name] = str(tmp_path / f"{name}.fmr")
        return paths

    def test_inspect(self, fmr_files):
        code, out = run_cli(["inspect", fmr_files["a"]])
        assert code == 0
        assert "INCITS 378" in out
        assert "minutiae" in out

    def test_match_genuine(self, fmr_files):
        code, out = run_cli(["match", fmr_files["b"], fmr_files["a"]])
        assert code == 0
        assert "likely same finger" in out

    def test_match_impostor(self, fmr_files):
        code, out = run_cli(["match", fmr_files["other"], fmr_files["a"]])
        assert code == 0
        assert "likely different fingers" in out

    def test_match_ridgecount_engine(self, fmr_files):
        code, out = run_cli(
            ["match", fmr_files["b"], fmr_files["a"], "--matcher", "ridgecount"]
        )
        assert code == 0
        assert "similarity score" in out

    def test_acquire_deterministic(self, tmp_path):
        argv = ["acquire", "--subject", "2", "--device", "D3", "--seed", "9"]
        run_cli(argv + ["--out", str(tmp_path / "x.fmr")])
        run_cli(argv + ["--out", str(tmp_path / "y.fmr")])
        assert (tmp_path / "x.fmr").read_bytes() == (tmp_path / "y.fmr").read_bytes()


class TestRun:
    def test_run_single_artifact(self, tmp_path):
        code, out = run_cli(
            ["run", "--subjects", "4", "--workers", "0",
             "--cache-dir", str(tmp_path), "--only", "table3"]
        )
        assert code == 0
        assert "Table 3" in out
        assert "Figure 2" not in out

    def test_run_all_artifacts(self, tmp_path):
        code, out = run_cli(
            ["run", "--subjects", "4", "--workers", "0",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        for marker in ("Figure 1", "Table 3", "Table 5", "Figure 5"):
            assert marker in out

    def test_artifact_list_is_complete(self):
        assert set(ARTIFACTS) == {
            "fig1", "table1", "table3", "fig2", "fig3", "fig4",
            "table4", "table5", "table6", "fig5",
        }


class TestManifestAndStats:
    @pytest.fixture()
    def manifest_path(self, tmp_path):
        path = tmp_path / "run.json"
        code, out = run_cli(
            ["run", "--subjects", "4", "--workers", "0",
             "--cache-dir", str(tmp_path / "cache"),
             "--only", "table3", "--manifest-out", str(path)]
        )
        assert code == 0
        assert "run manifest written" in out
        return path

    def test_manifest_is_valid_and_complete(self, manifest_path):
        data = json.loads(manifest_path.read_text())
        validate_manifest(data)
        span_names = {c["name"] for c in data["spans"]["children"]}
        # All four score scenarios were timed, plus the rendered analysis.
        assert {"scores.DMG", "scores.DDMG", "scores.DMI",
                "scores.DDMI"} <= span_names
        assert "analysis.table3" in span_names
        assert data["counters"]["matcher.invocations"] > 0
        assert data["counters"]["cache.store"] > 0
        assert data["config"]["n_subjects"] == 4
        assert len(data["config"]["fingerprint"]) >= 12

    def test_run_restores_null_recorder(self, manifest_path):
        assert isinstance(get_recorder(), NullRecorder)

    def test_stats_renders_manifest(self, manifest_path):
        code, out = run_cli(["stats", str(manifest_path)])
        assert code == 0
        assert "spans (wall clock)" in out
        assert "scores.DMG" in out
        assert "matcher.invocations" in out
        assert "cache:" in out

    def test_stats_rejects_missing_file(self, tmp_path, capsys):
        # Library failures no longer escape main(): one stderr line and
        # the family-specific exit code (ConfigurationError -> 2).
        code, _ = run_cli(["stats", str(tmp_path / "absent.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert "repro: ConfigurationError: cannot read manifest" in err
        assert "Traceback" not in err

    def test_stats_rejects_invalid_manifest(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 1}))
        code, _ = run_cli(["stats", str(path)])
        assert code == 2
        assert "missing required key" in capsys.readouterr().err

    def test_run_without_manifest_keeps_telemetry_off(self, tmp_path):
        code, _ = run_cli(
            ["run", "--subjects", "4", "--workers", "0",
             "--cache-dir", str(tmp_path / "cache"), "--only", "table3"]
        )
        assert code == 0
        assert isinstance(get_recorder(), NullRecorder)

    def test_log_level_flag_accepted(self, tmp_path, capsys):
        import logging

        code, _ = run_cli(
            ["--log-level", "error", "run", "--subjects", "4",
             "--workers", "0", "--cache-dir", str(tmp_path / "cache"),
             "--only", "table3"]
        )
        assert code == 0
        logger = logging.getLogger("repro")
        try:
            assert logger.level == logging.ERROR
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_telemetry", False):
                    logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)
            logger.propagate = True


class TestRenderExtract:
    def test_render_then_extract_then_match(self, tmp_path):
        for sid, name in ((3, "g1"), (4, "h1")):
            code, out = run_cli(
                ["render", "--subject", str(sid),
                 "--out", str(tmp_path / f"{name}.pgm")]
            )
            assert code == 0 and "minutiae planted" in out
        code, out = run_cli(
            ["render", "--subject", "3", "--render-seed", "7",
             "--moisture", "0.56", "--out", str(tmp_path / "g2.pgm")]
        )
        assert code == 0

        for name in ("g1", "g2", "h1"):
            code, out = run_cli(
                ["extract", str(tmp_path / f"{name}.pgm"),
                 "--out", str(tmp_path / f"{name}.fmr")]
            )
            assert code == 0 and "extracted" in out

        code, genuine_out = run_cli(
            ["match", str(tmp_path / "g2.fmr"), str(tmp_path / "g1.fmr")]
        )
        assert "likely same finger" in genuine_out
        code, impostor_out = run_cli(
            ["match", str(tmp_path / "h1.fmr"), str(tmp_path / "g1.fmr")]
        )
        assert "likely different fingers" in impostor_out

    def test_render_seed_changes_identity(self, tmp_path):
        run_cli(["render", "--subject", "0", "--seed", "1",
                 "--out", str(tmp_path / "a.pgm")])
        run_cli(["render", "--subject", "0", "--seed", "2",
                 "--out", str(tmp_path / "b.pgm")])
        assert (tmp_path / "a.pgm").read_bytes() != (tmp_path / "b.pgm").read_bytes()


class TestRunOut:
    def test_out_writes_artifact_files(self, tmp_path):
        code, out = run_cli(
            ["run", "--subjects", "4", "--workers", "0",
             "--cache-dir", str(tmp_path / "cache"),
             "--only", "table3", "--only", "table5",
             "--out", str(tmp_path / "artifacts")]
        )
        assert code == 0
        assert (tmp_path / "artifacts" / "table3.txt").exists()
        assert (tmp_path / "artifacts" / "table5.txt").exists()
        assert not (tmp_path / "artifacts" / "fig2.txt").exists()
        assert "Table 3" in (tmp_path / "artifacts" / "table3.txt").read_text()


class TestDataset:
    def test_summary_and_habituation(self):
        code, out = run_cli(["dataset", "--subjects", "4", "--workers", "0"])
        assert code == 0
        assert "Collection summary" in out
        assert "first vs last" in out


class TestPredict:
    def test_predict_pair(self, tmp_path):
        code, out = run_cli(
            ["predict", "D0", "D4", "--subjects", "4", "--workers", "0",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        assert "P(false non-match" in out
        assert "credible interval" in out


class TestWarm:
    def test_warm_populates_store(self, tmp_path):
        arts = tmp_path / "arts"
        code, out = run_cli(
            ["warm", "--subjects", "4", "--workers", "0",
             "--artifact-dir", str(arts)]
        )
        assert code == 0
        assert "impressions" in out and "quality" in out
        assert len(list((arts / "impressions").glob("*.npz"))) == 4

    def test_warm_clear_drops_entries(self, tmp_path):
        arts = str(tmp_path / "arts")
        run_cli(["warm", "--subjects", "4", "--workers", "0",
                 "--artifact-dir", arts])
        code, out = run_cli(
            ["warm", "--subjects", "4", "--workers", "0",
             "--artifact-dir", arts, "--clear"]
        )
        assert code == 0
        assert "cleared 8 artifact entries" in out

    def test_run_after_warm_hits_artifacts(self, tmp_path):
        arts = str(tmp_path / "arts")
        run_cli(["warm", "--subjects", "4", "--workers", "0",
                 "--artifact-dir", arts])
        manifest = tmp_path / "m.json"
        code, _ = run_cli(
            ["run", "--subjects", "4", "--workers", "0",
             "--cache-dir", str(tmp_path / "cache"), "--artifact-dir", arts,
             "--only", "table3", "--manifest-out", str(manifest)]
        )
        assert code == 0
        data = json.loads(manifest.read_text())
        validate_manifest(data)
        assert data["counters"]["artifacts.hit"] == 4
        assert data["artifacts"]["hits"] == 4
        assert data["artifacts"]["misses"] == 0
        code, out = run_cli(["stats", str(manifest)])
        assert code == 0
        assert "artifacts: 4 hits" in out


class TestEnroll:
    def test_enroll_synthesized(self, tmp_path):
        gallery = str(tmp_path / "gallery")
        code, out = run_cli(
            ["enroll", "--gallery-dir", gallery, "--subject", "1",
             "--capture-device", "D0", "--seed", "1234"]
        )
        assert code == 0
        assert "enrolled 'subject-1' on device D0" in out
        assert "gallery now holds 1 enrollments" in out

    def test_enroll_from_fmr_file(self, tmp_path):
        fmr = tmp_path / "probe.fmr"
        run_cli(["acquire", "--subject", "0", "--device", "D1",
                 "--out", str(fmr)])
        gallery = str(tmp_path / "gallery")
        code, out = run_cli(
            ["enroll", "--gallery-dir", gallery, "--template", str(fmr),
             "--device", "D1"]
        )
        assert code == 0
        assert "enrolled 'probe' on device D1" in out

    def test_enroll_is_idempotent_on_reenroll(self, tmp_path):
        gallery = str(tmp_path / "gallery")
        argv = ["enroll", "--gallery-dir", gallery, "--subject", "0",
                "--seed", "7"]
        run_cli(argv)
        code, out = run_cli(argv)
        assert code == 0
        assert "gallery now holds 1 enrollments" in out


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8799
        assert args.gallery_dir == ".repro_gallery"
        assert args.max_nfiq == 4
        assert args.no_batching is False

    def test_port_in_use_exits_transient(self, tmp_path):
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(1)
        try:
            port = sock.getsockname()[1]
            code, _ = run_cli(
                ["serve", "--gallery-dir", str(tmp_path / "gallery"),
                 "--port", str(port)]
            )
        finally:
            sock.close()
        assert code == 9  # TransientError: retry or pick another port

    def test_invalid_nfiq_ceiling_exits_config(self, tmp_path):
        code, _ = run_cli(
            ["serve", "--gallery-dir", str(tmp_path / "gallery"),
             "--max-nfiq", "7", "--port", "0"]
        )
        assert code == 2

    def test_stats_renders_service_rollup(self, tmp_path):
        # A manifest carrying service counters renders the service block.
        from repro.runtime.manifest import RunManifest
        from repro.runtime.telemetry import (
            disable_telemetry,
            enable_telemetry,
        )
        from repro.runtime.config import StudyConfig
        from repro.service import ServiceStats

        recorder = enable_telemetry()
        try:
            stats = ServiceStats()
            stats.record_request("verify", 0.01, 200)
            stats.record_decision(accepted=True)
            stats.record_batch(3)
            manifest = RunManifest.from_recorder(
                recorder, StudyConfig(n_subjects=4)
            )
        finally:
            disable_telemetry()
        path = manifest.write(tmp_path / "service_manifest.json")
        code, out = run_cli(["stats", str(path)])
        assert code == 0
        assert "service: 1 requests (0 enroll, 1 verify, 0 identify)" in out
        assert "batching: 1 batches, 3 jobs" in out
