"""Demographics and trait sampling (Figure 1 anchors)."""

import numpy as np
import pytest

from repro.synthesis.subject import (
    AGE_GROUPS,
    ETHNICITY_GROUPS,
    Demographics,
    SubjectTraits,
    demographic_histogram,
    sample_demographics,
    sample_traits,
)


class TestDistributions:
    def test_age_anchor_53_percent(self):
        # The paper: "53% varying between 20 and 29 years old".
        rng = np.random.default_rng(0)
        records = [sample_demographics(rng) for __ in range(5000)]
        rate = sum(r.age_group == "20-29" for r in records) / len(records)
        assert rate == pytest.approx(0.53, abs=0.03)

    def test_ethnicity_anchor_572_percent(self):
        # The paper: "57.2% of the population is Caucasian".
        rng = np.random.default_rng(1)
        records = [sample_demographics(rng) for __ in range(5000)]
        rate = sum(r.ethnicity == "Caucasian" for r in records) / len(records)
        assert rate == pytest.approx(0.572, abs=0.03)

    def test_group_probabilities_normalized(self):
        assert sum(p for __, p in AGE_GROUPS) == pytest.approx(1.0)
        assert sum(p for __, p in ETHNICITY_GROUPS) == pytest.approx(1.0)


class TestTraits:
    def test_ranges(self):
        rng = np.random.default_rng(2)
        for __ in range(200):
            demo = sample_demographics(rng)
            traits = sample_traits(rng, demo)
            assert 0.0 <= traits.skin_dryness <= 1.0
            assert 0.30 <= traits.pressure_mean <= 1.0
            assert 0.0 < traits.pressure_spread <= 0.30
            assert 0.0 < traits.placement_sloppiness <= 1.0
            assert 0.0 <= traits.habituation_rate <= 0.8

    def test_age_shifts_dryness(self):
        rng = np.random.default_rng(3)
        young = [
            sample_traits(rng, Demographics("<20", "Other")).skin_dryness
            for __ in range(400)
        ]
        old = [
            sample_traits(rng, Demographics("60+", "Other")).skin_dryness
            for __ in range(400)
        ]
        assert np.mean(old) > np.mean(young)

    def test_trait_validation(self):
        with pytest.raises(ValueError):
            SubjectTraits(2.0, 0.5, 0.1, 0.5, 0.1)


class TestHistogram:
    def test_counts_every_record(self):
        records = (
            Demographics("20-29", "Asian"),
            Demographics("20-29", "Caucasian"),
            Demographics("60+", "Caucasian"),
        )
        table = demographic_histogram(records)
        assert table["age"]["20-29"] == 2
        assert table["ethnicity"]["Caucasian"] == 2
        assert sum(table["age"].values()) == 3
