"""Shared helpers for the benchmark suite (kept out of conftest so bench
modules can import them without module-name collisions with the test
suite's conftest)."""

from __future__ import annotations

import os
from pathlib import Path

from repro import StudyConfig

#: Default benchmark population (fast on a laptop, stable statistics).
DEFAULT_BENCH_SUBJECTS = 48

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_config(**overrides) -> StudyConfig:
    """The benchmark configuration, honouring the REPRO_* environment."""
    params = dict(
        n_subjects=DEFAULT_BENCH_SUBJECTS,
        n_workers=min(4, os.cpu_count() or 1),
        cache_dir=str(Path(__file__).parent / ".bench_cache"),
    )
    params.update(overrides)
    return StudyConfig.from_environment(**params)
