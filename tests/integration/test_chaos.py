"""Chaos suite: the study under injected faults.

The robustness claim of the execution layer is *semantic*: a run that
crashes, hangs or transiently fails must still produce scores that are
bit-identical to an undisturbed run, and an aborted run must resume
from its checkpoints instead of recomputing finished work.

``resolve_worker_count`` clamps to the core count, so on a single-core
runner the pool never engages on its own; these tests monkeypatch the
resolver in *both* consumers (``repro.core.study`` re-exports it) to
force a real two-worker pool.  Faults only fire inside pool workers, so
without the patch nothing here would inject at all.
"""

import numpy as np
import pytest

import repro.core.study as study_mod
import repro.runtime.parallel as parallel_mod
from repro.api import InteroperabilityStudy, StudyConfig
from repro.runtime.errors import PermanentError
from repro.runtime.faults import ENV_LEDGER, ENV_SPEC
from repro.runtime.telemetry import enable_telemetry, get_recorder, set_recorder

#: DDMG enumerates ``n * (n - 1) + n`` directed pairs + genuine jobs;
#: 13 subjects yield 260 jobs — past the 256-job pool gate with room
#: for five chunks, small enough to keep the suite quick.
SUBJECTS = 13


@pytest.fixture(scope="module")
def chaos_base(tmp_path_factory):
    """Module-shared artifact store so the collection builds only once."""
    return tmp_path_factory.mktemp("chaos")


@pytest.fixture(scope="module")
def reference(chaos_base):
    """Fault-free DDMG scores (serial, uncached) to compare against."""
    config = StudyConfig(
        n_subjects=SUBJECTS,
        n_workers=0,
        cache_dir=None,
        artifact_dir=str(chaos_base / "artifacts"),
    )
    study = InteroperabilityStudy(config)
    return study._scores_for("DDMG", study._jobs_for("DDMG"))


@pytest.fixture()
def recorder():
    previous = get_recorder()
    live = enable_telemetry()
    yield live
    set_recorder(previous)


@pytest.fixture()
def forced_pool(monkeypatch):
    monkeypatch.setattr(study_mod, "resolve_worker_count", lambda requested: 2)
    monkeypatch.setattr(
        parallel_mod, "resolve_worker_count", lambda requested: 2
    )


@pytest.fixture()
def faulty_config(chaos_base, tmp_path):
    """Fresh score cache per test; artifact store shared with reference."""
    return StudyConfig(
        n_subjects=SUBJECTS,
        n_workers=2,
        cache_dir=str(tmp_path / "cache"),
        artifact_dir=str(chaos_base / "artifacts"),
    )


def _assert_identical(score_set, reference):
    np.testing.assert_array_equal(score_set.scores, reference.scores)
    np.testing.assert_array_equal(
        score_set.subject_gallery, reference.subject_gallery
    )
    np.testing.assert_array_equal(
        score_set.subject_probe, reference.subject_probe
    )


class TestFaultRecovery:
    def test_crash_and_transient_faults_leave_scores_bit_identical(
        self, reference, faulty_config, forced_pool, recorder, monkeypatch,
        tmp_path,
    ):
        monkeypatch.setenv(ENV_SPEC, "crash:1,transient:2")
        monkeypatch.setenv(ENV_LEDGER, str(tmp_path / "ledger"))
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        study = InteroperabilityStudy(faulty_config)
        out = study._scores_for("DDMG", study._jobs_for("DDMG"))
        _assert_identical(out, reference)
        assert recorder.counter_value("supervisor.retries") >= 1
        assert recorder.counter_value("supervisor.pool_restarts") >= 1

    def test_hung_worker_is_detected_and_scores_survive(
        self, reference, faulty_config, forced_pool, recorder, monkeypatch,
        tmp_path,
    ):
        monkeypatch.setenv(ENV_SPEC, "hang:1:60")
        monkeypatch.setenv(ENV_LEDGER, str(tmp_path / "ledger"))
        monkeypatch.setenv("REPRO_BATCH_TIMEOUT", "2")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        study = InteroperabilityStudy(faulty_config)
        out = study._scores_for("DDMG", study._jobs_for("DDMG"))
        _assert_identical(out, reference)
        assert recorder.counter_value("supervisor.timeouts") >= 1
        assert recorder.counter_value("supervisor.pool_restarts") >= 1


class TestCheckpointResume:
    def test_abort_checkpoints_then_resume_is_bit_identical(
        self, reference, faulty_config, forced_pool, recorder, monkeypatch,
        tmp_path,
    ):
        # Phase 1: a targeted permanent fault kills chunk 2.  The run
        # aborts, but every chunk that finished first is checkpointed
        # (the fail-fast abort settles healthy inflight batches so their
        # results reach the checkpoint store before the raise).
        monkeypatch.setenv(ENV_SPEC, "permanent@DDMG-chunk0002:1")
        monkeypatch.setenv(ENV_LEDGER, str(tmp_path / "ledger"))
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.01")
        faulty = InteroperabilityStudy(faulty_config)
        with pytest.raises(PermanentError, match="injected permanent fault"):
            faulty._scores_for("DDMG", faulty._jobs_for("DDMG"))
        stored = recorder.counter_value("study.checkpoint.stored")
        assert stored > 0

        # Phase 2: resume without faults.  Exactly the checkpointed
        # chunks are reloaded; the rest recompute; the assembled scores
        # match the undisturbed reference bit for bit.
        monkeypatch.delenv(ENV_SPEC)
        monkeypatch.delenv(ENV_LEDGER)
        resumed = InteroperabilityStudy(faulty_config, resume=True)
        out = resumed._scores_for("DDMG", resumed._jobs_for("DDMG"))
        assert recorder.counter_value("study.checkpoint.resumed") == stored
        _assert_identical(out, reference)

        # A completed run cleans its checkpoints out of the cache...
        cache_dir = tmp_path / "cache"
        leftovers = [
            p.name for p in cache_dir.iterdir() if "-ckpt-" in p.name
        ]
        assert leftovers == []

        # ...and leaves the ordinary score cache warm.
        again = InteroperabilityStudy(faulty_config)
        out2 = again._scores_for("DDMG", again._jobs_for("DDMG"))
        assert recorder.counter_value("study.scores.cached") == 1
        _assert_identical(out2, reference)
