"""Synthetic fingerprint generation (SFinGe-style).

Substitutes the paper's 494-participant WVU 2012 data collection with a
deterministic synthetic population: orientation fields from the
zero-pole model, ridge-consistent master minutiae, per-subject
interaction traits, and Figure 1 demographics.
"""

from .master import (
    RIDGE_PERIOD_MM,
    TYPE_BIFURCATION,
    TYPE_ENDING,
    MasterFinger,
    MasterMinutia,
    synthesize_master_finger,
)
from .orientation import OrientationField, Singularity, sample_field_grid
from .pattern import (
    PATTERN_FREQUENCIES,
    PatternClass,
    build_orientation_field,
    sample_pattern_class,
)
from .population import FINGER_LABELS, FINGER_POSITION_CODES, Population, Subject
from .ridges import ascii_preview, read_pgm, render_ridge_image, write_pgm
from .subject import (
    AGE_GROUPS,
    ETHNICITY_GROUPS,
    Demographics,
    SubjectTraits,
    demographic_histogram,
    sample_demographics,
    sample_traits,
)

__all__ = [
    "MasterFinger",
    "MasterMinutia",
    "synthesize_master_finger",
    "RIDGE_PERIOD_MM",
    "TYPE_ENDING",
    "TYPE_BIFURCATION",
    "OrientationField",
    "Singularity",
    "sample_field_grid",
    "PatternClass",
    "PATTERN_FREQUENCIES",
    "sample_pattern_class",
    "build_orientation_field",
    "Population",
    "Subject",
    "FINGER_LABELS",
    "FINGER_POSITION_CODES",
    "Demographics",
    "SubjectTraits",
    "AGE_GROUPS",
    "ETHNICITY_GROUPS",
    "sample_demographics",
    "sample_traits",
    "demographic_histogram",
    "render_ridge_image",
    "write_pgm",
    "read_pgm",
    "ascii_preview",
]
