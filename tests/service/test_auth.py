"""Keyed access control: keyfile parsing, header handling, live 401/403.

The contract under test: a server with a keyfile refuses anonymous and
wrong-role callers in the ``/v1`` error envelope (401 ``unauthorized``
/ 403 ``forbidden``, request ids included), keeps ``/healthz`` open for
probes, hot-reloads rotated keyfiles without a restart — and a server
*without* a keyfile behaves bit-identically to the pre-auth stack.
"""

import json
import os
import time

import pytest

from repro.runtime.errors import ConfigurationError
from repro.service import (
    BatchingConfig,
    GalleryIndex,
    ServiceClient,
    ServiceClientError,
    ServiceRunner,
    VerificationServer,
    parse_exposition,
    sample_value,
)
from repro.service.auth import (
    ANONYMOUS,
    ApiKeyAuthenticator,
    AuthenticationError,
    AuthorizationError,
    KEY_PREFIX,
    Principal,
    generate_key,
    load_keyfile,
    parse_auth_header,
    parse_keyfile,
    write_keyfile,
)
from repro.service.reqlog import RequestLog, iter_reqlog

FINGER = "right_index"

READ_KEY = "rk_reader_secret"
WRITE_KEY = "rk_writer_secret"
ADMIN_KEY = "rk_admin_secret"


def _keyfile(tmp_path, entries=None):
    path = tmp_path / "keys.json"
    write_keyfile(path, entries if entries is not None else [
        {"principal": "reader", "key": READ_KEY,
         "roles": ["read"], "limits": {}},
        {"principal": "writer", "key": WRITE_KEY,
         "roles": ["read", "write"], "limits": {}},
        {"principal": "operator", "key": ADMIN_KEY,
         "roles": ["read", "write", "admin"], "limits": {}},
    ])
    return path


def _server(gallery, matcher, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("batching", BatchingConfig(max_wait_ms=5.0))
    return VerificationServer(gallery, matcher=matcher, **kwargs)


class TestKeyfileParsing:
    def test_roundtrip(self, tmp_path):
        path = _keyfile(tmp_path)
        entries = load_keyfile(path)
        assert [e["principal"] for e in entries] == [
            "reader", "writer", "operator",
        ]
        assert entries[1]["roles"] == ["read", "write"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_keyfile(tmp_path / "nope.json") == []

    def test_invalid_json_raises(self):
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            parse_keyfile("{nope")

    def test_duplicate_principal_raises(self):
        text = json.dumps({"keys": [
            {"principal": "a", "key": "k1", "roles": ["read"]},
            {"principal": "a", "key": "k2", "roles": ["read"]},
        ]})
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_keyfile(text)

    def test_unknown_role_raises(self):
        text = json.dumps({"keys": [
            {"principal": "a", "key": "k", "roles": ["root"]},
        ]})
        with pytest.raises(ConfigurationError, match="roles"):
            parse_keyfile(text)

    def test_empty_key_raises(self):
        text = json.dumps({"keys": [
            {"principal": "a", "key": "", "roles": ["read"]},
        ]})
        with pytest.raises(ConfigurationError, match="key"):
            parse_keyfile(text)

    def test_generated_keys_are_prefixed_and_unique(self):
        keys = {generate_key() for _ in range(32)}
        assert len(keys) == 32
        assert all(k.startswith(KEY_PREFIX) for k in keys)

    def test_keyfile_written_private(self, tmp_path):
        path = _keyfile(tmp_path)
        assert (os.stat(path).st_mode & 0o777) == 0o600


class TestHeaderParsing:
    def test_bearer(self):
        assert parse_auth_header({"authorization": "Bearer abc"}) == "abc"

    def test_bearer_scheme_is_case_insensitive(self):
        assert parse_auth_header({"authorization": "bearer abc"}) == "abc"

    def test_x_api_key(self):
        assert parse_auth_header({"x-api-key": "abc"}) == "abc"

    def test_no_credential_is_none(self):
        assert parse_auth_header({}) is None

    @pytest.mark.parametrize("raw", [
        "Basic abc",        # wrong scheme
        "Bearer",           # no token
        "Bearer   ",        # blank token
        "abc",              # schemeless
    ])
    def test_malformed_authorization_raises(self, raw):
        with pytest.raises(AuthenticationError):
            parse_auth_header({"authorization": raw})

    def test_empty_x_api_key_raises(self):
        with pytest.raises(AuthenticationError):
            parse_auth_header({"x-api-key": "  "})


class TestAuthenticator:
    def test_resolves_each_key_to_its_principal(self, tmp_path):
        auth = ApiKeyAuthenticator(_keyfile(tmp_path))
        assert auth.authenticate(
            {"authorization": f"Bearer {READ_KEY}"}
        ).name == "reader"
        assert auth.authenticate({"x-api-key": WRITE_KEY}).name == "writer"

    def test_unknown_key_raises(self, tmp_path):
        auth = ApiKeyAuthenticator(_keyfile(tmp_path))
        with pytest.raises(AuthenticationError, match="unknown"):
            auth.authenticate({"authorization": "Bearer rk_wrong"})

    def test_missing_credential_raises(self, tmp_path):
        auth = ApiKeyAuthenticator(_keyfile(tmp_path))
        with pytest.raises(AuthenticationError, match="required"):
            auth.authenticate({})

    def test_lookup_sweeps_every_hash(self, tmp_path, monkeypatch):
        """The sweep is constant-shape: every stored hash is compared on
        every lookup, hit or miss, first entry or last — no early exit
        for a timing side channel to read."""
        import repro.service.auth as auth_mod

        auth = ApiKeyAuthenticator(_keyfile(tmp_path))
        comparisons = []
        real = auth_mod.hmac.compare_digest
        monkeypatch.setattr(
            auth_mod.hmac, "compare_digest",
            lambda a, b: comparisons.append(1) or real(a, b),
        )
        for token in (READ_KEY, ADMIN_KEY, "rk_wrong"):
            comparisons.clear()
            try:
                auth.authenticate({"x-api-key": token})
            except AuthenticationError:
                pass
            assert len(comparisons) == 3

    def test_authorize_by_role(self, tmp_path):
        auth = ApiKeyAuthenticator(_keyfile(tmp_path))
        reader = auth.authenticate({"x-api-key": READ_KEY})
        auth.authorize(reader, "verify")
        with pytest.raises(AuthorizationError, match="write"):
            auth.authorize(reader, "enroll")
        with pytest.raises(AuthorizationError, match="admin"):
            auth.authorize(reader, "metrics")

    def test_unknown_endpoint_fails_closed(self):
        assert ANONYMOUS.can("admin")
        with pytest.raises(AuthorizationError):
            ApiKeyAuthenticator.authorize(
                Principal("p", ("read", "write")), "mystery-endpoint"
            )

    def test_reload_picks_up_rotation(self, tmp_path):
        path = _keyfile(tmp_path)
        auth = ApiKeyAuthenticator(path)
        assert auth.principals == ["operator", "reader", "writer"]
        write_keyfile(path, [
            {"principal": "fresh", "key": "rk_new",
             "roles": ["read"], "limits": {}},
        ])
        assert auth.reload() == 1
        assert auth.principals == ["fresh"]
        auth.authenticate({"x-api-key": "rk_new"})
        with pytest.raises(AuthenticationError):
            auth.authenticate({"x-api-key": READ_KEY})

    def test_maybe_reload_follows_mtime(self, tmp_path):
        path = _keyfile(tmp_path)
        clock = [0.0]
        auth = ApiKeyAuthenticator(
            path, reload_interval_s=1.0, clock=lambda: clock[0]
        )
        write_keyfile(path, [
            {"principal": "late", "key": "rk_late",
             "roles": ["read"], "limits": {}},
        ])
        os.utime(path, (time.time() + 5, time.time() + 5))
        auth.maybe_reload()  # within the interval: stat is skipped
        assert "reader" in auth.principals
        clock[0] = 2.0
        auth.maybe_reload()
        assert auth.principals == ["late"]

    def test_vanished_keyfile_keeps_last_table(self, tmp_path):
        path = _keyfile(tmp_path)
        auth = ApiKeyAuthenticator(path)
        path.unlink()
        assert auth.reload() == 3
        auth.authenticate({"x-api-key": READ_KEY})

    def test_malformed_keyfile_raises_on_reload(self, tmp_path):
        path = _keyfile(tmp_path)
        auth = ApiKeyAuthenticator(path)
        path.write_text("{broken")
        with pytest.raises(ConfigurationError):
            auth.reload()


@pytest.fixture()
def keyed_service(tmp_path, tiny_collection, matcher):
    """A keyed server with one enrollment, plus the keyfile path."""
    path = _keyfile(tmp_path)
    gallery = GalleryIndex(tmp_path / "gallery")
    gallery.enroll(
        "subject-0",
        tiny_collection.get(0, FINGER, "D0", 0).template,
        device="D0",
    )
    reqlog = RequestLog(tmp_path / "requests.jsonl")
    # A huge reload interval pins the key table: only the explicit
    # /admin/keys/reload endpoint may pick up rotations mid-test.
    server = _server(
        gallery, matcher,
        auth=ApiKeyAuthenticator(path, reload_interval_s=3600.0),
        reqlog=reqlog,
    )
    with ServiceRunner(server) as (host, port):
        yield host, port, path, reqlog


class TestKeyedServer:
    def test_healthz_stays_open(self, keyed_service):
        host, port, _, _ = keyed_service
        with ServiceClient(host, port) as client:
            assert client.healthz()["status"] == "ok"

    def test_keyless_request_is_401_in_the_envelope(self, keyed_service):
        host, port, _, _ = keyed_service
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.stats()
            assert excinfo.value.status == 401
            assert excinfo.value.code == "unauthorized"
            assert excinfo.value.request_id
            assert client.last_headers.get("www-authenticate") == "Bearer"

    def test_malformed_header_is_401_not_anonymous(
        self, keyed_service, tiny_collection
    ):
        host, port, _, _ = keyed_service
        with ServiceClient(host, port, api_key="") as client:
            # "" renders as "Bearer " — a present-but-empty credential.
            probe = tiny_collection.get(0, FINGER, "D0", 1).template
            with pytest.raises(ServiceClientError) as excinfo:
                client.verify("subject-0", probe, device="D0")
            assert excinfo.value.status == 401
            assert excinfo.value.code == "unauthorized"

    def test_read_key_verifies_but_cannot_enroll(
        self, keyed_service, tiny_collection
    ):
        host, port, _, _ = keyed_service
        probe = tiny_collection.get(0, FINGER, "D0", 1).template
        with ServiceClient(host, port, api_key=READ_KEY) as client:
            reply = client.verify("subject-0", probe, device="D0")
            assert reply["decision"] == "accept"
            with pytest.raises(ServiceClientError) as excinfo:
                client.enroll("subject-9", probe, device="D0")
            assert excinfo.value.status == 403
            assert excinfo.value.code == "forbidden"
            assert excinfo.value.request_id
            with pytest.raises(ServiceClientError) as excinfo:
                client.delete("subject-0", device="D0")
            assert excinfo.value.status == 403

    def test_write_key_enrolls(self, keyed_service, tiny_collection):
        host, port, _, _ = keyed_service
        with ServiceClient(host, port, api_key=WRITE_KEY) as client:
            reply = client.enroll(
                "subject-1",
                tiny_collection.get(1, FINGER, "D0", 0).template,
                device="D0",
            )
            assert reply["identity"] == "subject-1"

    def test_admin_surface_needs_the_admin_role(self, keyed_service):
        host, port, _, _ = keyed_service
        with ServiceClient(host, port, api_key=READ_KEY) as client:
            for call in (client.stats, client.metrics):
                with pytest.raises(ServiceClientError) as excinfo:
                    call()
                assert excinfo.value.status == 403
        with ServiceClient(host, port, api_key=ADMIN_KEY) as client:
            auth_block = client.stats()["auth"]
            assert auth_block["enabled"] is True
            assert auth_block["outcomes"]["forbidden"] >= 1

    def test_metrics_count_auth_outcomes(self, keyed_service):
        host, port, _, _ = keyed_service
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceClientError):
                client.stats()  # one keyless refusal on the books
        with ServiceClient(host, port, api_key=ADMIN_KEY) as client:
            families = parse_exposition(client.metrics())
        assert sample_value(families, "repro_auth_enabled", {}) == 1
        assert sample_value(
            families, "repro_auth_requests_total", {"outcome": "unauthorized"}
        ) >= 1
        assert sample_value(
            families, "repro_auth_requests_total", {"outcome": "ok"}
        ) >= 1

    def test_reqlog_lines_carry_the_principal(
        self, keyed_service, tiny_collection
    ):
        host, port, _, reqlog = keyed_service
        probe = tiny_collection.get(0, FINGER, "D0", 1).template
        with ServiceClient(host, port, api_key=READ_KEY) as client:
            client.verify("subject-0", probe, device="D0")
            with pytest.raises(ServiceClientError):
                client.enroll("subject-9", probe, device="D0")
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceClientError):
                client.verify("subject-0", probe, device="D0")
        # The audit line lands just after the response goes out; give
        # the server a beat to flush all three lines.
        deadline = time.monotonic() + 5.0
        by_status = {}
        while time.monotonic() < deadline and set(by_status) != {200, 401, 403}:
            by_status = {
                record["status"]: record["principal"]
                for record in iter_reqlog(reqlog.path)
                if record["endpoint"] in ("verify", "enroll")
            }
        assert by_status[200] == "reader"
        # Authorization failed *after* authentication succeeded, so the
        # refusal is still attributed to the caller.
        assert by_status[403] == "reader"
        assert by_status[401] is None

    def test_keys_reload_endpoint(self, keyed_service, tiny_collection):
        host, port, path, _ = keyed_service
        write_keyfile(path, [
            {"principal": "rotated", "key": "rk_rotated",
             "roles": ["read", "admin"], "limits": {}},
        ])
        with ServiceClient(host, port, api_key=READ_KEY) as client:
            status, raw = client._exchange(
                "POST", "/v1/admin/keys/reload"
            )
            assert status == 403  # reload is an admin-only surface
        with ServiceClient(host, port, api_key=ADMIN_KEY) as client:
            status, raw = client._exchange(
                "POST", "/v1/admin/keys/reload"
            )
            assert status == 200
            assert json.loads(raw) == {"reloaded": True, "principals": 1}
        probe = tiny_collection.get(0, FINGER, "D0", 1).template
        with ServiceClient(host, port, api_key="rk_rotated") as client:
            assert client.verify(
                "subject-0", probe, device="D0"
            )["decision"] == "accept"
        with ServiceClient(host, port, api_key=READ_KEY) as client:
            with pytest.raises(ServiceClientError) as excinfo:
                client.verify("subject-0", probe, device="D0")
            assert excinfo.value.status == 401


class TestOpenServer:
    def test_no_keyfile_serves_open(self, tmp_path, tiny_collection, matcher):
        gallery = GalleryIndex(tmp_path / "gallery")
        gallery.enroll(
            "subject-0",
            tiny_collection.get(0, FINGER, "D0", 0).template,
            device="D0",
        )
        server = _server(gallery, matcher)
        assert server.auth is None and server.limits is None
        with ServiceRunner(server) as (host, port):
            with ServiceClient(host, port) as client:
                probe = tiny_collection.get(0, FINGER, "D0", 1).template
                assert client.verify(
                    "subject-0", probe, device="D0"
                )["decision"] == "accept"
                assert client.stats()["auth"]["enabled"] is False
                families = parse_exposition(client.metrics())
                assert sample_value(families, "repro_auth_enabled", {}) == 0
                status, _ = client._exchange("POST", "/v1/admin/keys/reload")
                assert status == 404  # nothing to reload on an open server

    def test_auth_false_forces_open_despite_env(
        self, tmp_path, matcher, monkeypatch
    ):
        path = _keyfile(tmp_path)
        monkeypatch.setenv("REPRO_SERVE_KEYS", str(path))
        open_server = _server(
            GalleryIndex(tmp_path / "g1"), matcher, auth=False
        )
        assert open_server.auth is None
        keyed_server = _server(GalleryIndex(tmp_path / "g2"), matcher)
        assert keyed_server.auth is not None
        assert keyed_server.auth.path == path
