"""Batched matching must equal scalar matching bit-for-bit.

``match_many`` is the throughput kernel behind score generation; the
scalar ``match`` stays as the parity oracle.  These tests drive both
over the same >=1000-job workload (DMG genuine plus DDMI impostor, the
two extremes of the Table 2 scenarios) and demand exact equality.
"""

import numpy as np
import pytest

from repro.core.scores import (
    enumerate_dmg_jobs,
    group_jobs_gallery_major,
    run_jobs,
    run_jobs_batched,
    sample_ddmi_jobs,
)
from repro.runtime import SeedTree

FINGER = "right_index"


@pytest.fixture(scope="module")
def parity_jobs():
    """DMG + DDMI jobs for the tiny collection, >=1000 in total."""
    dmg = enumerate_dmg_jobs(10)
    ddmi = sample_ddmi_jobs(10, 960, SeedTree(777))
    assert len(dmg) + len(ddmi) >= 1000
    return {"DMG": dmg, "DDMI": ddmi}


class TestBatchScalarParity:
    @pytest.mark.parametrize("scenario", ["DMG", "DDMI"])
    def test_run_jobs_batched_matches_scalar(
        self, parity_jobs, tiny_collection, matcher, scenario
    ):
        jobs = parity_jobs[scenario]
        scalar = run_jobs(jobs, tiny_collection, matcher, FINGER, scenario)
        batched = run_jobs_batched(
            jobs, tiny_collection, matcher, FINGER, scenario
        )
        np.testing.assert_array_equal(scalar.scores, batched.scores)
        np.testing.assert_array_equal(
            scalar.subject_gallery, batched.subject_gallery
        )
        np.testing.assert_array_equal(
            scalar.subject_probe, batched.subject_probe
        )
        np.testing.assert_array_equal(
            scalar.device_gallery, batched.device_gallery
        )
        np.testing.assert_array_equal(
            scalar.device_probe, batched.device_probe
        )
        np.testing.assert_array_equal(scalar.nfiq_probe, batched.nfiq_probe)

    def test_match_many_equals_match_per_gallery_group(
        self, parity_jobs, tiny_collection, matcher
    ):
        jobs = parity_jobs["DDMI"][:200]
        for (subject_g, device_g, set_g), indices in group_jobs_gallery_major(
            jobs
        ):
            gallery = tiny_collection.get(
                subject_g, FINGER, device_g, set_g
            ).template
            probes = [
                tiny_collection.get(
                    jobs[k][3], FINGER, jobs[k][4], jobs[k][5]
                ).template
                for k in indices
            ]
            batch = matcher.match_many(probes, gallery)
            scalar = [matcher.match(probe, gallery) for probe in probes]
            np.testing.assert_array_equal(
                np.asarray(batch), np.asarray(scalar)
            )

    def test_match_many_handles_empty_batch(self, tiny_collection, matcher):
        gallery = tiny_collection.get(0, FINGER, "D0", 0).template
        assert len(matcher.match_many([], gallery)) == 0


class TestOneToManyParity:
    """The identification-shaped batch path must also equal scalar."""

    def test_match_one_to_many_equals_match_per_candidate(
        self, tiny_collection, matcher
    ):
        probe = tiny_collection.get(0, FINGER, "D1", 1).template
        galleries = [
            tiny_collection.get(sid, FINGER, device, 0).template
            for device in ("D0", "D1", "D2")
            for sid in range(10)
        ]
        batch = matcher.match_one_to_many(probe, galleries)
        scalar = [matcher.match(probe, gallery) for gallery in galleries]
        np.testing.assert_array_equal(np.asarray(batch), np.asarray(scalar))

    def test_match_one_to_many_handles_empty_list(
        self, tiny_collection, matcher
    ):
        probe = tiny_collection.get(0, FINGER, "D0", 0).template
        assert len(matcher.match_one_to_many(probe, [])) == 0

    def test_degenerate_probe_scores_all_zero(self, tiny_collection, matcher):
        from repro.matcher.types import Template

        empty_probe = Template(minutiae=(), width_px=100, height_px=100)
        galleries = [
            tiny_collection.get(sid, FINGER, "D0", 0).template
            for sid in range(4)
        ]
        np.testing.assert_array_equal(
            matcher.match_one_to_many(empty_probe, galleries), np.zeros(4)
        )


class TestScorePairsParity:
    """score_pairs (the serving layer's entry point) vs the scalar loop."""

    def _pairs(self, tiny_collection):
        # A mix that exercises every grouping branch: shared galleries
        # (many probes vs one), shared probes (one vs many), and true
        # one-off stragglers.
        pairs = []
        shared_gallery = tiny_collection.get(0, FINGER, "D0", 0).template
        for sid in range(8):
            probe = tiny_collection.get(sid, FINGER, "D1", 1).template
            pairs.append((probe, shared_gallery))
        shared_probe = tiny_collection.get(1, FINGER, "D2", 1).template
        for sid in range(2, 8):
            gallery = tiny_collection.get(sid, FINGER, "D0", 0).template
            pairs.append((shared_probe, gallery))
        for sid in range(4, 7):
            pairs.append((
                tiny_collection.get(sid, FINGER, "D3", 1).template,
                tiny_collection.get(sid, FINGER, "D4", 0).template,
            ))
        return pairs

    def test_score_pairs_equals_scalar_loop(self, tiny_collection, matcher):
        pairs = self._pairs(tiny_collection)
        batch = matcher.score_pairs(pairs)
        scalar = [matcher.match(probe, gallery) for probe, gallery in pairs]
        np.testing.assert_array_equal(np.asarray(batch), np.asarray(scalar))

    def test_score_pairs_preserves_input_order(self, tiny_collection, matcher):
        pairs = self._pairs(tiny_collection)
        shuffled = list(reversed(pairs))
        np.testing.assert_array_equal(
            matcher.score_pairs(shuffled), matcher.score_pairs(pairs)[::-1]
        )

    def test_score_pairs_empty(self, matcher):
        assert len(matcher.score_pairs([])) == 0
