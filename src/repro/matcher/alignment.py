"""Global rigid alignment by Hough-style consensus.

Placement on the platen differs between any two impressions; the matcher
must first find the rigid transform that best registers the probe onto
the gallery.  Following the classical Ratha/Karu scheme:

1. candidate correspondences are the highest-similarity descriptor
   pairs;
2. each candidate (a_i, b_j) votes for a transform hypothesis
   ``(d_theta, tx, ty)`` — rotate by the direction difference, translate
   so a_i lands on b_j;
3. votes accumulate in a coarse discretized accumulator; the winning
   cell (plus its neighbourhood) selects the consensus candidates;
4. the final transform is the least-squares rigid fit (2-D Kabsch /
   Procrustes) over the consensus set.

Nonrigid residue — elastic skin distortion and, crucially, *cross-device
signature differences* — survives this stage by construction; that
residue is what depresses cross-device genuine scores in the study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .descriptors import wrap_angle

#: Accumulator resolution.
ANGLE_BIN_RAD = np.deg2rad(15.0)
TRANSLATION_BIN_MM = 3.0

#: Number of top descriptor pairs considered as candidates.
MAX_CANDIDATES = 48


@dataclass(frozen=True)
class RigidTransform:
    """A 2-D rotation-plus-translation map ``p -> R(theta) p + t``."""

    theta: float
    tx: float
    ty: float

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform an (n, 2) array of points."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        c, s = np.cos(self.theta), np.sin(self.theta)
        rot = np.array([[c, -s], [s, c]])
        return pts @ rot.T + np.array([self.tx, self.ty])

    def apply_angles(self, angles: np.ndarray) -> np.ndarray:
        """Rotate direction values by ``theta``."""
        return np.mod(np.asarray(angles, dtype=np.float64) + self.theta, 2 * np.pi)

    @staticmethod
    def identity() -> "RigidTransform":
        """The do-nothing transform."""
        return RigidTransform(0.0, 0.0, 0.0)


def candidate_pairs(
    similarity: np.ndarray, min_similarity: float = 0.45
) -> np.ndarray:
    """Select candidate correspondences from a descriptor similarity matrix.

    Returns an ``(m, 3)`` array of ``(i, j, similarity)`` rows, best
    first, capped at :data:`MAX_CANDIDATES`.
    """
    if similarity.size == 0:
        return np.zeros((0, 3))
    ii, jj = np.where(similarity >= min_similarity)
    if ii.size == 0:
        # Fall back to the global best few, even if weak: impostor scores
        # also need an alignment attempt, like a real matcher makes.
        flat = np.argsort(similarity, axis=None)[::-1][: min(8, similarity.size)]
        ii, jj = np.unravel_index(flat, similarity.shape)
    sims = similarity[ii, jj]
    order = np.argsort(sims)[::-1][:MAX_CANDIDATES]
    return np.column_stack([ii[order], jj[order], sims[order]]).astype(np.float64)


def estimate_alignments(
    positions_a: np.ndarray,
    angles_a: np.ndarray,
    positions_b: np.ndarray,
    angles_b: np.ndarray,
    candidates: np.ndarray,
    max_hypotheses: int = 2,
) -> List[RigidTransform]:
    """Consensus rigid transforms mapping template A onto template B.

    Returns up to ``max_hypotheses`` transforms, strongest accumulator
    cell first.  Real matchers verify more than one alignment hypothesis
    because the strongest Hough cell occasionally belongs to a spurious
    self-similarity of the ridge pattern; the caller scores each
    hypothesis and keeps the best.  An empty list means no candidate
    pairs exist (e.g. an empty template) — such comparisons score zero.
    """
    if candidates.shape[0] == 0:
        return []

    idx_a = candidates[:, 0].astype(np.int64)
    idx_b = candidates[:, 1].astype(np.int64)
    weights = candidates[:, 2]

    d_theta = wrap_angle(angles_b[idx_b] - angles_a[idx_a])
    cos_t, sin_t = np.cos(d_theta), np.sin(d_theta)
    pa = positions_a[idx_a]
    pb = positions_b[idx_b]
    rotated_ax = cos_t * pa[:, 0] - sin_t * pa[:, 1]
    rotated_ay = sin_t * pa[:, 0] + cos_t * pa[:, 1]
    tx = pb[:, 0] - rotated_ax
    ty = pb[:, 1] - rotated_ay

    # Coarse accumulator votes.
    theta_bins = np.round(d_theta / ANGLE_BIN_RAD).astype(np.int64)
    tx_bins = np.round(tx / TRANSLATION_BIN_MM).astype(np.int64)
    ty_bins = np.round(ty / TRANSLATION_BIN_MM).astype(np.int64)

    votes: dict = {}
    for k in range(len(weights)):
        cell = (theta_bins[k], tx_bins[k], ty_bins[k])
        votes[cell] = votes.get(cell, 0.0) + float(weights[k])
    ranked_cells = sorted(votes, key=votes.get, reverse=True)

    transforms: List[RigidTransform] = []
    for cell in ranked_cells[:max_hypotheses]:
        in_consensus = (
            (np.abs(theta_bins - cell[0]) <= 1)
            & (np.abs(tx_bins - cell[1]) <= 1)
            & (np.abs(ty_bins - cell[2]) <= 1)
        )
        if not np.any(in_consensus):
            continue
        transforms.append(
            _weighted_rigid_fit(
                pa[in_consensus], pb[in_consensus], weights[in_consensus],
                fallback_theta=lambda sel=in_consensus: float(np.median(d_theta[sel])),
            )
        )
    if not transforms:
        transforms.append(
            _weighted_rigid_fit(
                pa, pb, weights,
                fallback_theta=lambda: float(np.median(d_theta)),
            )
        )
    return transforms


def estimate_alignment(
    positions_a: np.ndarray,
    angles_a: np.ndarray,
    positions_b: np.ndarray,
    angles_b: np.ndarray,
    candidates: np.ndarray,
) -> Optional[RigidTransform]:
    """Single best-cell transform (compatibility wrapper over the list API)."""
    transforms = estimate_alignments(
        positions_a, angles_a, positions_b, angles_b, candidates, max_hypotheses=1
    )
    return transforms[0] if transforms else None


def _weighted_rigid_fit(
    pa: np.ndarray, pb: np.ndarray, weights: np.ndarray, fallback_theta
) -> RigidTransform:
    """Weighted 2-D Procrustes: least-squares rotation + translation.

    ``fallback_theta`` is a zero-argument callable evaluated only in the
    degenerate case (all consensus points coincident), so the common path
    never pays for the median it would use.
    """
    w = weights / max(weights.sum(), 1e-12)
    ca = (w[:, None] * pa).sum(axis=0)
    cb = (w[:, None] * pb).sum(axis=0)
    qa = pa - ca
    qb = pb - cb
    # Cross-covariance terms for the optimal 2-D rotation.
    sxx = float(np.sum(w * qa[:, 0] * qb[:, 0]))
    syy = float(np.sum(w * qa[:, 1] * qb[:, 1]))
    sxy = float(np.sum(w * qa[:, 0] * qb[:, 1]))
    syx = float(np.sum(w * qa[:, 1] * qb[:, 0]))
    denom = sxx + syy
    numer = sxy - syx
    if abs(denom) < 1e-12 and abs(numer) < 1e-12:
        theta = fallback_theta()
    else:
        theta = float(np.arctan2(numer, denom))
    c, s = np.cos(theta), np.sin(theta)
    rot = np.array([[c, -s], [s, c]])
    translation = cb - rot @ ca
    return RigidTransform(theta=theta, tx=float(translation[0]), ty=float(translation[1]))


__all__ = [
    "RigidTransform",
    "candidate_pairs",
    "estimate_alignment",
    "estimate_alignments",
    "ANGLE_BIN_RAD",
    "TRANSLATION_BIN_MM",
    "MAX_CANDIDATES",
]
